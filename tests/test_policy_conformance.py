"""Run the policy conformance suite against the built-in policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from policy_conformance import (
    FLAVOURS,
    check_policy_conformance,
    make_func,
)
from repro.core.contention import ContentionAnticipator
from repro.core.policy import POLICIES, make_policy
from repro.profiling.contention_profiler import ContentionFactors

pytestmark = pytest.mark.parametrize("policy_name", sorted(POLICIES))


def _batches(spec):
    """[(flavour, duration), ...] per batch → KernelFunc lists."""
    return [
        [
            make_func(flavour, duration, batch_id=i, name=f"k{i}_{j}")
            for j, (flavour, duration) in enumerate(batch)
        ]
        for i, batch in enumerate(spec)
    ]


class TestCraftedWorkloads:
    def test_single_batch_drains(self, policy_name):
        rounds = check_policy_conformance(
            make_policy(policy_name),
            _batches([[("gemm", 10.0), ("all_reduce", 5.0), ("gemm", 8.0)]]),
        )
        assert rounds  # at least one round planned

    def test_dense_tp_stream(self, policy_name):
        spec = [
            [("gemm", 30.0), ("all_reduce", 5.0), ("gemm", 20.0),
             ("all_reduce", 5.0)],
            [("all_reduce", 10.0), ("gemm", 10.0), ("all_reduce", 10.0)],
            [("gemm", 4.0), ("all_reduce", 2.0)],
        ]
        check_policy_conformance(make_policy(policy_name), _batches(spec))

    def test_moe_stream_with_all_to_all(self, policy_name):
        spec = [
            [("gemm", 20.0), ("all_to_all", 12.0), ("gemm", 6.0),
             ("gemm", 6.0), ("all_to_all", 12.0)],
            [("all_to_all", 8.0), ("gemm", 5.0), ("all_reduce", 4.0)],
            [("gemm", 9.0), ("all_to_all", 3.0), ("p2p", 2.0)],
        ]
        check_policy_conformance(make_policy(policy_name), _batches(spec))

    def test_best_fit_packing_conforms(self, policy_name):
        spec = [
            [("gemm", 40.0), ("all_reduce", 5.0)],
            [("all_reduce", 25.0), ("gemm", 1.0)],
            [("all_to_all", 30.0), ("gemm", 1.0)],
            [("all_reduce", 10.0), ("gemm", 1.0)],
        ]
        check_policy_conformance(
            make_policy(policy_name, packing="best_fit"), _batches(spec)
        )

    def test_anticipated_durations_fill_accounting(self, policy_name):
        anticipator = ContentionAnticipator(
            ContentionFactors(compute=1.10, comm=1.15)
        )
        spec = [
            [("gemm", 50.0), ("all_reduce", 5.0)],
            [("all_reduce", 10.0), ("gemm", 10.0), ("all_to_all", 10.0)],
            [("all_to_all", 20.0), ("gemm", 2.0)],
        ]
        check_policy_conformance(
            make_policy(policy_name), _batches(spec), anticipator=anticipator
        )


class TestRandomWorkloads:
    @settings(max_examples=40, deadline=None)
    @given(
        spec=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(FLAVOURS),
                    st.floats(min_value=0.5, max_value=100.0),
                ),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_random_streams_conform(self, policy_name, spec):
        check_policy_conformance(make_policy(policy_name), _batches(spec))

    @settings(max_examples=25, deadline=None)
    @given(
        spec=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(FLAVOURS),
                    st.floats(min_value=0.5, max_value=100.0),
                ),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_random_streams_conform_best_fit(self, policy_name, spec):
        check_policy_conformance(
            make_policy(policy_name, packing="best_fit"), _batches(spec)
        )
