"""Integration tests for the Machine executor: streams, admission, events.

These pin down the semantics contract of DESIGN.md §5 — in-order streams,
asynchronous launch availability, the left-over admission policy (and the
communication-lag behaviour it produces), inter-stream event sync, and
collective rendezvous.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, StreamProtocolError
from repro.hw import v100_nvlink_node
from repro.sim import (
    CudaEvent,
    Engine,
    Kernel,
    KernelKind,
    Machine,
    NullContention,
    Trace,
)
from repro.sim.interconnect import CollectiveCostModel, NcclConfig


def make_machine(num_gpus=2, contention=None):
    node = v100_nvlink_node(num_gpus)
    return Machine(
        node,
        Engine(),
        contention=contention or NullContention(),
        trace=Trace(),
    )


def k(name, dur, kind=KernelKind.COMPUTE, occ=0.9, mem=0.3, batch=0):
    return Kernel(
        name=name,
        kind=kind,
        duration=dur,
        occupancy=occ,
        memory_intensity=mem,
        batch_id=batch,
    )


# ----------------------------------------------------------------------
# Stream FIFO semantics
# ----------------------------------------------------------------------
class TestStreamOrder:
    def test_single_stream_serializes_kernels(self):
        m = make_machine(1)
        s = m.gpu(0).stream("s0")
        m.launch(s, k("a", 10.0), available_at=0.0)
        m.launch(s, k("b", 5.0), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["a"].start == 0.0 and rows["a"].end == 10.0
        assert rows["b"].start == 10.0 and rows["b"].end == 15.0

    def test_two_streams_overlap_when_occupancy_allows(self):
        m = make_machine(1)
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        m.launch(s0, k("a", 10.0, occ=0.5), available_at=0.0)
        m.launch(s1, k("b", 10.0, occ=0.4), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["a"].start == 0.0
        assert rows["b"].start == 0.0  # concurrent

    def test_command_not_visible_before_available_at(self):
        m = make_machine(1)
        s = m.gpu(0).stream("s0")
        m.launch(s, k("late", 1.0), available_at=25.0)
        m.run()
        row = m.trace.rows[0]
        assert row.start == 25.0

    def test_launch_overhead_hidden_behind_running_kernel(self):
        # Kernel b is made available while a still runs: starts back-to-back.
        m = make_machine(1)
        s = m.gpu(0).stream("s0")
        m.launch(s, k("a", 100.0), available_at=0.0)
        m.launch(s, k("b", 10.0), available_at=40.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["b"].start == pytest.approx(100.0)


# ----------------------------------------------------------------------
# Left-over admission policy
# ----------------------------------------------------------------------
class TestAdmission:
    def test_oversubscribed_kernels_serialize(self):
        m = make_machine(1)
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        m.launch(s0, k("big_a", 10.0, occ=0.9), available_at=0.0)
        m.launch(s1, k("big_b", 10.0, occ=0.9), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        starts = sorted([rows["big_a"].start, rows["big_b"].start])
        assert starts == [0.0, 10.0]

    def test_compute_admitted_before_comm_at_same_instant(self):
        # comm (0.2) + compute (0.9) cannot co-run; compute wins the tie even
        # though the comm stream has higher priority — the §2.3.1 lag.
        m = make_machine(1)
        sc = m.gpu(0).stream("compute", priority=0)
        sm = m.gpu(0).stream("comm", priority=10)
        comm = k("comm", 10.0, kind=KernelKind.COMM, occ=0.2)
        m.launch(sm, comm, available_at=0.0)
        m.launch(sc, k("gemm", 10.0, occ=0.9), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["gemm"].start == 0.0
        assert rows["comm"].start == pytest.approx(10.0)
        assert rows["comm"].queueing_delay == pytest.approx(10.0)

    def test_small_comm_fits_alongside_compute(self):
        # Reduced-channel comm (0.05) co-runs with a 0.9 GEMM: the §3.5
        # mitigation is what makes overlap possible at all.
        m = make_machine(1)
        sc = m.gpu(0).stream("compute")
        sm = m.gpu(0).stream("comm")
        m.launch(sc, k("gemm", 10.0, occ=0.9), available_at=0.0)
        m.launch(sm, k("comm", 10.0, kind=KernelKind.COMM, occ=0.05), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["gemm"].start == 0.0
        assert rows["comm"].start == 0.0

    def test_earlier_ready_kernel_admitted_first(self):
        m = make_machine(1)
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        s2 = m.gpu(0).stream("s2")
        m.launch(s0, k("hog", 10.0, occ=0.9), available_at=0.0)
        # comm ready at t=2; compute ready at t=5. At t=10 the earlier-ready
        # comm kernel is admitted first (no same-instant tie here).
        m.launch(s1, k("comm", 5.0, kind=KernelKind.COMM, occ=0.9), available_at=2.0)
        m.launch(s2, k("late_compute", 5.0, occ=0.9), available_at=5.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["comm"].start == pytest.approx(10.0)
        assert rows["late_compute"].start == pytest.approx(15.0)


# ----------------------------------------------------------------------
# Event synchronization
# ----------------------------------------------------------------------
class TestEvents:
    def test_inter_stream_wait_orders_across_streams(self):
        m = make_machine(1)
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        ev = CudaEvent("ev")
        m.launch(s0, k("producer", 20.0, occ=0.4), available_at=0.0)
        m.record_event(s0, ev, available_at=0.0)
        m.wait_event(s1, ev, available_at=0.0)
        m.launch(s1, k("consumer", 5.0, occ=0.4), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["consumer"].start == pytest.approx(20.0)

    def test_wait_on_already_recorded_event_passes_through(self):
        m = make_machine(1)
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        ev = CudaEvent("ev")
        m.record_event(s0, ev, available_at=0.0)
        m.wait_event(s1, ev, available_at=5.0)
        m.launch(s1, k("x", 1.0), available_at=5.0)
        m.run()
        assert m.trace.rows[0].start == pytest.approx(5.0)

    def test_event_cannot_record_twice(self):
        m = make_machine(1)
        s0 = m.gpu(0).stream("s0")
        ev = CudaEvent("ev")
        m.record_event(s0, ev, available_at=0.0)
        m.record_event(s0, ev, available_at=1.0)
        with pytest.raises(StreamProtocolError):
            m.run()

    def test_host_callback_fires_after_record(self):
        m = make_machine(1)
        s0 = m.gpu(0).stream("s0")
        ev = CudaEvent("ev")
        seen = []
        ev.on_host(lambda: seen.append(m.engine.now), delay=2.0)
        m.launch(s0, k("a", 10.0), available_at=0.0)
        m.record_event(s0, ev, available_at=0.0)
        m.run()
        assert seen == [pytest.approx(12.0)]

    def test_cross_gpu_event_sync(self):
        m = make_machine(2)
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(1).stream("s0")
        ev = CudaEvent("xgpu")
        m.launch(s0, k("g0", 30.0), available_at=0.0)
        m.record_event(s0, ev, available_at=0.0)
        m.wait_event(s1, ev, available_at=0.0)
        m.launch(s1, k("g1", 5.0), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["g1"].start == pytest.approx(30.0)
        assert rows["g1"].gpu == 1

    def test_unrecorded_event_deadlock_detected(self):
        m = make_machine(1)
        s1 = m.gpu(0).stream("s1")
        ev = CudaEvent("never")
        m.wait_event(s1, ev, available_at=0.0)
        m.launch(s1, k("stuck", 1.0), available_at=0.0)
        with pytest.raises(DeadlockError):
            m.run()


# ----------------------------------------------------------------------
# Collective rendezvous
# ----------------------------------------------------------------------
class TestCollectives:
    def test_allreduce_waits_for_all_ranks(self):
        m = make_machine(2)
        ccm = CollectiveCostModel(m.node.topology, NcclConfig())
        coll = ccm.make_allreduce(1e6, [0, 1], batch_id=0)
        s0 = m.gpu(0).stream("comm")
        s1 = m.gpu(1).stream("comm")
        # rank 1 launches 40us late: rank 0's member spins until then.
        m.launch(s0, coll.members[0], available_at=0.0)
        m.launch(s1, coll.members[1], available_at=40.0)
        m.run()
        rows = {r.gpu: r for r in m.trace.rows}
        assert rows[0].start == 0.0
        assert rows[1].start == pytest.approx(40.0)
        # Both complete together, duration counted from rendezvous.
        assert rows[0].end == rows[1].end
        assert rows[0].end == pytest.approx(40.0 + coll.duration)

    def test_zero_byte_allreduce_completes(self):
        m = make_machine(2)
        ccm = CollectiveCostModel(m.node.topology)
        coll = ccm.make_allreduce(0.0, [0, 1])
        m.launch(m.gpu(0).stream("c"), coll.members[0], available_at=0.0)
        m.launch(m.gpu(1).stream("c"), coll.members[1], available_at=0.0)
        m.run()
        assert m.all_idle()
        assert len(m.trace.rows) == 2

    def test_p2p_pair_completes_together(self):
        m = make_machine(2)
        ccm = CollectiveCostModel(m.node.topology)
        coll = ccm.make_p2p(2e6, 0, 1, batch_id=3)
        m.launch(m.gpu(0).stream("c"), coll.members[0], available_at=0.0)
        m.launch(m.gpu(1).stream("c"), coll.members[1], available_at=0.0)
        m.run()
        ends = {r.end for r in m.trace.rows}
        assert len(ends) == 1

    def test_missing_rank_deadlocks(self):
        m = make_machine(2)
        ccm = CollectiveCostModel(m.node.topology)
        coll = ccm.make_allreduce(1e6, [0, 1])
        m.launch(m.gpu(0).stream("c"), coll.members[0], available_at=0.0)
        with pytest.raises(DeadlockError):
            m.run()

    def test_collective_after_compute_on_same_stream(self):
        m = make_machine(2)
        ccm = CollectiveCostModel(m.node.topology)
        coll = ccm.make_allreduce(1e6, [0, 1])
        s0 = m.gpu(0).stream("main")
        s1 = m.gpu(1).stream("main")
        m.launch(s0, k("compute0", 10.0), available_at=0.0)
        m.launch(s0, coll.members[0], available_at=0.0)
        m.launch(s1, k("compute1", 30.0), available_at=0.0)
        m.launch(s1, coll.members[1], available_at=0.0)
        m.run()
        comm_rows = [r for r in m.trace.rows if r.kind is KernelKind.COMM]
        assert all(r.end == pytest.approx(30.0 + coll.duration) for r in comm_rows)


# ----------------------------------------------------------------------
# CUDA_DEVICE_MAX_CONNECTIONS (soft model)
# ----------------------------------------------------------------------
class TestMaxConnections:
    def test_oversubscribed_stream_pays_delay(self):
        from repro.hw import v100_nvlink_node
        from repro.sim import NullContention, Trace

        m = Machine(
            v100_nvlink_node(1), Engine(), contention=NullContention(),
            trace=Trace(), max_connections=2, connection_contention_delay=10.0,
        )
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        s2 = m.gpu(0).stream("s2")
        m.launch(s0, k("a", 50.0, occ=0.2), available_at=0.0)
        m.launch(s1, k("b", 50.0, occ=0.2), available_at=0.0)
        # Third concurrent stream: over the connection limit.
        m.launch(s2, k("c", 50.0, occ=0.2), available_at=0.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        assert rows["a"].start == 0.0
        assert rows["b"].start == 0.0
        assert rows["c"].start == pytest.approx(10.0)

    def test_within_limit_no_delay(self):
        from repro.hw import v100_nvlink_node
        from repro.sim import NullContention, Trace

        m = Machine(
            v100_nvlink_node(1), Engine(), contention=NullContention(),
            trace=Trace(), max_connections=4,
        )
        streams = [m.gpu(0).stream(f"s{i}") for i in range(3)]
        for i, s in enumerate(streams):
            m.launch(s, k(f"k{i}", 10.0, occ=0.2), available_at=0.0)
        m.run()
        assert all(r.start == 0.0 for r in m.trace.rows)

    def test_invalid_config_rejected(self):
        from repro.errors import ConfigError
        from repro.hw import v100_nvlink_node

        with pytest.raises(ConfigError):
            Machine(v100_nvlink_node(1), Engine(), max_connections=0)


# ----------------------------------------------------------------------
# Completion observers and accounting
# ----------------------------------------------------------------------
class TestAccounting:
    def test_completion_observer_called_per_kernel(self):
        m = make_machine(1)
        seen = []
        m.on_kernel_complete(lambda kern, t: seen.append((kern.name, t)))
        s = m.gpu(0).stream("s0")
        m.launch(s, k("a", 5.0), available_at=0.0)
        m.launch(s, k("b", 5.0), available_at=0.0)
        m.run()
        assert seen == [("a", 5.0), ("b", 10.0)]

    def test_kernels_completed_counter(self):
        m = make_machine(2)
        for g in (0, 1):
            s = m.gpu(g).stream("s0")
            m.launch(s, k(f"k{g}", 5.0), available_at=0.0)
        m.run()
        assert m.kernels_completed == 2

    def test_all_idle_after_run(self):
        m = make_machine(1)
        s = m.gpu(0).stream("s0")
        m.launch(s, k("a", 5.0), available_at=0.0)
        m.run()
        assert m.all_idle()
