"""Tests for model specifications (Table 1) and placement math."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, PartitionError
from repro.hw import a100_pcie_node, v100_nvlink_node
from repro.models import GLM_130B, MODELS, OPT_30B, OPT_66B, ModelSpec, check_placement
from repro.units import GB


class TestTable1:
    """The specs must match the paper's Table 1 exactly."""

    @pytest.mark.parametrize(
        "model,params_gb,layers,heads,hidden",
        [
            (OPT_30B, 60, 48, 56, 7168),
            (OPT_66B, 132, 64, 72, 9216),
            (GLM_130B, 260, 70, 96, 12288),
        ],
    )
    def test_table1_row(self, model, params_gb, layers, heads, hidden):
        assert model.weight_bytes == GB(params_gb)
        assert model.num_layers == layers
        assert model.num_heads == heads
        assert model.hidden_size == hidden

    def test_models_registry(self):
        assert {"OPT-30B", "OPT-66B", "GLM-130B"} <= set(MODELS)

    def test_approx_params_order_of_magnitude(self):
        # 12·L·h² should land within 20% of the nominal count.
        assert OPT_30B.approx_params == pytest.approx(30e9, rel=0.2)
        assert OPT_66B.approx_params == pytest.approx(66e9, rel=0.2)
        assert GLM_130B.approx_params == pytest.approx(130e9, rel=0.2)


class TestSpecDerived:
    def test_head_dim(self):
        assert OPT_30B.head_dim == 128
        assert GLM_130B.head_dim == 128

    def test_ffn_size(self):
        assert OPT_30B.ffn_size == 4 * 7168

    def test_validate_tp_accepts_divisors(self):
        OPT_30B.validate_tp(1)
        OPT_30B.validate_tp(4)

    def test_validate_tp_rejects_nondivisor(self):
        with pytest.raises(PartitionError):
            OPT_30B.validate_tp(3)  # 56 heads / 3

    def test_validate_tp_rejects_nonpositive(self):
        with pytest.raises(PartitionError):
            OPT_30B.validate_tp(0)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigError):
            ModelSpec(name="bad", num_layers=2, num_heads=3, hidden_size=100)

    def test_scaled_layers_preserves_shape_scales_weights(self):
        half = OPT_30B.scaled_layers(24)
        assert half.num_layers == 24
        assert half.hidden_size == OPT_30B.hidden_size
        assert half.weight_bytes == pytest.approx(OPT_30B.weight_bytes / 2)

    def test_kv_cache_bytes_scales_with_tp(self):
        full = OPT_30B.kv_cache_bytes(32, 128, tp=1)
        quarter = OPT_30B.kv_cache_bytes(32, 128, tp=4)
        assert full == pytest.approx(4 * quarter)


class TestPlacement:
    """The paper's memory constraint: OPT-30B on V100; all models on A100."""

    def test_opt30b_fits_v100_node(self):
        check_placement(OPT_30B, v100_nvlink_node(4))

    def test_opt66b_does_not_fit_v100_node(self):
        with pytest.raises(PartitionError):
            check_placement(OPT_66B, v100_nvlink_node(4))

    def test_glm130b_does_not_fit_v100_node(self):
        with pytest.raises(PartitionError):
            check_placement(GLM_130B, v100_nvlink_node(4))

    @pytest.mark.parametrize("model", [OPT_30B, OPT_66B, GLM_130B])
    def test_all_models_fit_a100_node(self, model):
        check_placement(model, a100_pcie_node(4))

    def test_opt30b_fits_single_a100(self):
        check_placement(OPT_30B, a100_pcie_node(1))

    def test_unsharded_needs_full_replica(self):
        with pytest.raises(PartitionError):
            check_placement(OPT_30B, v100_nvlink_node(4), sharded=False)


@given(
    layers=st.integers(min_value=1, max_value=128),
    heads=st.sampled_from([8, 16, 32, 64]),
    head_dim=st.sampled_from([64, 128]),
)
@settings(max_examples=50, deadline=None)
def test_spec_invariants(layers, heads, head_dim):
    spec = ModelSpec(
        name="gen", num_layers=layers, num_heads=heads, hidden_size=heads * head_dim
    )
    assert spec.head_dim == head_dim
    assert spec.approx_params > 0
    assert spec.weight_bytes == pytest.approx(2 * spec.approx_params)
    # weights per device sum back to the total
    assert spec.weight_bytes_per_device(4) * 4 == pytest.approx(spec.weight_bytes)
