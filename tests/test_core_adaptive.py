"""Tests for online (adaptive) contention anticipation — extension."""

from __future__ import annotations

import pytest

from repro.core import AdaptiveAnticipator, LigerConfig
from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.parallel import InterleavedStrategy
from repro.serving import Server
from repro.serving.workload import general_trace
from repro.sim.kernel import KernelKind

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)


class TestEstimator:
    def test_starts_neutral(self):
        a = AdaptiveAnticipator(margin=1.0)
        assert a.scale(KernelKind.COMM) == 1.0
        assert a.scale(KernelKind.COMPUTE) == 1.0

    def test_jumps_to_new_maximum(self):
        a = AdaptiveAnticipator(margin=1.0)
        a.observe(KernelKind.COMM, noload=10.0, measured=12.0)
        assert a.scale(KernelKind.COMM) == pytest.approx(1.2)

    def test_decays_toward_lower_observations(self):
        a = AdaptiveAnticipator(decay=0.5, margin=1.0)
        a.observe(KernelKind.COMM, 10.0, 15.0)  # 1.5
        a.observe(KernelKind.COMM, 10.0, 10.0)  # 1.0 → decay halfway
        assert a.scale(KernelKind.COMM) == pytest.approx(1.25)

    def test_kinds_tracked_independently(self):
        a = AdaptiveAnticipator(margin=1.0)
        a.observe(KernelKind.COMM, 10.0, 13.0)
        a.observe(KernelKind.COMPUTE, 10.0, 10.5)
        assert a.scale(KernelKind.COMM) == pytest.approx(1.3)
        assert a.scale(KernelKind.COMPUTE) == pytest.approx(1.05)

    def test_sub_unity_observations_clamped(self):
        a = AdaptiveAnticipator(margin=1.0)
        a.observe(KernelKind.COMM, 10.0, 5.0)  # nonsense: faster than solo
        assert a.scale(KernelKind.COMM) >= 1.0

    def test_margin_applied(self):
        a = AdaptiveAnticipator(margin=1.1)
        assert a.scale(KernelKind.COMM) == pytest.approx(1.1)

    def test_anticipated_duration(self):
        a = AdaptiveAnticipator(margin=1.0)
        a.observe(KernelKind.COMM, 10.0, 12.0)
        assert a.anticipated(100.0, KernelKind.COMM) == pytest.approx(120.0)

    def test_factors_snapshot(self):
        a = AdaptiveAnticipator(margin=1.0)
        a.observe(KernelKind.COMM, 10.0, 11.0)
        f = a.factors
        assert f.comm == pytest.approx(1.1)
        assert f.compute == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            AdaptiveAnticipator(decay=0.0)
        with pytest.raises(ConfigError):
            AdaptiveAnticipator(margin=0.9)

    def test_zero_noload_ignored(self):
        a = AdaptiveAnticipator(margin=1.0)
        a.observe(KernelKind.COMM, 0.0, 5.0)
        assert a.observations == 0


class TestAdaptiveServing:
    def _run(self, cfg):
        strat = InterleavedStrategy(MODEL, NODE, config=cfg)
        server = Server(MODEL, NODE, strat, check_memory=False)
        result = server.run(general_trace(32, 400.0, 2, seed=8))
        return strat, result

    def test_learns_factors_during_serving(self):
        strat, result = self._run(LigerConfig(adaptive_anticipation=True))
        assert result.metrics.num_completed == 32
        assert strat.anticipator.observations > 100
        f = strat.anticipator.factors
        # Learned comm contention must be in a plausible band.
        assert 1.0 <= f.comm <= 1.4
        assert 1.0 <= f.compute <= 1.3

    def test_competitive_with_offline_profiling(self):
        from repro.profiling.contention_profiler import ContentionFactors

        _, adaptive = self._run(LigerConfig(adaptive_anticipation=True))
        _, offline = self._run(
            LigerConfig(
                contention_factors=ContentionFactors(compute=1.05, comm=1.10)
            )
        )
        # No offline pass, same ballpark performance (±15 %).
        assert adaptive.avg_latency_ms <= offline.avg_latency_ms * 1.15
        assert adaptive.throughput >= offline.throughput * 0.85
