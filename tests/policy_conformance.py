"""Reusable conformance suite for :class:`repro.core.policy.SchedulingPolicy`.

Any policy — built-in or third-party — must uphold four invariants no
matter what workload it schedules:

1. **Round non-empty** — every planned round has a non-empty primary
   subset (Algorithm 1 pops at least one kernel before it stops).
2. **Window accounting exact** — the round's window is exactly the summed
   no-load duration of the primary subset, and the secondary fill is
   exactly the summed *anticipated* duration of the secondary subset.
3. **Principle 1 per resource class** — no secondary kernel is one the
   policy itself declares blocking for the round's primary class, and the
   fill never exceeds the window (beyond float tolerance).
4. **Drain termination** — repeatedly planning rounds consumes every
   enqueued kernel exactly once and terminates within ``total kernels``
   rounds (each round pops at least one).

``check_policy_conformance`` drives a scheduler built around the policy
over a workload and asserts all four.  ``tests/test_policy_conformance.py``
runs it for the built-in policies over crafted and hypothesis-random
workloads; downstream policies can import it the same way.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.assembly import FuncVec, KernelFunc
from repro.core.contention import NO_ANTICIPATION
from repro.core.scheduler import LigerScheduler, Round
from repro.models.ops import all_to_all_op, allreduce_op, gemm_op, p2p_op
from repro.serving.request import Batch, Phase, Request

__all__ = [
    "make_func",
    "make_workload_vecs",
    "check_round_invariants",
    "check_policy_conformance",
]

_REL_TOL = 1e-9

#: Kernel-flavour palette for random workloads: one entry per resource
#: class the default classifier distinguishes.
FLAVOURS = ("gemm", "all_reduce", "all_to_all", "p2p")


def make_func(
    flavour: str,
    duration: float,
    *,
    name: str = "",
    batch_id: int = 0,
    decomposable: bool = False,
) -> KernelFunc:
    """One KernelFunc of the given flavour with a fixed no-load duration."""
    name = name or f"{flavour}_{batch_id}"
    if flavour == "gemm":
        op = gemm_op(name, 0, 128, 1024, 1024, decomposable=decomposable)
    elif flavour == "all_reduce":
        op = allreduce_op(name, 0, 1e6, decomposable=decomposable)
    elif flavour == "all_to_all":
        op = all_to_all_op(name, 0, 1e6, decomposable=decomposable)
    elif flavour == "p2p":
        op = p2p_op(name, 0, 1e6, 0, 1)
    else:
        raise ValueError(f"unknown flavour {flavour!r}")
    return KernelFunc(
        op=op,
        duration=duration,
        kind=op.kind,
        batch_id=batch_id,
        batch_size=2,
        seq_len=64,
        decomposable=decomposable,
    )


def make_workload_vecs(
    batches: Sequence[Sequence[KernelFunc]],
) -> List[FuncVec]:
    """Wrap per-batch kernel lists into FuncVecs with distinct batches."""
    vecs = []
    for i, funcs in enumerate(batches):
        batch = Batch(
            requests=[
                Request(rid=i, arrival=0.0, seq_len=64, phase=Phase.PREFILL)
            ]
        )
        vecs.append(FuncVec(batch, list(funcs)))
    return vecs


def check_round_invariants(
    policy, scheduler: LigerScheduler, round_: Round
) -> None:
    """Invariants 1–3 on a single planned round."""
    # 1. Round non-empty.
    assert round_.subset0, "round planned with an empty primary subset"

    # 2. Window accounting exact: window is the primary subset's summed
    #    no-load duration; fill is the secondary subset's summed
    #    anticipated duration.
    window = sum(f.duration for f in round_.subset0)
    assert abs(round_.window - window) <= _REL_TOL * max(1.0, window), (
        f"window {round_.window} != primary no-load sum {window}"
    )
    fill = sum(
        scheduler.anticipator.anticipated(f.duration, f.kind)
        for f in round_.subset1
    )
    assert abs(round_.secondary_fill - fill) <= _REL_TOL * max(1.0, fill), (
        f"secondary_fill {round_.secondary_fill} != anticipated sum {fill}"
    )

    # 3. Principle 1 per resource class: the policy's own blocking rule
    #    holds for every packed kernel, and the fill fits the window.
    assert round_.primary_class == policy.resource_class(round_.subset0[0])
    for func in round_.subset1:
        assert not policy.blocks(
            func, round_.primary_class, round_.primary_kind
        ), (
            f"{func.op.name} packed into a {round_.primary_class} window "
            f"the policy says it blocks"
        )
    assert round_.secondary_fill <= round_.window * (1 + _REL_TOL), (
        f"fill {round_.secondary_fill} exceeds window {round_.window}"
    )


def check_policy_conformance(
    policy,
    batches: Sequence[Sequence[KernelFunc]],
    *,
    anticipator=NO_ANTICIPATION,
    max_inflight: int = 8,
) -> List[Round]:
    """Drive ``policy`` to drain over ``batches``; assert invariants 1–4.

    Returns the planned rounds for any additional policy-specific checks.
    """
    scheduler = LigerScheduler(
        anticipator=anticipator, policy=policy, max_inflight=max_inflight
    )
    total = sum(len(funcs) for funcs in batches)
    for vec in make_workload_vecs(batches):
        scheduler.enqueue(vec)

    rounds: List[Round] = []
    scheduled = 0
    while (round_ := scheduler.plan_round()) is not None:
        check_round_invariants(policy, scheduler, round_)
        rounds.append(round_)
        scheduled += len(round_.subset0) + len(round_.subset1)
        # 4. Termination: every round pops >= 1 kernel, so the round count
        #    can never exceed the kernel count.
        assert len(rounds) <= total, "scheduler failed to make progress"

    # 4. Drain: every kernel was scheduled exactly once (no decomposer in
    #    this harness, so counts are conserved), and nothing is left.
    assert scheduled == total, (
        f"scheduled {scheduled} kernels, enqueued {total}"
    )
    assert not scheduler.has_work
    return rounds
