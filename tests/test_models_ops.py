"""Tests for operator sequences: transformer prefill, decode, partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, PartitionError
from repro.models import (
    GLM_130B,
    OPT_30B,
    boundary_bytes,
    decode_step_ops,
    layer_ops,
    pipeline_stages,
    prefill_ops,
)
from repro.models.ops import OpDesc, gemm_op, p2p_op
from repro.sim.kernel import KernelKind
from repro.units import FP16_BYTES


class TestOpDesc:
    def test_gemm_requires_shape(self):
        with pytest.raises(ConfigError):
            OpDesc(name="bad", op="gemm", kind=KernelKind.COMPUTE)

    def test_unknown_flavour_rejected(self):
        with pytest.raises(ConfigError):
            OpDesc(name="bad", op="conv", kind=KernelKind.COMPUTE)

    def test_collective_must_be_comm_kind(self):
        with pytest.raises(ConfigError):
            OpDesc(name="bad", op="all_reduce", kind=KernelKind.COMPUTE)

    def test_p2p_needs_endpoints(self):
        with pytest.raises(ConfigError):
            OpDesc(name="bad", op="p2p", kind=KernelKind.COMM, comm_bytes=1.0)
        ok = p2p_op("ok", 0, 1.0, 0, 1)
        assert ok.p2p_src == 0 and ok.p2p_dst == 1

    def test_with_gemm_shape(self):
        op = gemm_op("g", 0, 128, 512, 512)
        split = op.with_gemm_shape(128, 512, 64)
        assert split.gemm_shape == (128, 512, 64)
        assert split.name == op.name


class TestLayerOps:
    def test_two_allreduces_per_layer_under_tp(self):
        """The Megatron scheme: exactly 2 all-reduces per transformer layer."""
        ops = layer_ops(OPT_30B, 2, 64, 4, layer=0)
        ars = [o for o in ops if o.op == "all_reduce"]
        assert len(ars) == 2

    def test_no_collectives_without_tp(self):
        ops = layer_ops(OPT_30B, 2, 64, 1, layer=0)
        assert all(not o.is_comm for o in ops)

    def test_gemm_shapes_partitioned_by_tp(self):
        ops = {o.name: o for o in layer_ops(OPT_30B, 2, 64, 4, layer=3)}
        m = 2 * 64
        h = OPT_30B.hidden_size
        assert ops["qkv_gemm_L3"].gemm_shape == (m, h, 3 * h // 4)
        assert ops["attn_out_gemm_L3"].gemm_shape == (m, h // 4, h)
        assert ops["mlp_gemm1_L3"].gemm_shape == (m, h, OPT_30B.ffn_size // 4)
        assert ops["mlp_gemm2_L3"].gemm_shape == (m, OPT_30B.ffn_size // 4, h)

    def test_allreduce_bytes_are_activation_size(self):
        ops = layer_ops(OPT_30B, 2, 64, 4, layer=0)
        ar = next(o for o in ops if o.op == "all_reduce")
        assert ar.comm_bytes == 2 * 64 * OPT_30B.hidden_size * FP16_BYTES

    def test_attention_heads_partitioned(self):
        ops = layer_ops(GLM_130B, 2, 32, 4, layer=0)
        attn = next(o for o in ops if o.op == "attention")
        assert attn.attn_heads == GLM_130B.num_heads // 4

    def test_type_switch_structure(self):
        """Compute runs alternate with comm ops — Algorithm 1's switch points."""
        ops = layer_ops(OPT_30B, 2, 64, 4, layer=0)
        kinds = [o.is_comm for o in ops]
        # compute..., comm, compute..., comm
        assert kinds == [False] * 4 + [True] + [False] * 3 + [True]

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigError):
            layer_ops(OPT_30B, 0, 64, 1, layer=0)

    def test_invalid_tp_rejected(self):
        with pytest.raises(PartitionError):
            layer_ops(OPT_30B, 2, 64, 5, layer=0)


class TestPrefill:
    def test_full_prefill_counts(self):
        tp = 4
        ops = prefill_ops(OPT_30B, 2, 64, tp)
        ars = [o for o in ops if o.op == "all_reduce"]
        # 2 per layer + 1 logits collective
        assert len(ars) == 2 * OPT_30B.num_layers + 1
        assert ops[0].op == "embed"
        assert any(o.name == "lm_head_gemm" for o in ops)

    def test_layer_subset_omits_embed_and_head(self):
        ops = prefill_ops(OPT_30B, 2, 64, 1, layers=range(10, 20))
        assert all(o.op != "embed" for o in ops)
        assert all(o.name != "lm_head_gemm" for o in ops)

    def test_first_stage_has_embed_only(self):
        ops = prefill_ops(OPT_30B, 2, 64, 1, layers=range(0, 24))
        assert ops[0].op == "embed"
        assert all(o.name != "lm_head_gemm" for o in ops)

    def test_last_stage_has_head_only(self):
        ops = prefill_ops(OPT_30B, 2, 64, 1, layers=range(24, 48))
        assert ops[0].op != "embed"
        assert any(o.name == "lm_head_gemm" for o in ops)

    def test_empty_subset_rejected(self):
        with pytest.raises(ConfigError):
            prefill_ops(OPT_30B, 2, 64, 1, layers=[])


class TestDecode:
    def test_decode_has_kv_append_and_single_row_gemms(self):
        ops = decode_step_ops(OPT_30B, 32, 16, 4)
        kv = [o for o in ops if o.op == "kv_append"]
        assert len(kv) == OPT_30B.num_layers
        qkv = next(o for o in ops if o.name == "qkv_gemm_L0")
        assert qkv.gemm_shape[0] == 32  # m = batch, not batch*seq

    def test_decode_attention_reads_context(self):
        ops = decode_step_ops(OPT_30B, 32, 16, 1)
        attn = next(o for o in ops if o.op == "attention")
        assert attn.attn_q_len == 1
        assert attn.attn_ctx_len == 17

    def test_decode_comm_bytes_much_smaller_than_prefill(self):
        d = next(
            o for o in decode_step_ops(OPT_30B, 32, 16, 4) if o.op == "all_reduce"
        )
        p = next(o for o in prefill_ops(OPT_30B, 32, 64, 4) if o.op == "all_reduce")
        assert d.comm_bytes < p.comm_bytes / 32

    def test_invalid_context_rejected(self):
        with pytest.raises(ConfigError):
            decode_step_ops(OPT_30B, 32, 0, 1)


class TestPipelinePartition:
    def test_equal_stages(self):
        stages = pipeline_stages(OPT_30B, 4)  # 48 / 4
        assert [s.num_layers for s in stages] == [12, 12, 12, 12]
        assert [s.device for s in stages] == [0, 1, 2, 3]

    def test_uneven_layers_front_loaded(self):
        stages = pipeline_stages(GLM_130B, 4)  # 70 / 4 = 18,18,17,17
        assert [s.num_layers for s in stages] == [18, 18, 17, 17]

    def test_stages_cover_all_layers_contiguously(self):
        stages = pipeline_stages(GLM_130B, 3)
        covered = [l for s in stages for l in s.layers]
        assert covered == list(range(GLM_130B.num_layers))

    def test_single_stage(self):
        stages = pipeline_stages(OPT_30B, 1)
        assert len(stages) == 1
        assert stages[0].num_layers == 48

    def test_too_many_stages_rejected(self):
        with pytest.raises(PartitionError):
            pipeline_stages(OPT_30B, 49)

    def test_boundary_bytes(self):
        assert boundary_bytes(OPT_30B, 2, 64) == 2 * 64 * 7168 * 2


class TestPrefillDecodeConsistency:
    """The two phases share the layer skeleton; only shapes differ."""

    def test_same_op_names_modulo_kv_append(self):
        prefill = [o.name for o in layer_ops(OPT_30B, 2, 64, 4, layer=3)]
        decode = [
            o.name
            for o in decode_step_ops(OPT_30B, 2, 64, 4, layers=[3],
                                     include_lm_head=False)
            if o.op != "kv_append"
        ]
        assert prefill == decode

    def test_same_collective_structure(self):
        def comm_bytes(ops):
            return [o.comm_bytes for o in ops if o.is_comm]

        prefill = layer_ops(OPT_30B, 4, 1, 4, layer=0)  # seq 1 == one token
        decode = decode_step_ops(OPT_30B, 4, 16, 4, layers=[0],
                                 include_lm_head=False)
        assert comm_bytes(prefill) == comm_bytes(decode)

    def test_decode_gemm_rows_are_batch_not_tokens(self):
        prefill = {o.name: o for o in layer_ops(OPT_30B, 4, 32, 4, layer=0)}
        decode = {
            o.name: o
            for o in decode_step_ops(OPT_30B, 4, 32, 4, layers=[0],
                                     include_lm_head=False)
        }
        assert prefill["qkv_gemm_L0"].gemm_shape[0] == 4 * 32
        assert decode["qkv_gemm_L0"].gemm_shape[0] == 4


@given(
    batch=st.integers(min_value=1, max_value=32),
    seq=st.integers(min_value=1, max_value=256),
    tp=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=50, deadline=None)
def test_layer_ops_work_conservation(batch, seq, tp):
    """Total GEMM FLOPs across tp devices must not depend on tp."""
    def layer_flops(tp_):
        ops = layer_ops(GLM_130B, batch, seq, tp_, layer=0)
        return tp_ * sum(
            2 * o.gemm_shape[0] * o.gemm_shape[1] * o.gemm_shape[2]
            for o in ops
            if o.op == "gemm"
        )

    assert layer_flops(tp) == layer_flops(1)
