"""Direct tests of the Liger runtime: round chaining, sync modes, stats."""

from __future__ import annotations

import pytest

from repro.core import LigerConfig, SyncMode
from repro.core.contention import ContentionAnticipator
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.parallel import InterleavedStrategy
from repro.profiling.contention_profiler import ContentionFactors
from repro.serving import Server
from repro.serving.request import Batch, Phase, Request
from repro.serving.workload import general_trace
from repro.sim.kernel import KernelKind

MODEL = OPT_30B.scaled_layers(4)
NODE = v100_nvlink_node(4)
FACTORS = ContentionFactors(compute=1.05, comm=1.10)


def make_strategy(**cfg_kwargs):
    cfg_kwargs.setdefault("contention_factors", FACTORS)
    return InterleavedStrategy(MODEL, NODE, config=LigerConfig(**cfg_kwargs))


def run(strategy, batches):
    server = Server(MODEL, NODE, strategy, check_memory=False)
    return server.run(batches), server


def fixed_batch(arrival, size=2, seq=64):
    return Batch(
        requests=[
            Request(rid=i, arrival=arrival, seq_len=seq, phase=Phase.PREFILL)
            for i in range(size)
        ]
    )


class TestRoundChain:
    def test_chain_restarts_after_idle(self):
        """Two batches separated by a long idle gap: the round chain must
        stop at quiescence and restart at the second arrival."""
        strat = make_strategy()
        b1 = fixed_batch(arrival=1.0)
        b2 = fixed_batch(arrival=5e6)  # 5 seconds later
        result, _ = run(strat, [b1, b2])
        assert result.metrics.num_completed == 4
        # Both batches executed alone: latencies nearly identical.
        lats = sorted(r.latency for r in result.metrics.completed)
        assert lats[0] == pytest.approx(lats[-1], rel=0.01)

    def test_rounds_alternate_primary_kind(self):
        strat = make_strategy()
        run(strat, [fixed_batch(1.0)])
        stats = strat.stats
        # A 4-layer model has ~9 type switches per layer pass; at least a
        # handful of rounds must have been planned.
        assert stats.rounds_launched >= 2 * MODEL.num_layers

    def test_kernels_launched_counts_all_gpu_instances(self):
        strat = make_strategy()
        run(strat, [fixed_batch(1.0)])
        # Every KernelFunc becomes num_gpus simulator kernels.
        assert strat.stats.kernels_launched % NODE.num_gpus == 0

    def test_single_batch_rounds_have_empty_secondary(self):
        strat = make_strategy()
        run(strat, [fixed_batch(1.0)])
        assert strat.stats.total_fill == 0.0
        assert strat.stats.mean_fill_fraction == 0.0

    def test_overlapping_batches_fill_windows(self):
        strat = make_strategy()
        batches = [fixed_batch(1.0), fixed_batch(2.0), fixed_batch(3.0)]
        run(strat, batches)
        assert strat.stats.total_fill > 0.0


class TestSyncModes:
    @pytest.mark.parametrize("mode", list(SyncMode))
    def test_results_complete_under_all_modes(self, mode):
        strat = make_strategy(sync_mode=mode)
        result, _ = run(strat, general_trace(12, 200.0, 2, seed=3))
        assert result.metrics.num_completed == 12

    def test_hybrid_faster_than_cpu_gpu_under_load(self):
        res = {}
        for mode in (SyncMode.HYBRID, SyncMode.CPU_GPU):
            strat = make_strategy(sync_mode=mode)
            result, _ = run(strat, general_trace(16, 500.0, 2, seed=3))
            res[mode] = result.avg_latency_ms
        assert res[SyncMode.HYBRID] < res[SyncMode.CPU_GPU]

    def test_inter_stream_charges_comm_lag(self):
        """Pure inter-stream mode must not beat hybrid (comm launch lag)."""
        res = {}
        for mode in (SyncMode.HYBRID, SyncMode.INTER_STREAM):
            strat = make_strategy(sync_mode=mode)
            result, _ = run(strat, general_trace(16, 500.0, 2, seed=3))
            res[mode] = result.avg_latency_ms
        assert res[SyncMode.INTER_STREAM] >= res[SyncMode.HYBRID] * 0.999


class TestPrinciple1Runtime:
    def test_primary_latency_insensitive_to_subsequent_batches(self):
        """Principle 1 end-to-end: the first batch's latency must hardly
        change when later batches are interleaved under it."""
        alone = make_strategy()
        r1, _ = run(alone, [fixed_batch(1.0)])
        lat_alone = max(r.latency for r in r1.metrics.completed)

        crowded = make_strategy()
        batches = [fixed_batch(1.0)] + [fixed_batch(2.0 + i) for i in range(3)]
        r2, _ = run(crowded, batches)
        first_batch_lat = min(
            (max(req.latency for req in b.requests), b)
            for b in batches
        )[0]
        # Contention stretches the primary a little; bound it tightly.
        assert first_batch_lat <= lat_alone * 1.12

    def test_anticipation_reduces_round_overrun(self):
        """With factors, the secondary's *anticipated* fill is conservative;
        runtime stats must respect the window bound."""
        strat = make_strategy()
        run(strat, [fixed_batch(1.0), fixed_batch(2.0), fixed_batch(3.0)])
        assert strat.stats.total_fill <= strat.stats.total_window + 1e-6


class TestMemoryAwareAdmission:
    def test_interleaving_depth_bounded_by_hbm(self):
        """The fig11-full regression: batch-32 decode on the V100 node has
        ~1 GB of free HBM after weights — 4-deep interleaving plus boundary
        overlap used to OOM.  Admission control must throttle instead."""
        from repro.experiments.harness import ExperimentRunner
        from repro.hw import v100_nvlink_node

        node = v100_nvlink_node(4)
        runner = ExperimentRunner(
            OPT_30B, node, figure="t", contention_factors=FACTORS
        )
        cap = runner.saturation_rate(32, workload="generative")
        record, _ = runner.run_point(
            "liger", cap * 1.3, num_requests=8 * 32, batch_size=32,
            workload="generative",
        )
        assert record.throughput > 0  # completed without OutOfMemoryError

    def test_admission_check_reserves_or_declines_cleanly(self):
        from repro.core.assembly import FuncVec, KernelFunc
        from repro.models.ops import gemm_op
        from repro.serving import Server
        from repro.sim.kernel import KernelKind

        strat = make_strategy()
        Server(MODEL, NODE, strat, check_memory=False)
        batch = fixed_batch(1.0)
        fv = FuncVec(
            batch,
            [
                KernelFunc(
                    op=gemm_op("g", 0, 128, 512, 512), duration=10.0,
                    kind=KernelKind.COMPUTE, batch_id=batch.batch_id,
                    batch_size=2, seq_len=64, decomposable=False,
                )
            ],
        )
        strat.register_batch(batch)
        assert strat._admit_memory(fv) is True
        assert batch.batch_id in strat._memory_reserved
        # Second call is idempotent (already reserved).
        assert strat._admit_memory(fv) is True

        # Exhaust memory: the check declines without leaking a reservation.
        strat.memory.reserve("hog", strat.memory.devices[0].available * 0.999)
        batch2 = fixed_batch(2.0, size=8, seq=128)
        fv2 = FuncVec(
            batch2,
            [
                KernelFunc(
                    op=gemm_op("g2", 0, 1024, 512, 512), duration=10.0,
                    kind=KernelKind.COMPUTE, batch_id=batch2.batch_id,
                    batch_size=8, seq_len=128, decomposable=False,
                )
            ],
        )
        strat.register_batch(batch2)
        assert strat._admit_memory(fv2) is False
        assert batch2.batch_id not in strat._memory_reserved
        assert not any(
            d.holds(f"batch{batch2.batch_id}") for d in strat.memory.devices
        )

    def test_blocked_batch_admitted_after_release(self):
        """A batch parked by the memory gate must run once memory frees."""
        strat = make_strategy()
        result, server = run(
            strat,
            [fixed_batch(1.0, size=8, seq=128) for _ in range(6)],
        )
        assert result.metrics.num_completed == 6 * 8


class TestConfigSurface:
    def test_division_factor_one_disables_decomposition(self):
        strat = make_strategy(division_factor=1)
        run(strat, general_trace(12, 400.0, 2, seed=1))
        assert strat.stats.decomposed_pieces == 0

    def test_decomposition_disabled_flag(self):
        strat = make_strategy(enable_decomposition=False)
        run(strat, general_trace(12, 400.0, 2, seed=1))
        assert strat.stats.decomposed_pieces == 0

    def test_invalid_config_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LigerConfig(max_inflight=0)
        with pytest.raises(ConfigError):
            LigerConfig(division_factor=0)
        with pytest.raises(ConfigError):
            LigerConfig(sync_mode="hybrid")  # must be the enum
        with pytest.raises(ConfigError):
            LigerConfig(comm_lag_penalty=-1.0)

    def test_max_inflight_bounds_processing_list(self):
        strat = make_strategy(max_inflight=2)
        result, _ = run(strat, general_trace(16, 2000.0, 2, seed=1))
        assert result.metrics.num_completed == 16
        # The scheduler never held more than 2 batches in processing.
        assert strat.runtime.scheduler.max_inflight == 2

    def test_anticipator_scaling(self):
        ant = ContentionAnticipator(ContentionFactors(compute=1.2, comm=1.5))
        assert ant.anticipated(10.0, KernelKind.COMM) == pytest.approx(15.0)
        assert ant.anticipated(10.0, KernelKind.COMPUTE) == pytest.approx(12.0)
