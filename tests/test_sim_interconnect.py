"""Tests for topologies and collective cost models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hw import InterconnectKind, nvlink_mesh, pcie_switch
from repro.sim.interconnect import CollectiveCostModel, NcclConfig
from repro.units import GB, GBps, us


class TestTopology:
    def test_nvlink_mesh_direct_links(self):
        t = nvlink_mesh(4)
        assert t.kind is InterconnectKind.NVLINK
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert t.has_direct_link(a, b)

    def test_pcie_switch_routes_through_switch(self):
        t = pcie_switch(4)
        assert not t.has_direct_link(0, 1)
        assert t.p2p_path(0, 1) == [0, "switch", 1]

    def test_pcie_bottleneck_bandwidth(self):
        t = pcie_switch(4, lane_bandwidth=GBps(16.0))
        assert t.p2p_bandwidth(0, 1) == GBps(16.0)

    def test_latency_accumulates_over_hops(self):
        t = pcie_switch(4, lane_latency=us(3.0))
        assert t.p2p_latency(0, 1) == pytest.approx(6.0)
        nv = nvlink_mesh(4, link_latency=us(1.5))
        assert nv.p2p_latency(0, 3) == pytest.approx(1.5)

    def test_same_gpu_latency_zero(self):
        t = nvlink_mesh(2)
        assert t.p2p_latency(1, 1) == 0.0

    def test_invalid_gpu_id_rejected(self):
        t = nvlink_mesh(2)
        with pytest.raises(ConfigError):
            t.p2p_latency(0, 5)

    def test_p2p_bandwidth_same_gpu_rejected(self):
        t = nvlink_mesh(2)
        with pytest.raises(ConfigError):
            t.p2p_bandwidth(0, 0)


class TestNcclConfig:
    def test_default_occupancy_much_larger_than_reduced(self):
        default = NcclConfig()
        reduced = default.reduced()
        assert reduced.occupancy < default.occupancy / 2

    def test_reduced_keeps_full_bandwidth(self):
        # The whole point of §3.5: fewer channels already saturate the link.
        assert NcclConfig().reduced().bandwidth_fraction == 1.0

    def test_below_saturation_derates(self):
        cfg = NcclConfig(max_nchannels=1, saturation_channels=3)
        assert cfg.bandwidth_fraction == pytest.approx(1 / 3)

    def test_invalid_channels_rejected(self):
        with pytest.raises(ConfigError):
            NcclConfig(max_nchannels=0)


class TestCollectiveCosts:
    def setup_method(self):
        self.topo = nvlink_mesh(4, allreduce_bus_bandwidth=GBps(32.75))
        self.ccm = CollectiveCostModel(self.topo)

    def test_allreduce_scales_with_bytes(self):
        small = self.ccm.allreduce_duration(1e6, [0, 1, 2, 3])
        big = self.ccm.allreduce_duration(16e6, [0, 1, 2, 3])
        assert big > small

    def test_allreduce_single_rank_free(self):
        assert self.ccm.allreduce_duration(1e9, [0]) == 0.0

    def test_allreduce_transfer_term_matches_ring_formula(self):
        size = GB(1.0)
        p = 4
        d = self.ccm.allreduce_duration(size, list(range(p)))
        transfer = (2 * (p - 1) / p) * size / GBps(32.75) * 1e6
        # latency terms are small against a 1GB payload
        assert d == pytest.approx(transfer, rel=0.01)

    def test_allreduce_slower_on_pcie(self):
        pcie = CollectiveCostModel(pcie_switch(4, allreduce_bus_bandwidth=GBps(14.88)))
        size = 50e6
        assert pcie.allreduce_duration(size, [0, 1, 2, 3]) > self.ccm.allreduce_duration(
            size, [0, 1, 2, 3]
        )

    def test_p2p_duration_includes_latency_floor(self):
        d = self.ccm.p2p_duration(0.0, 0, 1)
        assert d >= self.ccm.nccl.min_latency

    def test_make_allreduce_builds_all_members(self):
        coll = self.ccm.make_allreduce(1e6, [0, 1, 2, 3], batch_id=7, layer=3)
        assert coll.complete_membership
        assert set(coll.members) == {0, 1, 2, 3}
        for gpu, member in coll.members.items():
            assert member.batch_id == 7
            assert member.layer == 3
            assert member.collective is coll
            assert member.duration == coll.duration

    def test_make_p2p_two_members_low_occupancy(self):
        coll = self.ccm.make_p2p(1e6, 0, 2)
        assert set(coll.members) == {0, 2}
        assert all(m.occupancy <= 0.05 for m in coll.members.values())

    def test_make_p2p_same_gpu_rejected(self):
        with pytest.raises(ConfigError):
            self.ccm.make_p2p(1e6, 1, 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            self.ccm.allreduce_duration(-1.0, [0, 1])

    def test_reduced_channels_same_duration_lower_occupancy(self):
        default = CollectiveCostModel(self.topo, NcclConfig())
        reduced = CollectiveCostModel(self.topo, NcclConfig().reduced())
        size = 10e6
        d_def = default.allreduce_duration(size, [0, 1, 2, 3])
        d_red = reduced.allreduce_duration(size, [0, 1, 2, 3])
        assert d_red == pytest.approx(d_def)
        c_def = default.make_allreduce(size, [0, 1, 2, 3])
        c_red = reduced.make_allreduce(size, [0, 1, 2, 3])
        assert c_red.members[0].occupancy < c_def.members[0].occupancy
