"""Tests for MoE model substrate: specs, capacity, and operator sequences."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError, PartitionError
from repro.models import MOE_16E, MODELS, ModelSpec, expert_capacity
from repro.models.kvcache import decode_layer_ops
from repro.models.moe import moe_ffn_ops, moe_layer_ops, validate_ep
from repro.models.transformer import layer_ops
from repro.units import FP16_BYTES


class TestSpec:
    def test_moe_16e_registered(self):
        assert MODELS["MoE-16E"] is MOE_16E
        assert MOE_16E.is_moe
        assert MOE_16E.num_experts == 16
        assert MOE_16E.top_k == 2

    def test_dense_models_not_moe(self):
        assert not MODELS["OPT-30B"].is_moe

    def test_bad_top_k_rejected(self):
        with pytest.raises(ConfigError, match="top_k"):
            ModelSpec(
                name="bad", num_layers=2, num_heads=8, hidden_size=1024,
                num_experts=4, top_k=5,
            )
        with pytest.raises(ConfigError, match="num_experts"):
            ModelSpec(
                name="bad", num_layers=2, num_heads=8, hidden_size=1024,
                num_experts=-1,
            )

    def test_scaled_layers_keeps_expert_config(self):
        small = MOE_16E.scaled_layers(2)
        assert small.num_experts == 16
        assert small.top_k == 2
        assert small.is_moe

    def test_moe_params_count_expert_bank(self):
        # E expert FFN pairs ≫ one dense FFN pair: the MoE layer must be
        # substantially heavier than a dense layer of the same width.
        dense = ModelSpec(
            name="dense", num_layers=MOE_16E.num_layers,
            num_heads=MOE_16E.num_heads, hidden_size=MOE_16E.hidden_size,
        )
        assert MOE_16E.approx_params > 4 * dense.approx_params


class TestCapacityAndValidation:
    def test_expert_capacity_balanced(self):
        assert expert_capacity(256, 16, 2) == 32
        assert expert_capacity(256, 16, 1) == 16
        assert expert_capacity(1, 16, 2) == 1  # floor at one token

    def test_capacity_ceils(self):
        assert expert_capacity(100, 16, 2) == math.ceil(200 / 16)

    def test_validate_ep(self):
        validate_ep(MOE_16E, 4)
        with pytest.raises(PartitionError, match="not divisible"):
            validate_ep(MOE_16E, 5)
        with pytest.raises(PartitionError, match="ep must be >= 1"):
            validate_ep(MOE_16E, 0)
        with pytest.raises(ConfigError, match="not a MoE model"):
            validate_ep(MODELS["OPT-30B"], 4)


class TestFfnOps:
    def test_sharded_sequence_shape(self):
        ops = moe_ffn_ops(MOE_16E, 256, 4, layer=0)
        names = [o.op for o in ops]
        # ln2, router, dispatch, 4 local experts × 2 GEMMs, combine
        assert names == (
            ["elementwise", "gemm", "all_to_all"]
            + ["gemm"] * 8
            + ["all_to_all"]
        )
        dispatch = ops[2]
        assert dispatch.name == "a2a_dispatch_L0"
        assert dispatch.comm_bytes == pytest.approx(
            256 * 2 * MOE_16E.hidden_size * FP16_BYTES / 4
        )
        cap = expert_capacity(256, 16, 2)
        gemm1 = ops[3]
        assert gemm1.gemm_shape == (cap, MOE_16E.hidden_size, MOE_16E.ffn_size)
        gemm2 = ops[4]
        assert gemm2.gemm_shape == (cap, MOE_16E.ffn_size, MOE_16E.hidden_size)

    def test_ep1_has_no_exchanges_and_all_experts_local(self):
        ops = moe_ffn_ops(MOE_16E, 64, 1, layer=0)
        assert not any(o.op == "all_to_all" for o in ops)
        n_expert_gemms = sum(
            1 for o in ops if o.op == "gemm" and o.name.startswith("expert")
        )
        assert n_expert_gemms == 2 * 16

    def test_router_not_decomposable(self):
        ops = moe_ffn_ops(MOE_16E, 64, 4, layer=0)
        router = next(o for o in ops if o.name.startswith("router"))
        assert not router.decomposable
        assert router.gemm_shape == (64, MOE_16E.hidden_size, 16)


class TestLayerDelegation:
    def test_layer_ops_routes_to_moe(self):
        ops = layer_ops(MOE_16E, 2, 64, 4, layer=0)
        flavours = {o.op for o in ops}
        assert "all_to_all" in flavours
        assert "all_reduce" in flavours  # attention block keeps its AR
        # No dense MLP: every non-router/non-qkv GEMM is an expert GEMM.
        assert not any(o.name.startswith("mlp_gemm") for o in ops)
        assert ops == moe_layer_ops(MOE_16E, 2, 64, 4, layer=0)

    def test_decode_ops_route_to_moe(self):
        ops = decode_layer_ops(MOE_16E, 8, 16, 4, layer=0)
        assert any(o.op == "all_to_all" for o in ops)
        assert any(o.op == "kv_append" for o in ops)
        assert not any(o.name.startswith("mlp_gemm") for o in ops)
        # decode routes m = batch tokens
        dispatch = next(o for o in ops if o.name.startswith("a2a_dispatch"))
        assert dispatch.comm_bytes == pytest.approx(
            8 * 2 * MOE_16E.hidden_size * FP16_BYTES / 4
        )

    def test_dense_layers_unchanged(self):
        ops = layer_ops(MODELS["OPT-30B"], 2, 64, 4, layer=0)
        assert not any(o.op == "all_to_all" for o in ops)
        assert any(o.name.startswith("mlp_gemm") for o in ops)

    def test_indivisible_expert_bank_raises(self):
        model = ModelSpec(
            name="moe6", num_layers=2, num_heads=8, hidden_size=1024,
            num_experts=6, top_k=2,
        )
        with pytest.raises(PartitionError, match="not divisible"):
            layer_ops(model, 1, 16, 4, layer=0)
