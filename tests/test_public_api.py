"""Public-API surface checks: exports resolve, everything is documented.

These are the library-hygiene gates for deliverable quality: every module
under ``repro`` must expose a working ``__all__`` (no dangling names), every
public class/function must carry a docstring, and the README's quickstart
snippet must actually run.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_all_resolves(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__, f"{module_name} has no module docstring"
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    mod = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if inspect.isfunction(member) and not inspect.getdoc(member):
                        undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


def test_top_level_lazy_exports():
    from repro import GLM_130B, OPT_30B, OPT_66B, MODELS, ModelSpec  # noqa: F401
    from repro import Server, ServingResult, serve  # noqa: F401
    from repro import LigerConfig, LigerRuntime  # noqa: F401

    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_readme_quickstart_snippet():
    """The README's quickstart must run verbatim (scaled model for speed)."""
    from repro import OPT_30B, serve, v100_nvlink_node

    node = v100_nvlink_node(4)
    model = OPT_30B.scaled_layers(4)
    for strategy in ("intra", "inter", "inter_th", "liger"):
        result = serve(
            model=model, node=node, strategy=strategy,
            arrival_rate=55.0, num_requests=8, batch_size=2,
            check_memory=False,
        )
        assert "req/s" in result.summary()


def test_version_string():
    assert repro.__version__
