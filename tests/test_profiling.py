"""Tests for the offline profilers (§3.5 and the duration database)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hw import a100_pcie_node, v100_nvlink_node
from repro.models import GLM_130B, OPT_30B
from repro.models.ops import allreduce_op, elementwise_op, gemm_op, p2p_op
from repro.profiling import ContentionFactors, ContentionProfiler, OpProfiler, op_key
from repro.sim.contention import NullContention
from repro.sim.interconnect import NcclConfig


class TestOpProfiler:
    def setup_method(self):
        self.node = v100_nvlink_node(4)
        self.prof = OpProfiler(self.node)

    def test_duration_cached_by_op_identity(self):
        a = gemm_op("first", 0, 128, 1024, 1024)
        b = gemm_op("second", 7, 128, 1024, 1024)  # same shape, other name
        d1 = self.prof.duration(a)
        d2 = self.prof.duration(b)
        assert d1 == d2
        assert self.prof.cache_size == 1

    def test_op_key_distinguishes_shapes(self):
        assert op_key(gemm_op("g", 0, 128, 512, 512)) != op_key(
            gemm_op("g", 0, 128, 512, 1024)
        )
        assert op_key(allreduce_op("a", 0, 1e6)) != op_key(allreduce_op("a", 0, 2e6))

    def test_collective_duration_uses_participants(self):
        two = OpProfiler(self.node, participants=[0, 1])
        four = OpProfiler(self.node, participants=[0, 1, 2, 3])
        ar = allreduce_op("ar", 0, 8e6)
        assert two.duration(ar) < four.duration(ar)

    def test_comm_footprint_follows_nccl_config(self):
        default = OpProfiler(self.node, nccl=NcclConfig())
        reduced = OpProfiler(self.node, nccl=NcclConfig().reduced())
        ar = allreduce_op("ar", 0, 8e6)
        assert reduced.occupancy(ar) < default.occupancy(ar)
        assert reduced.duration(ar) == pytest.approx(default.duration(ar))

    def test_measure_solo_matches_profile(self):
        """The executor must honour profiled durations exactly at no load."""
        for op in [
            gemm_op("g", 0, 144, 7168, 5376),
            elementwise_op("ln", 0, 144 * 7168),
            allreduce_op("ar", 0, 2e6),
            p2p_op("x", 0, 2e6, 0, 1),
        ]:
            assert self.prof.measure_solo(op) == pytest.approx(
                self.prof.duration(op), rel=1e-9
            )


class TestContentionFactors:
    def test_factors_below_one_rejected(self):
        with pytest.raises(ConfigError):
            ContentionFactors(compute=0.9, comm=1.0)

    def test_for_kind_dispatch(self):
        from repro.sim.kernel import KernelKind

        f = ContentionFactors(compute=1.1, comm=1.3)
        assert f.for_kind(KernelKind.COMM) == 1.3
        assert f.for_kind(KernelKind.COMPUTE) == 1.1
        assert f.for_kind(KernelKind.MEMORY) == 1.1
        assert f.overall == 1.3


class TestContentionProfiler:
    def test_factors_match_paper_band(self):
        """V100 ≈ 1.10 and A100 ≈ 1.15 in the paper; we must land nearby,
        with the A100 factor strictly larger (its §4.2 observation)."""
        v_prof = OpProfiler(v100_nvlink_node(4), nccl=NcclConfig().reduced())
        v = ContentionProfiler(v100_nvlink_node(4), v_prof).profile(OPT_30B)
        a_prof = OpProfiler(a100_pcie_node(4), nccl=NcclConfig().reduced())
        a = ContentionProfiler(a100_pcie_node(4), a_prof).profile(GLM_130B)
        assert 1.02 <= v.overall <= 1.25
        assert 1.05 <= a.overall <= 1.35
        assert a.overall > v.overall

    def test_null_contention_profiles_to_margin_only(self):
        node = v100_nvlink_node(4)
        prof = OpProfiler(node, nccl=NcclConfig().reduced())
        cp = ContentionProfiler(node, prof, contention=NullContention())
        f = cp.profile(OPT_30B, batch_sizes=(2,), seq_lens=(64,), margin=1.0)
        assert f.compute == pytest.approx(1.0)
        assert f.comm == pytest.approx(1.0)

    def test_samples_recorded(self):
        node = v100_nvlink_node(4)
        prof = OpProfiler(node, nccl=NcclConfig().reduced())
        f = ContentionProfiler(node, prof).profile(
            OPT_30B, batch_sizes=(2,), seq_lens=(64,)
        )
        assert len(f.samples) >= 1
        for comp_slow, comm_slow in f.samples.values():
            assert comp_slow >= 1.0 and comm_slow >= 1.0

    def test_grid_focuses_on_lengthy_kernels(self):
        node = v100_nvlink_node(4)
        prof = OpProfiler(node)
        pairs = ContentionProfiler(node, prof).lengthy_kernel_grid(OPT_30B)
        for compute_op, comm_op in pairs:
            assert compute_op.op == "gemm"
            assert comm_op.op == "all_reduce"
