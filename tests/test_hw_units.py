"""Tests for hardware specs, node scaling, and unit helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hw import (
    A100_80GB_PCIE,
    TESTBEDS,
    V100_16GB,
    GpuSpec,
    a100_pcie_node,
    v100_nvlink_node,
)
from repro.units import (
    FP16_BYTES,
    GB,
    GBps,
    KB,
    MB,
    TFLOPS,
    GFLOPS,
    ms,
    seconds,
    us,
    us_to_s,
)


class TestUnits:
    def test_time_conversions(self):
        assert ms(1.5) == 1500.0
        assert seconds(2.0) == 2e6
        assert us(7) == 7.0
        assert us_to_s(1e6) == 1.0

    def test_size_conversions(self):
        assert KB(1) == 1e3
        assert MB(1) == 1e6
        assert GB(1) == 1e9
        assert GBps(2) == 2e9

    def test_rate_conversions(self):
        assert TFLOPS(1) == 1e12
        assert GFLOPS(1) == 1e9

    def test_fp16_bytes(self):
        assert FP16_BYTES == 2


class TestGpuSpecs:
    def test_paper_testbed_devices(self):
        assert V100_16GB.memory_capacity == GB(16)
        assert A100_80GB_PCIE.memory_capacity == GB(80)
        assert A100_80GB_PCIE.fp16_flops > V100_16GB.fp16_flops

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec(name="bad", fp16_flops=0, memory_bandwidth=1,
                    memory_capacity=1, num_sms=1)
        with pytest.raises(ConfigError):
            GpuSpec(name="bad", fp16_flops=1, memory_bandwidth=1,
                    memory_capacity=1, num_sms=1, kernel_launch_overhead=-1)


class TestNodes:
    def test_paper_testbeds(self):
        v = v100_nvlink_node(4)
        a = a100_pcie_node(4)
        assert v.num_gpus == 4 and a.num_gpus == 4
        # The measured all-reduce bandwidths from §4.1.
        assert v.topology.allreduce_bus_bandwidth == GBps(32.75)
        assert a.topology.allreduce_bus_bandwidth == GBps(14.88)
        assert v.total_memory == GB(64)
        assert a.total_memory == GB(320)

    def test_testbed_registry(self):
        assert set(TESTBEDS) == {"v100", "a100"}
        assert TESTBEDS["v100"]().gpu is V100_16GB

    def test_with_gpus_rescales_topology(self):
        node = v100_nvlink_node(4).with_gpus(2)
        assert node.num_gpus == 2
        assert node.topology.has_direct_link(0, 1)
        pcie = a100_pcie_node(4).with_gpus(8)
        assert pcie.num_gpus == 8
        assert not pcie.topology.has_direct_link(0, 7)

    def test_with_gpus_preserves_bandwidths(self):
        node = a100_pcie_node(4).with_gpus(2)
        assert node.topology.allreduce_bus_bandwidth == GBps(14.88)

    def test_with_gpus_invalid(self):
        with pytest.raises(ConfigError):
            v100_nvlink_node(4).with_gpus(0)
