"""Property test: an overloaded, faulty server always terminates cleanly.

The overload layer's one non-negotiable promise is *bounded* behaviour: no
matter how hostile the combination of burst rate, deadlines, queue bound,
and a mid-run GPU straggler, the run must end with every request in exactly
one terminal state — never a :class:`~repro.errors.DeadlockError`, never an
unbounded queue, never a silently lost request.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan, GpuStraggler
from repro.faults.resilience import ResilienceConfig
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.serving import BurstyProcess, OverloadConfig, Server
from repro.serving.api import make_strategy
from repro.serving.workload import generative_trace

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)
N_REQUESTS = 96


@st.composite
def overload_scenarios(draw):
    rate = draw(st.floats(min_value=1_000.0, max_value=8_000.0))
    burstiness = draw(st.floats(min_value=1.5, max_value=8.0))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    max_pending = draw(st.integers(min_value=4, max_value=48))
    policy = draw(
        st.sampled_from(["reject", "shed-oldest", "shed-by-deadline"])
    )
    deadline_us = draw(
        st.one_of(st.none(), st.floats(min_value=5_000.0, max_value=200_000.0))
    )
    straggler_factor = draw(st.floats(min_value=1.5, max_value=6.0))
    straggler_start = draw(st.floats(min_value=0.0, max_value=20_000.0))
    straggler_len = draw(st.floats(min_value=5_000.0, max_value=80_000.0))
    return dict(
        rate=rate,
        burstiness=burstiness,
        seed=seed,
        max_pending=max_pending,
        policy=policy,
        deadline_us=deadline_us,
        straggler=GpuStraggler(
            start=straggler_start,
            end=straggler_start + straggler_len,
            gpu=draw(st.integers(min_value=0, max_value=3)),
            factor=straggler_factor,
        ),
    )


@given(scenario=overload_scenarios())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_overloaded_faulty_server_always_terminates(scenario):
    trace = generative_trace(
        N_REQUESTS,
        scenario["rate"],
        batch_size=8,
        context_len=128,
        seed=scenario["seed"],
        arrival=BurstyProcess(
            scenario["rate"],
            burstiness=scenario["burstiness"],
            phase_requests=16,
        ),
    )
    cfg = OverloadConfig(
        max_pending_requests=scenario["max_pending"],
        policy=scenario["policy"],
        default_deadline_us=scenario["deadline_us"],
        breaker_check_period_us=2_000.0,
        breaker_trip_checks=2,
    )
    strat = make_strategy("liger", MODEL, NODE)
    server = Server(
        MODEL,
        NODE,
        strat,
        check_memory=False,
        record_trace=False,
        fault_plan=FaultPlan([scenario["straggler"]]),
        resilience=ResilienceConfig(),
        overload=cfg,
    )
    # Must not raise DeadlockError (or anything else): the run terminates.
    result = server.run(trace)
    m = result.metrics
    # Every request reached exactly one terminal state.
    assert m.num_terminal == N_REQUESTS
    assert m.num_completed + m.shed_requests + m.timed_out_requests \
        == N_REQUESTS
    # The pending queue never exceeded its configured bound.
    assert result.overload.peak_pending_requests <= scenario["max_pending"]
    # The KV accountant never oversubscribed a GPU.
    assert result.overload.peak_kv_bytes <= result.overload.kv_capacity_bytes
