"""Tests for runtime kernel decomposition (§3.6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembly import KernelFunc
from repro.core.decomposition import (
    DecompositionPlanner,
    split_all_to_all,
    split_allreduce,
    split_gemm_horizontal,
    split_gemm_vertical,
)
from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.models.ops import all_to_all_op, allreduce_op, attention_op, gemm_op
from repro.profiling import OpProfiler
from repro.sim.kernel import KernelKind


@pytest.fixture
def profiler():
    return OpProfiler(v100_nvlink_node(4))


def kfunc(op, profiler, decomposable=True):
    return KernelFunc(
        op=op,
        duration=profiler.duration(op),
        kind=op.kind,
        batch_id=0,
        batch_size=2,
        seq_len=64,
        decomposable=decomposable,
    )


class TestSplits:
    def test_vertical_preserves_total_columns(self):
        op = gemm_op("g", 0, 144, 7168, 28672)
        piece, rest = split_gemm_vertical(op, 3, 8)
        assert piece.gemm_shape[2] + rest.gemm_shape[2] == 28672
        assert piece.gemm_shape[:2] == (144, 7168)
        assert rest.gemm_shape[:2] == (144, 7168)

    def test_horizontal_preserves_total_rows(self):
        op = gemm_op("g", 0, 144, 7168, 28672)
        piece, rest = split_gemm_horizontal(op, 1, 4)
        assert piece.gemm_shape[0] + rest.gemm_shape[0] == 144

    def test_allreduce_preserves_bytes(self):
        op = allreduce_op("ar", 0, 8e6)
        piece, rest = split_allreduce(op, 5, 8)
        assert piece.comm_bytes + rest.comm_bytes == pytest.approx(8e6)

    def test_invalid_fraction_rejected(self):
        op = gemm_op("g", 0, 144, 512, 512)
        for numer, denom in [(0, 8), (8, 8), (9, 8), (1, 1)]:
            with pytest.raises(ConfigError):
                split_gemm_vertical(op, numer, denom)

    def test_vertical_work_conservation_flops(self, profiler):
        """Split pieces do the same total FLOPs as the whole kernel."""
        op = gemm_op("g", 0, 144, 7168, 28672)
        piece, rest = split_gemm_vertical(op, 3, 8)
        whole_flops = 2 * 144 * 7168 * 28672
        split_flops = sum(
            2 * s.gemm_shape[0] * s.gemm_shape[1] * s.gemm_shape[2]
            for s in (piece, rest)
        )
        assert split_flops == whole_flops


class TestFig9:
    """The paper's decomposition-strategy comparison."""

    def test_vertical_beats_horizontal(self, profiler):
        op = gemm_op("g", 0, 144, 7168, 28672)
        d = 8
        whole = profiler.duration(op)
        vert = sum(
            profiler.duration(split_gemm_vertical(op, 1, d)[0]) for _ in range(d)
        )
        horiz = sum(
            profiler.duration(split_gemm_horizontal(op, 1, d)[0]) for _ in range(d)
        )
        assert vert < horiz
        # vertical overhead is modest; horizontal blows up
        assert vert < 1.5 * whole
        assert horiz > 2.0 * whole


class TestPlanner:
    def test_fits_whole_window_with_largest_piece(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        op = gemm_op("g", 0, 144, 7168, 28672)
        f = kfunc(op, profiler)
        window = profiler.duration(op) * 0.9
        result = planner.split_to_fit(f, window)
        assert result is not None
        piece, rest = result
        assert piece.duration <= window
        assert not piece.decomposable
        assert rest.decomposable
        # pieces partition the columns
        assert piece.op.gemm_shape[2] + rest.op.gemm_shape[2] == 28672

    def test_larger_window_gets_larger_piece(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        op = gemm_op("g", 0, 144, 7168, 28672)
        f = kfunc(op, profiler)
        dur = profiler.duration(op)
        small = planner.split_to_fit(f, dur * 0.3)
        large = planner.split_to_fit(f, dur * 0.8)
        assert small and large
        assert large[0].op.gemm_shape[2] > small[0].op.gemm_shape[2]

    def test_window_too_small_returns_none(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        op = gemm_op("g", 0, 144, 7168, 28672)
        f = kfunc(op, profiler)
        assert planner.split_to_fit(f, 0.5) is None

    def test_scale_applied_to_fit(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        op = allreduce_op("ar", 0, 8e6)
        f = kfunc(op, profiler)
        window = profiler.duration(op) * 0.5
        unscaled = planner.split_to_fit(f, window, scale=1.0)
        scaled = planner.split_to_fit(f, window, scale=2.0)
        assert unscaled is not None and scaled is not None
        assert scaled[0].op.comm_bytes < unscaled[0].op.comm_bytes

    def test_non_decomposable_kernel_refused(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        attn = attention_op("a", 0, batch=2, q_len=64, ctx_len=64, heads=14, head_dim=128)
        f = KernelFunc(
            op=attn, duration=profiler.duration(attn), kind=KernelKind.COMPUTE,
            batch_id=0, batch_size=2, seq_len=64, decomposable=False,
        )
        assert not planner.can_decompose(f)
        assert planner.split_to_fit(f, 1e9) is None

    def test_division_factor_one_disables(self, profiler):
        planner = DecompositionPlanner(profiler, 1)
        f = kfunc(gemm_op("g", 0, 144, 7168, 28672), profiler)
        assert not planner.can_decompose(f)

    def test_profile_divisions_table(self, profiler):
        """The §3.6 offline table: d−1 monotone entries."""
        planner = DecompositionPlanner(profiler, 8)
        f = kfunc(gemm_op("g", 0, 144, 7168, 28672), profiler)
        table = planner.profile_divisions(f)
        assert len(table) == 7
        durations = [t for _, t in table]
        assert durations == sorted(durations)

    def test_tiny_gemm_not_decomposable(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        f = kfunc(gemm_op("g", 0, 2, 4, 4), profiler)
        assert not planner.can_decompose(f)


class TestSplitToFitEdges:
    """Edge coverage for split_to_fit / can_decompose (satellite)."""

    def test_division_factor_one_split_returns_none(self, profiler):
        # d = 1 admits no fractions at all, even with an infinite window.
        planner = DecompositionPlanner(profiler, 1)
        f = kfunc(gemm_op("g", 0, 144, 7168, 28672), profiler)
        assert planner.split_to_fit(f, 1e12) is None

    def test_unregistered_flavour_is_indivisible(self, profiler):
        # all_to_all is NOT in the default rule set (expert_overlap
        # registers it); the planner must refuse, not crash.
        planner = DecompositionPlanner(profiler, 8)
        f = kfunc(all_to_all_op("a2a", 0, 8e6), profiler)
        assert planner.split_rule("all_to_all") is None
        assert not planner.can_decompose(f)
        assert planner.split_to_fit(f, 1e12) is None

    def test_register_split_rule_enables_flavour(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        planner.register_split_rule("all_to_all", split_all_to_all)
        f = kfunc(all_to_all_op("a2a", 0, 8e6), profiler)
        assert planner.split_rule("all_to_all") is split_all_to_all
        assert planner.can_decompose(f)
        window = profiler.duration(f.op) * 0.6
        result = planner.split_to_fit(f, window)
        assert result is not None
        piece, rest = result
        assert piece.duration <= window
        assert ".c" in piece.op.name and rest.op.name.endswith(".rest")
        assert piece.op.comm_bytes + rest.op.comm_bytes == pytest.approx(8e6)

    def test_expert_overlap_policy_registers_all_to_all(self, profiler):
        from repro.core.policy import ExpertOverlapPolicy

        planner = DecompositionPlanner(profiler, 8)
        ExpertOverlapPolicy().configure_decomposer(planner)
        assert planner.split_rule("all_to_all") is split_all_to_all

    def test_zero_byte_collective_is_indivisible(self, profiler):
        planner = DecompositionPlanner(profiler, 8)
        planner.register_split_rule("all_to_all", split_all_to_all)
        f = kfunc(all_to_all_op("a2a", 0, 0.0), profiler)
        assert not planner.can_decompose(f)
        assert planner.split_to_fit(f, 1e12) is None

    def test_empty_remainder_error_message(self):
        # A 1-column GEMM cannot leave a non-empty rest: clear error.
        op = gemm_op("g1", 0, 4, 4, 1)
        with pytest.raises(ConfigError, match=r"g1: vertical split leaves empty remainder"):
            split_gemm_vertical(op, 1, 2)
        with pytest.raises(ConfigError, match=r"g2: horizontal split leaves empty remainder"):
            split_gemm_horizontal(gemm_op("g2", 0, 1, 4, 4), 1, 2)

    def test_degenerate_collective_split_error_messages(self):
        with pytest.raises(ConfigError, match=r"ar: degenerate all-reduce split"):
            split_allreduce(allreduce_op("ar", 0, 0.0), 1, 2)
        with pytest.raises(ConfigError, match=r"a2a: degenerate all-to-all split"):
            split_all_to_all(all_to_all_op("a2a", 0, 0.0), 1, 2)

    def test_all_to_all_invalid_fraction_message(self):
        op = all_to_all_op("a2a", 0, 8e6)
        with pytest.raises(ConfigError, match=r"invalid decomposition fraction 2/2"):
            split_all_to_all(op, 2, 2)

    def test_remainder_smaller_than_smallest_division_stops(self, profiler):
        # Window below the 1/d piece: None, and the kernel is untouched.
        planner = DecompositionPlanner(profiler, 4)
        op = allreduce_op("ar", 0, 8e6)
        f = kfunc(op, profiler)
        smallest = profiler.duration(split_allreduce(op, 1, 4)[0])
        assert planner.split_to_fit(f, smallest * 0.5) is None


@given(
    window_frac=st.floats(min_value=0.05, max_value=0.95),
    d=st.sampled_from([2, 4, 8, 16]),
)
@settings(max_examples=40, deadline=None)
def test_split_piece_always_fits_window(window_frac, d):
    profiler = OpProfiler(v100_nvlink_node(4))
    planner = DecompositionPlanner(profiler, d)
    op = gemm_op("g", 0, 144, 7168, 28672)
    f = kfunc(op, profiler)
    window = profiler.duration(op) * window_frac
    result = planner.split_to_fit(f, window)
    if result is not None:
        piece, rest = result
        assert piece.duration <= window + 1e-9
        assert piece.op.gemm_shape[2] + rest.op.gemm_shape[2] == 28672
