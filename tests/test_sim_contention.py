"""Tests for the contention model and its emergent effect in the Machine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.sim import (
    DefaultContention,
    Engine,
    Kernel,
    KernelKind,
    Machine,
    NullContention,
    Trace,
    default_contention_for,
)


def k(name, dur, kind=KernelKind.COMPUTE, occ=0.5, mem=0.3):
    return Kernel(name=name, kind=kind, duration=dur, occupancy=occ, memory_intensity=mem)


class TestModelProperties:
    def test_lone_kernel_has_unit_slowdown(self):
        model = DefaultContention()
        kern = k("gemm", 100.0)
        assert model.slowdowns([kern]) == {kern.uid: 1.0}

    def test_null_model_always_unit(self):
        model = NullContention()
        ks = [k("a", 1.0), k("b", 1.0, kind=KernelKind.COMM)]
        assert all(v == 1.0 for v in model.slowdowns(ks).values())

    def test_mixed_pair_slows_both(self):
        model = DefaultContention()
        gemm = k("gemm", 100.0, occ=0.9, mem=0.4)
        comm = k("ar", 100.0, kind=KernelKind.COMM, occ=0.06, mem=0.2)
        slows = model.slowdowns([gemm, comm])
        assert slows[gemm.uid] > 1.0
        assert slows[comm.uid] > 1.0

    def test_comm_suffers_more_from_big_compute_than_small(self):
        model = DefaultContention()
        comm = k("ar", 100.0, kind=KernelKind.COMM, occ=0.06)
        big = k("big", 100.0, occ=0.9)
        small = k("small", 100.0, occ=0.2)
        s_big = model.slowdowns([comm, big])[comm.uid]
        s_small = model.slowdowns([comm, small])[comm.uid]
        assert s_big > s_small

    def test_same_kind_compute_contends_harder_than_mixed(self):
        model = DefaultContention()
        a = k("a", 100.0, occ=0.5)
        b = k("b", 100.0, occ=0.5)
        comm = k("ar", 100.0, kind=KernelKind.COMM, occ=0.06)
        mixed = model.slowdowns([a, comm])[a.uid]
        same = model.slowdowns([a, b])[a.uid]
        assert same > mixed

    def test_memory_overcommit_penalizes_memory_hungry_kernels(self):
        model = DefaultContention(
            comm_on_compute=0.0,
            compute_on_comm=0.0,
            same_kind_compute=0.0,
            same_kind_comm=0.0,
            memory_pressure=1.0,
        )
        hungry = k("hungry", 100.0, occ=0.4, mem=0.9)
        other = k("other", 100.0, occ=0.4, mem=0.8)
        slows = model.slowdowns([hungry, other])
        # total mem 1.7 → overcommit 0.7; each slowed by 0.7 * own intensity.
        assert slows[hungry.uid] == pytest.approx(1.0 + 0.7 * 0.9)
        assert slows[other.uid] == pytest.approx(1.0 + 0.7 * 0.8)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ConfigError):
            DefaultContention(comm_on_compute=-0.1)

    def test_per_node_presets(self):
        v = default_contention_for("v100-nvlink")
        a = default_contention_for("a100-pcie")
        assert a.compute_on_comm > v.compute_on_comm

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([KernelKind.COMPUTE, KernelKind.COMM, KernelKind.MEMORY]),
                st.floats(min_value=0.01, max_value=1.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_slowdowns_always_at_least_one(self, specs):
        model = DefaultContention()
        kernels = [
            k(f"k{i}", 10.0, kind=kind, occ=occ, mem=mem)
            for i, (kind, occ, mem) in enumerate(specs)
        ]
        slows = model.slowdowns(kernels)
        assert set(slows) == {kern.uid for kern in kernels}
        assert all(v >= 1.0 for v in slows.values())


class TestEmergentContention:
    """Contention must stretch wall time exactly per the integration rule."""

    def _run_pair(self, model):
        node = v100_nvlink_node(1)
        m = Machine(node, Engine(), contention=model, trace=Trace())
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        gemm = k("gemm", 100.0, occ=0.9, mem=0.4)
        comm = k("ar", 100.0, kind=KernelKind.COMM, occ=0.06, mem=0.2)
        m.launch(s0, gemm, available_at=0.0)
        m.launch(s1, comm, available_at=0.0)
        m.run()
        return {r.name: r for r in m.trace.rows}, model

    def test_no_contention_means_no_stretch(self):
        rows, _ = self._run_pair(NullContention())
        assert rows["gemm"].duration == pytest.approx(100.0)
        assert rows["ar"].duration == pytest.approx(100.0)

    def test_default_contention_stretches_both(self):
        rows, model = self._run_pair(DefaultContention())
        assert rows["gemm"].duration > 100.0
        assert rows["ar"].duration > 100.0

    def test_stretch_matches_model_while_fully_overlapped(self):
        # Both kernels have equal no-load durations, so the one finishing
        # last runs partially alone; the first-finisher is overlapped for its
        # entire life and must stretch by exactly its model slowdown.
        model = DefaultContention()
        rows, _ = self._run_pair(model)
        gemm = k("g", 100.0, occ=0.9, mem=0.4)
        comm = k("c", 100.0, kind=KernelKind.COMM, occ=0.06, mem=0.2)
        slows = model.slowdowns([gemm, comm])
        first = min(rows.values(), key=lambda r: r.end)
        expected = {
            "gemm": slows[gemm.uid],
            "ar": slows[comm.uid],
        }[first.name]
        assert first.duration == pytest.approx(100.0 * expected, rel=1e-6)

    def test_partial_overlap_piecewise_integration(self):
        # comm joins halfway through the gemm: gemm runs 50us clean, then
        # overlapped. Verify end time matches hand-computed piecewise math.
        model = DefaultContention(
            comm_on_compute=0.5,
            compute_on_comm=0.0,
            same_kind_compute=0.0,
            same_kind_comm=0.0,
            memory_pressure=0.0,
        )
        node = v100_nvlink_node(1)
        m = Machine(node, Engine(), contention=model, trace=Trace())
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        gemm = k("gemm", 100.0, occ=0.9, mem=0.0)
        comm = k("ar", 1000.0, kind=KernelKind.COMM, occ=0.1, mem=0.0)
        m.launch(s0, gemm, available_at=0.0)
        m.launch(s1, comm, available_at=50.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        # gemm: 50us alone (50 work done), remaining 50 at slowdown
        # 1 + 0.5*0.1 = 1.05 → ends at 50 + 52.5 = 102.5.
        assert rows["gemm"].end == pytest.approx(102.5, rel=1e-9)

    def test_work_conservation_total_progress(self):
        # However kernels overlap, banked progress must equal the no-load
        # duration at completion (validated via end-time consistency).
        model = DefaultContention()
        node = v100_nvlink_node(1)
        m = Machine(node, Engine(), contention=model, trace=Trace())
        streams = [m.gpu(0).stream(f"s{i}") for i in range(3)]
        durations = [70.0, 110.0, 40.0]
        for s, d, delay in zip(streams, durations, [0.0, 10.0, 30.0]):
            m.launch(
                s,
                k(f"k_{s.name}", d, occ=0.3, mem=0.3),
                available_at=delay,
            )
        m.run()
        for r in m.trace.rows:
            assert r.duration >= r.noload_duration - 1e-6
