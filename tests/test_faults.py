"""Unit tests for the fault-injection subsystem (:mod:`repro.faults`).

Covers the declarative plan (validation, window queries, determinism), the
injector's hook-site semantics (piecewise rate inflation, link degradation,
launch failures, host jitter), the engine heartbeat, the livelock watchdog,
the recovery configuration, and the CLI spec parser.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, DeadlockError, FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    GpuStraggler,
    HostJitter,
    LaunchFailure,
    LinkDegradation,
    plan_from_specs,
)
from repro.faults.resilience import ResilienceConfig
from repro.faults.watchdog import Watchdog
from repro.hw import v100_nvlink_node
from repro.sim.engine import Engine
from repro.sim.gpu import Machine
from repro.sim.kernel import Kernel, KernelKind


def _machine(num_gpus=4):
    return Machine(v100_nvlink_node(num_gpus), Engine())


def k(name, dur=100.0, kind=KernelKind.COMPUTE, occ=0.5, batch_id=0):
    return Kernel(
        name=name, kind=kind, duration=dur, occupancy=occ, batch_id=batch_id
    )


class TestPlanValidation:
    def test_empty_or_inverted_window_rejected(self):
        with pytest.raises(ConfigError):
            GpuStraggler(start=10.0, end=10.0)
        with pytest.raises(ConfigError):
            LinkDegradation(start=10.0, end=5.0)
        with pytest.raises(ConfigError):
            LaunchFailure(start=-1.0, end=5.0)

    def test_parameter_ranges_enforced(self):
        with pytest.raises(ConfigError):
            GpuStraggler(start=0.0, end=1.0, factor=0.5)  # a speed-up
        with pytest.raises(ConfigError):
            LinkDegradation(start=0.0, end=1.0, fraction=0.0)
        with pytest.raises(ConfigError):
            LinkDegradation(start=0.0, end=1.0, fraction=1.5)
        with pytest.raises(ConfigError):
            HostJitter(start=0.0, end=1.0, amplitude=-1.0)

    def test_non_fault_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(["not a fault"])

    def test_overlapping_same_target_windows_rejected(self):
        # Two straggler windows on the same GPU may not overlap; the error
        # names both offending windows.
        with pytest.raises(ConfigError, match=r"overlap.*gpu=1.*gpu=1"):
            FaultPlan(
                [
                    GpuStraggler(start=0.0, end=100.0, gpu=1, factor=2.0),
                    GpuStraggler(start=50.0, end=150.0, gpu=1, factor=3.0),
                ]
            )
        # The single shared link is one target.
        with pytest.raises(ConfigError, match="overlap"):
            FaultPlan(
                [
                    LinkDegradation(start=0.0, end=100.0, fraction=0.5),
                    LinkDegradation(start=50.0, end=100.0, fraction=0.5),
                ]
            )
        with pytest.raises(ConfigError, match="overlap"):
            FaultPlan(
                [
                    LaunchFailure(start=0.0, end=100.0),
                    LaunchFailure(start=99.0, end=200.0),
                ]
            )

    def test_disjoint_or_distinct_target_windows_accepted(self):
        # Half-open windows: [0, 100) then [100, 200) on one target is fine,
        # and different targets may overlap freely.
        FaultPlan(
            [
                GpuStraggler(start=0.0, end=100.0, gpu=1, factor=2.0),
                GpuStraggler(start=100.0, end=200.0, gpu=1, factor=3.0),
                GpuStraggler(start=0.0, end=200.0, gpu=2, factor=5.0),
                LinkDegradation(start=0.0, end=200.0, fraction=0.5),
            ]
        )

    def test_node_fault_parameters_enforced(self):
        from repro.faults.plan import NetworkPartition, NodeCrash, NodeDegradation

        with pytest.raises(ConfigError):
            NodeCrash(start=0.0, end=1.0, node=-1)
        with pytest.raises(ConfigError):
            NetworkPartition(start=0.0, end=1.0, nodes=())
        with pytest.raises(ConfigError):
            NetworkPartition(start=0.0, end=1.0, nodes=(1, 1))
        with pytest.raises(ConfigError):
            NodeDegradation(start=0.0, end=1.0, node=0, factor=0.5)
        # Same node, overlapping crash windows: one target.
        with pytest.raises(ConfigError, match="overlap"):
            FaultPlan(
                [
                    NodeCrash(start=0.0, end=100.0, node=1),
                    NodeCrash(start=50.0, end=150.0, node=1),
                ]
            )
        # Partitions occupy every node they cut off.
        with pytest.raises(ConfigError, match="overlap"):
            FaultPlan(
                [
                    NetworkPartition(start=0.0, end=100.0, nodes=(1, 2)),
                    NetworkPartition(start=50.0, end=150.0, nodes=(2,)),
                ]
            )
        # Distinct nodes never conflict.
        plan = FaultPlan(
            [
                NodeCrash(start=0.0, end=100.0, node=1),
                NodeCrash(start=50.0, end=150.0, node=2),
                NodeDegradation(start=0.0, end=150.0, node=1, factor=3.0),
            ]
        )
        assert len(plan.node_faults) == 3
        assert plan.node_crashed(1, 50.0)
        assert not plan.node_crashed(1, 100.0)
        assert not plan.node_partitioned(1, 50.0)


class TestPlanQueries:
    def test_windows_are_half_open(self):
        f = GpuStraggler(start=10.0, end=20.0)
        assert not f.active(9.999)
        assert f.active(10.0)
        assert f.active(19.999)
        assert not f.active(20.0)

    def test_straggler_factors_resolve_per_gpu(self):
        # Same-GPU windows must be disjoint (overlap is a ConfigError);
        # concurrent windows on *different* GPUs stay independent.
        plan = FaultPlan(
            [
                GpuStraggler(start=0.0, end=100.0, gpu=1, factor=2.0),
                GpuStraggler(start=100.0, end=150.0, gpu=1, factor=3.0),
                GpuStraggler(start=0.0, end=100.0, gpu=2, factor=5.0),
            ]
        )
        assert plan.compute_inflation(1, 25.0) == 2.0
        assert plan.compute_inflation(1, 125.0) == 3.0
        assert plan.compute_inflation(2, 25.0) == 5.0
        assert plan.compute_inflation(0, 25.0) == 1.0

    def test_bandwidth_fraction_tracks_active_window(self):
        plan = FaultPlan(
            [
                LinkDegradation(start=0.0, end=50.0, fraction=0.5),
                LinkDegradation(start=50.0, end=100.0, fraction=0.25),
            ]
        )
        assert plan.bandwidth_fraction(25.0) == 0.5
        assert plan.bandwidth_fraction(75.0) == 0.25
        assert plan.bandwidth_fraction(200.0) == 1.0

    def test_boundaries_sorted_unique(self):
        plan = FaultPlan(
            [
                GpuStraggler(start=10.0, end=50.0),
                LinkDegradation(start=10.0, end=80.0),
            ]
        )
        assert plan.boundaries() == [10.0, 50.0, 80.0]

    def test_host_jitter_is_deterministic(self):
        j = HostJitter(start=0.0, end=100.0, amplitude=10.0)
        seq = [j.jitter(i) for i in range(16)]
        assert seq == [j.jitter(i) for i in range(16)]
        assert all(0.0 <= v <= 10.0 for v in seq)

    def test_plan_from_specs_round_trip(self):
        plan = plan_from_specs(
            stragglers=[(1, 2.0, 0.0, 50.0)],
            links=[(0.5, 10.0, 60.0)],
            launch_windows=[(20.0, 30.0)],
            jitters=[(5.0, 0.0, 100.0)],
        )
        assert len(plan.faults) == 4
        assert plan.compute_inflation(1, 25.0) == 2.0
        assert plan.bandwidth_fraction(25.0) == 0.5
        assert plan.launch_failing(25.0)
        assert plan.host_jitter(25.0, 0) > 0.0


class TestInjectorHooks:
    def test_straggler_inflates_compute_piecewise(self):
        m = _machine()
        inj = FaultInjector(
            FaultPlan([GpuStraggler(start=0.0, end=50.0, gpu=1, factor=4.0)])
        )
        inj.arm(m)
        done = []
        m.on_kernel_complete(lambda kern, t: done.append(t))
        m.launch(m.gpu(1).stream("s"), k("x", 100.0), available_at=0.0)
        m.run()
        # 50 µs at rate 1/4 banks 12.5 µs of work; the remaining 87.5 µs run
        # at full rate after the boundary refresh → completion at 137.5 µs.
        assert done == [pytest.approx(137.5)]

    def test_straggler_leaves_other_gpus_alone(self):
        m = _machine()
        inj = FaultInjector(
            FaultPlan([GpuStraggler(start=0.0, end=1e6, gpu=1, factor=4.0)])
        )
        inj.arm(m)
        done = []
        m.on_kernel_complete(lambda kern, t: done.append((kern.name, t)))
        m.launch(m.gpu(0).stream("s"), k("clean", 100.0), available_at=0.0)
        m.run()
        assert ("clean", pytest.approx(100.0)) in [
            (n, pytest.approx(t)) for n, t in done
        ]

    def test_straggler_spares_comm_kernels(self):
        inj = FaultInjector(
            FaultPlan([GpuStraggler(start=0.0, end=1e6, gpu=1, factor=4.0)])
        )
        inj.arm(_machine())
        comm = k("ar", kind=KernelKind.COMM)
        compute = k("mm", kind=KernelKind.COMPUTE)
        assert inj.kernel_inflation(comm, 1) == 1.0
        assert inj.kernel_inflation(compute, 1) == 4.0

    def test_link_degradation_scales_collective_cost(self):
        from repro.sim.interconnect import CollectiveCostModel

        node = v100_nvlink_node(4)
        clean = CollectiveCostModel(node.topology)
        degraded = CollectiveCostModel(node.topology)
        degraded.bandwidth_scale = lambda: 0.5
        nbytes = 64 * 1024 * 1024
        d0 = clean.allreduce_duration(nbytes, [0, 1, 2, 3])
        d1 = degraded.allreduce_duration(nbytes, [0, 1, 2, 3])
        assert d1 > d0  # half the bandwidth → strictly slower

    def test_bandwidth_scale_out_of_range_rejected(self):
        from repro.sim.interconnect import CollectiveCostModel

        node = v100_nvlink_node(4)
        ccm = CollectiveCostModel(node.topology)
        ccm.bandwidth_scale = lambda: 0.0
        with pytest.raises(ConfigError):
            ccm.allreduce_duration(1e6, [0, 1, 2, 3])

    def test_check_launch_raises_inside_window(self):
        m = _machine()
        inj = FaultInjector(FaultPlan([LaunchFailure(start=0.0, end=10.0)]))
        inj.arm(m)
        with pytest.raises(FaultError):
            inj.check_launch(0)
        assert inj.launch_attempts == 1
        assert inj.launch_failures == 1

    def test_double_arm_rejected(self):
        inj = FaultInjector(FaultPlan())
        inj.arm(_machine())
        with pytest.raises(ConfigError):
            inj.arm(_machine())

    def test_straggler_gpu_out_of_range_rejected_at_arm(self):
        inj = FaultInjector(
            FaultPlan([GpuStraggler(start=0.0, end=1e6, gpu=9, factor=4.0)])
        )
        with pytest.raises(ConfigError, match="GPU 9"):
            inj.arm(_machine())


class TestEngineHeartbeat:
    def test_heartbeat_fires_while_events_remain_then_stops(self):
        eng = Engine()
        beats = []
        eng.schedule_at(100.0, lambda: None)
        eng.heartbeat(10.0, lambda: beats.append(eng.now))
        eng.run()
        # Beats at 10..100; after the last live event drains, no more beats.
        assert beats[0] == pytest.approx(10.0)
        assert len(beats) == 10
        assert eng.now == pytest.approx(100.0)

    def test_heartbeat_stops_when_fn_returns_false(self):
        eng = Engine()
        beats = []
        eng.schedule_at(100.0, lambda: None)
        eng.heartbeat(10.0, lambda: beats.append(eng.now) or len(beats) < 3)
        eng.run()
        assert len(beats) == 3

    def test_invalid_interval_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            Engine().heartbeat(0.0, lambda: None)


class TestWatchdog:
    def test_trips_on_stalled_busy_machine(self):
        m = _machine(1)
        # One enormous kernel: busy for 10^9 µs with no completions.
        m.launch(m.gpu(0).stream("s"), k("forever", 1e9), available_at=0.0)
        wd = Watchdog(m, stall_timeout=1_000.0)
        wd.arm()
        with pytest.raises(DeadlockError, match="watchdog"):
            m.run()
        assert wd.tripped

    def test_quiet_on_healthy_run(self):
        m = _machine(1)
        for i in range(5):
            m.launch(m.gpu(0).stream("s"), k(f"k{i}", 400.0), available_at=0.0)
        wd = Watchdog(m, stall_timeout=1_000.0)
        wd.arm()
        m.run()
        assert not wd.tripped
        assert wd.checks > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            Watchdog(_machine(1), stall_timeout=0.0)


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(violation_threshold=0)
        with pytest.raises(ConfigError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            ResilienceConfig(retry_backoff_us=0.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(backoff_multiplier=0.5)
        with pytest.raises(ConfigError):
            ResilienceConfig(recovery_probe_us=-1.0)


class TestFaultsCli:
    def test_build_plan_parses_all_kinds(self):
        from repro.faults.cli import build_plan

        plan = build_plan(
            ["1:4.0:0:400"], ["0.5:0:300"], ["50:53"], ["5.0:0:100"]
        )
        assert len(plan.faults) == 4
        # CLI windows are in ms → stored in µs.
        assert plan.compute_inflation(1, 200_000.0) == 4.0
        assert plan.bandwidth_fraction(200_000.0) == 0.5
        assert plan.launch_failing(51_000.0)

    def test_malformed_spec_rejected(self):
        from repro.faults.cli import build_plan

        with pytest.raises(ConfigError):
            build_plan(["1:4.0:0"], [], [], [])  # missing a field
        with pytest.raises(ConfigError):
            build_plan([], [], ["abc:def"], [])  # non-numeric


class TestLifecycleUnderFaults:
    def test_lifecycle_downgrades_and_serves_every_chat(self):
        from repro.faults.plan import GpuStraggler
        from repro.models.specs import OPT_13B
        from repro.serving.api import make_strategy
        from repro.serving.lifecycle import LifecycleServer, chat_workload

        node = v100_nvlink_node(4)
        strat = make_strategy("liger", OPT_13B, node)
        plan = FaultPlan(
            [GpuStraggler(start=0.0, end=300_000.0, gpu=2, factor=4.0)]
        )
        server = LifecycleServer(OPT_13B, node, strat, fault_plan=plan)
        result = server.run(chat_workload(12, 30.0, seed=2))
        report = result.resilience
        assert result.num_requests == 12
        assert result.shed_requests == 0
        assert report.violations >= 1
        assert report.downgrades >= 1
        assert report.upgrades == report.downgrades
        assert not report.watchdog_tripped


class TestTopLevelExports:
    def test_fault_api_importable_from_repro(self):
        import repro

        for name in (
            "FaultPlan",
            "GpuStraggler",
            "LinkDegradation",
            "LaunchFailure",
            "HostJitter",
            "ResilienceConfig",
            "ResilienceReport",
            "FaultError",
            "RetryExhaustedError",
        ):
            assert getattr(repro, name) is not None
