"""Tests for the hybrid tensor×pipeline strategy (extension)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, PartitionError
from repro.hw import a100_pcie_node, v100_nvlink_node
from repro.models import OPT_30B
from repro.parallel import HybridStrategy, InterOpStrategy, IntraOpStrategy
from repro.serving import Server
from repro.serving.workload import general_trace

MODEL = OPT_30B.scaled_layers(8)
NODE = v100_nvlink_node(4)


def run(strategy, rate, n=24):
    server = Server(MODEL, NODE, strategy, check_memory=False)
    return server.run(general_trace(n, rate, 2, seed=5))


class TestConstruction:
    def test_default_factorisation_squarest(self):
        s = HybridStrategy(MODEL, NODE)
        assert s.tp == 2 and s.pp == 2

    def test_explicit_tp(self):
        s = HybridStrategy(MODEL, NODE, tp=4)
        assert s.pp == 1
        s = HybridStrategy(MODEL, NODE, pp=4)
        assert s.tp == 1

    def test_invalid_factorisation_rejected(self):
        with pytest.raises(ConfigError):
            HybridStrategy(MODEL, NODE, tp=3)

    def test_tp_must_divide_heads(self):
        from repro.models import ModelSpec

        odd = ModelSpec(name="odd", num_layers=4, num_heads=6, hidden_size=768)
        with pytest.raises(PartitionError):
            HybridStrategy(odd, NODE, tp=4)  # 6 heads not divisible by 4

    def test_stage_gpu_groups(self):
        s = HybridStrategy(MODEL, NODE, tp=2)
        assert s.stage_gpus(0) == [0, 1]
        assert s.stage_gpus(1) == [2, 3]


class TestServing:
    def test_completes_all_requests(self):
        result = run(HybridStrategy(MODEL, NODE), rate=30)
        assert result.metrics.num_completed == 24

    def test_tp4_pp1_matches_intra_op(self):
        """With pp=1 the hybrid degenerates to pure tensor parallelism."""
        hybrid = run(HybridStrategy(MODEL, NODE, tp=4), rate=30)
        intra = run(IntraOpStrategy(MODEL, NODE), rate=30)
        assert hybrid.avg_latency_ms == pytest.approx(
            intra.avg_latency_ms, rel=0.02
        )

    def test_tp1_pp4_close_to_inter_op(self):
        """With tp=1 the hybrid is a pure pipeline (boundary handling is a
        per-rank transfer, so results track the Inter-Op baseline)."""
        hybrid = run(HybridStrategy(MODEL, NODE, pp=4), rate=30)
        inter = run(InterOpStrategy(MODEL, NODE), rate=30)
        assert hybrid.avg_latency_ms == pytest.approx(
            inter.avg_latency_ms, rel=0.10
        )

    def test_middle_ground_latency(self):
        """tp2×pp2 latency lands between pure intra and pure pipeline at a
        low rate (less comm than tp4, more stages than tp4)."""
        rate = 10
        intra = run(IntraOpStrategy(MODEL, NODE), rate=rate)
        hybrid = run(HybridStrategy(MODEL, NODE, tp=2), rate=rate)
        inter = run(InterOpStrategy(MODEL, NODE), rate=rate)
        assert intra.avg_latency_ms < hybrid.avg_latency_ms < inter.avg_latency_ms

    def test_throughput_beats_intra_at_saturation(self):
        hybrid = run(HybridStrategy(MODEL, NODE, tp=2), rate=400, n=40)
        intra = run(IntraOpStrategy(MODEL, NODE), rate=400, n=40)
        assert hybrid.throughput > intra.throughput

    def test_available_from_api(self):
        from repro.serving.api import STRATEGIES, make_strategy

        assert "hybrid" in STRATEGIES
        strat = make_strategy("hybrid", MODEL, NODE, tp=2)
        assert strat.tp == 2

    def test_works_on_pcie_node(self):
        node = a100_pcie_node(4)
        strat = HybridStrategy(MODEL, node, tp=2)
        server = Server(MODEL, node, strat, check_memory=False)
        result = server.run(general_trace(8, 20.0, 2, seed=5))
        assert result.metrics.num_completed == 8
