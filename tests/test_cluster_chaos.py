"""Chaos harness: seeded replay, invariants, and the crash property test.

The harness's promise is twofold: the same master seed replays the same
chaos run **bit-for-bit** (fingerprints compare equal), and under *any*
node-crash schedule every admitted request reaches exactly one terminal
state while the router never dispatches to a node it marked unhealthy.
The hypothesis test pins the second half over arbitrary schedules.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ChaosConfig, Cluster, run_chaos
from repro.cluster.chaos import draw_fault_plan, outcome_fingerprint
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, NodeCrash
from repro.faults.resilience import ReplicaRecoveryConfig
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.serving.workload import general_trace

SMALL_MODEL = OPT_30B.scaled_layers(2)
SMALL_NODE = v100_nvlink_node(2)

SMOKE = ChaosConfig(
    replicas=3,
    strategy="intra",
    gpus=2,
    layers=2,
    num_requests=12,
    rate=200.0,
    crashes=1,
    seed=0,
)


class TestChaosConfig:
    def test_crashes_need_two_replicas(self):
        with pytest.raises(ConfigError, match="2 replicas"):
            ChaosConfig(replicas=1, crashes=1)

    def test_goodput_floor_bounds(self):
        with pytest.raises(ConfigError, match="min_goodput"):
            ChaosConfig(min_goodput=1.5)


class TestScheduleDrawing:
    def test_crashes_never_target_node_zero(self):
        # Node 0 hosts the router; the schedule must always leave it up so
        # the liveness invariant is meaningful.
        for seed in range(20):
            plan = draw_fault_plan(
                ChaosConfig(replicas=3, crashes=2, partitions=1),
                seed,
                horizon=100_000.0,
            )
            for crash in plan.crashes:
                assert crash.node != 0
            for partition in plan.partitions:
                assert not partition.covers(0)

    def test_drawn_plans_are_always_valid(self):
        # The drawer must respect the plan's own overlap validation: the
        # FaultPlan constructor raising would mean the drawer emitted an
        # overlapping same-target schedule.
        for seed in range(30):
            draw_fault_plan(
                ChaosConfig(
                    replicas=3, crashes=3, partitions=2, degradations=2
                ),
                seed,
                horizon=50_000.0,
            )

    def test_schedule_is_a_pure_function_of_the_seed(self):
        config = ChaosConfig(replicas=3, crashes=2, partitions=1)
        a = draw_fault_plan(config, 99, horizon=80_000.0)
        b = draw_fault_plan(config, 99, horizon=80_000.0)
        assert [f.describe() for f in a.faults] == [
            f.describe() for f in b.faults
        ]


class TestSeededReplay:
    def test_same_seed_replays_bit_for_bit(self):
        first = run_chaos(SMOKE)
        second = run_chaos(SMOKE)
        assert first.fingerprint == second.fingerprint
        assert first.describe() == second.describe()

    def test_different_seeds_diverge(self):
        fingerprints = {
            run_chaos(
                ChaosConfig(
                    replicas=3, strategy="intra", gpus=2, layers=2,
                    num_requests=12, rate=200.0, crashes=1, seed=seed,
                )
            ).fingerprint
            for seed in range(3)
        }
        assert len(fingerprints) > 1

    def test_report_leads_with_the_seed(self):
        report = run_chaos(SMOKE)
        first_line = report.describe().splitlines()[0]
        assert first_line == f"chaos run: seed={SMOKE.seed}"
        # The derived seeds are printed in their fixed derivation order.
        assert list(report.derived_seeds) == [
            "schedule", "jitter", "router", "seqlen",
        ]

    def test_smoke_invariants_hold(self):
        report = run_chaos(SMOKE)
        assert report.ok, report.describe()
        result = report.result
        terminal = (
            result.completed_requests
            + result.shed_requests
            + result.timed_out_requests
        )
        assert terminal == result.num_requests
        assert result.unhealthy_dispatches == 0
        assert result.router_completed_requests == result.completed_requests

    def test_fingerprint_is_sensitive_to_outcomes(self):
        # The digest covers every request's terminal state: the same
        # result hashed against a served workload (completed requests)
        # and an unserved copy (pending requests) must differ.
        result = run_chaos(SMOKE).result
        served = general_trace(4, 100.0, 2, seed=1)
        pending = general_trace(4, 100.0, 2, seed=1)
        for batch in served:
            batch.complete(1_000.0)
        fp_served = outcome_fingerprint(result, served)
        fp_pending = outcome_fingerprint(result, pending)
        assert fp_served != fp_pending
        assert len(fp_served) == 64  # sha256 hex


# ----------------------------------------------------------------------
# The property: arbitrary crash schedules never lose a request and never
# reach a node the router marked unhealthy.
# ----------------------------------------------------------------------
@st.composite
def crash_scenarios(draw):
    replicas = draw(st.integers(min_value=2, max_value=3))
    rate = draw(st.floats(min_value=100.0, max_value=3_000.0))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    crashes = []
    for node in range(replicas):
        if not draw(st.booleans()):
            continue
        start = draw(st.floats(min_value=0.0, max_value=150_000.0))
        length = draw(
            st.one_of(
                st.floats(min_value=5_000.0, max_value=100_000.0),
                st.just(float("inf")),  # crash forever: no recovery
            )
        )
        crashes.append(NodeCrash(start=start, end=start + length, node=node))
    period = draw(st.sampled_from([1_000.0, 5_000.0]))
    return dict(
        replicas=replicas,
        rate=rate,
        seed=seed,
        plan=FaultPlan(crashes),
        recovery=ReplicaRecoveryConfig(health_check_period_us=period),
    )


@given(scenario=crash_scenarios())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_arbitrary_crash_schedules_keep_the_invariants(scenario):
    batches = general_trace(12, scenario["rate"], 2, seed=scenario["seed"])
    cluster = Cluster(
        SMALL_MODEL,
        SMALL_NODE,
        replicas=scenario["replicas"],
        strategy="intra",
        fault_plan=scenario["plan"],
        recovery=scenario["recovery"],
        check_memory=False,
        seed=scenario["seed"],
    )
    result = cluster.run(batches)

    # Every admitted request reached exactly one terminal state.  A lost
    # request raises DeadlockError inside run(); a double transition
    # raises inside the Request state machine — reaching here with the
    # counts adding up is the whole property.
    terminal = (
        result.completed_requests
        + result.shed_requests
        + result.timed_out_requests
    )
    assert terminal == result.num_requests
    # The router never dispatched to a node it had marked unhealthy.
    assert result.unhealthy_dispatches == 0
    # The completion gate accepted exactly the completions that counted.
    assert result.router_completed_requests == result.completed_requests
