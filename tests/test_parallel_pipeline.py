"""Pipeline-specific behaviour of the Inter-Op / Inter-Th strategies."""

from __future__ import annotations

import pytest

from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.models.ops import attention_op, elementwise_op, gemm_op
from repro.parallel import InterOpStrategy, InterTheoreticalStrategy
from repro.parallel.inter_theoretical import partition_op_for_theoretical
from repro.serving import Server
from repro.serving.request import Batch, Phase, Request
from repro.serving.workload import general_trace
from repro.sim.kernel import KernelKind

MODEL = OPT_30B.scaled_layers(8)
NODE = v100_nvlink_node(4)


def fixed_batch(arrival, size=2, seq=64):
    return Batch(
        requests=[
            Request(rid=i, arrival=arrival, seq_len=seq, phase=Phase.PREFILL)
            for i in range(size)
        ]
    )


class TestPipelineStructure:
    def test_stages_execute_in_order_on_their_devices(self):
        strat = InterOpStrategy(MODEL, NODE)
        server = Server(MODEL, NODE, strat, record_trace=True, check_memory=False)
        server.run([fixed_batch(1.0)])
        trace = server.trace
        # Every device ran compute; stage s starts after stage s-1 finishes.
        stage_spans = {}
        for g in range(4):
            rows = [
                r for r in trace.rows
                if r.gpu == g and r.kind is not KernelKind.COMM
            ]
            assert rows, f"stage {g} ran nothing"
            stage_spans[g] = (min(r.start for r in rows), max(r.end for r in rows))
        for g in range(1, 4):
            assert stage_spans[g][0] >= stage_spans[g - 1][1] - 1e-6

    def test_pipeline_overlaps_consecutive_batches(self):
        strat = InterOpStrategy(MODEL, NODE)
        server = Server(MODEL, NODE, strat, record_trace=True, check_memory=False)
        b0, b1 = fixed_batch(1.0), fixed_batch(2.0)
        server.run([b0, b1])
        trace = server.trace
        # While stage 1 runs the first batch, stage 0 must already run the
        # second — that concurrency is the whole point of pipelining.
        g0_b1 = [r for r in trace.rows if r.gpu == 0 and r.batch_id == b1.batch_id
                 and r.kind is not KernelKind.COMM]
        g1_b0 = [r for r in trace.rows if r.gpu == 1 and r.batch_id == b0.batch_id
                 and r.kind is not KernelKind.COMM]
        assert g0_b1 and g1_b0
        assert min(r.start for r in g0_b1) < max(r.end for r in g1_b0)

    def test_latency_roughly_single_device_traversal(self):
        """Inter-op latency ≈ whole-model time on one device + transfers;
        it must exceed 0.9× the intra-op 4-GPU latency × ~3 (the paper's
        'cannot improve latency' claim, loosely bounded)."""
        from repro.parallel import IntraOpStrategy

        inter = Server(
            MODEL, NODE, InterOpStrategy(MODEL, NODE), check_memory=False
        ).run([fixed_batch(1.0)])
        intra = Server(
            MODEL, NODE, IntraOpStrategy(MODEL, NODE), check_memory=False
        ).run([fixed_batch(1.0)])
        assert inter.avg_latency_ms > 1.5 * intra.avg_latency_ms


class TestInterTheoreticalPartitioning:
    def test_gemm_column_split(self):
        op = gemm_op("qkv", 0, 128, 1024, 3072, split_dim="n")
        shards = partition_op_for_theoretical(op, 4)
        assert len(shards) == 4
        assert all(s.gemm_shape == (128, 1024, 768) for s in shards)

    def test_gemm_row_split(self):
        op = gemm_op("proj", 0, 128, 4096, 1024, split_dim="k")
        shards = partition_op_for_theoretical(op, 4)
        assert all(s.gemm_shape == (128, 1024, 1024) for s in shards)

    def test_attention_head_split(self):
        op = attention_op("a", 0, batch=2, q_len=8, ctx_len=8, heads=8, head_dim=64)
        shards = partition_op_for_theoretical(op, 4)
        assert len(shards) == 4
        assert all(s.attn_heads == 2 for s in shards)

    def test_replicated_ops_unchanged(self):
        op = elementwise_op("ln", 0, 1e5)
        assert partition_op_for_theoretical(op, 4) == [op]

    def test_tp1_identity(self):
        op = gemm_op("g", 0, 8, 16, 16, split_dim="n")
        assert partition_op_for_theoretical(op, 1) == [op]

    def test_indivisible_rejected(self):
        from repro.errors import ConfigError

        op = gemm_op("g", 0, 8, 16, 30, split_dim="n")
        with pytest.raises(ConfigError):
            partition_op_for_theoretical(op, 4)

    def test_inter_th_runs_more_kernels_than_inter_op(self):
        th = InterTheoreticalStrategy(MODEL, NODE)
        op = InterOpStrategy(MODEL, NODE)
        batches = general_trace(4, 20.0, 2, seed=0)
        s1 = Server(MODEL, NODE, th, record_trace=True, check_memory=False)
        r1 = s1.run(batches)
        batches2 = general_trace(4, 20.0, 2, seed=0)
        s2 = Server(MODEL, NODE, op, record_trace=True, check_memory=False)
        r2 = s2.run(batches2)
        assert len(r1.trace.rows) > len(r2.trace.rows)
