"""Tests for repro.core.policy: registry, classes, helpers, packing parity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from policy_conformance import make_func, make_workload_vecs
from repro.core.contention import NO_ANTICIPATION
from repro.core.policy import (
    POLICIES,
    RC_ALL_TO_ALL,
    RC_COMPUTE,
    RC_NVLINK,
    RC_P2P,
    RESOURCE_CLASSES,
    ExpertOverlapPolicy,
    LigerDichotomyPolicy,
    default_resource_class,
    make_policy,
    policy_names,
)
from repro.core.scheduler import LigerScheduler
from repro.errors import ConfigError
from repro.sim.kernel import KernelKind


def _scheduler(policy, batches):
    s = LigerScheduler(
        anticipator=NO_ANTICIPATION, policy=policy, max_inflight=8
    )
    for vec in make_workload_vecs(batches):
        s.enqueue(vec)
    return s


# ----------------------------------------------------------------------
# Resource classification
# ----------------------------------------------------------------------
class TestResourceClasses:
    def test_class_palette_is_complete(self):
        assert RESOURCE_CLASSES == (
            RC_COMPUTE, RC_NVLINK, RC_ALL_TO_ALL, RC_P2P
        )

    @pytest.mark.parametrize(
        "flavour,expected",
        [
            ("gemm", RC_COMPUTE),
            ("all_reduce", RC_NVLINK),
            ("all_to_all", RC_ALL_TO_ALL),
            ("p2p", RC_P2P),
        ],
    )
    def test_default_classifier(self, flavour, expected):
        assert default_resource_class(make_func(flavour, 10.0)) == expected

    def test_policy_resource_class_uses_default(self):
        func = make_func("all_to_all", 5.0)
        for name in POLICIES:
            assert make_policy(name).resource_class(func) == RC_ALL_TO_ALL


# ----------------------------------------------------------------------
# Registry and identity
# ----------------------------------------------------------------------
class TestRegistry:
    def test_policy_names_sorted(self):
        assert policy_names() == tuple(sorted(POLICIES))
        assert "dichotomy" in policy_names()
        assert "expert_overlap" in policy_names()

    def test_make_policy_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown scheduling policy"):
            make_policy("nope")

    def test_bad_packing_rejected(self):
        with pytest.raises(ConfigError, match="packing must be"):
            make_policy("dichotomy", packing="worst_fit")

    def test_fingerprint_separates_policies_and_packing(self):
        fps = {
            make_policy(name, packing=packing).fingerprint()
            for name in POLICIES
            for packing in ("first_fit", "best_fit")
        }
        assert len(fps) == 2 * len(POLICIES)

    def test_default_is_dichotomy_first_fit(self):
        s = LigerScheduler(anticipator=NO_ANTICIPATION)
        assert isinstance(s.policy, LigerDichotomyPolicy)
        assert s.policy.fingerprint() == ("dichotomy", "first_fit")


# ----------------------------------------------------------------------
# Primary delimitation differences
# ----------------------------------------------------------------------
class TestPrimaryDelimitation:
    def test_dichotomy_groups_comm_flavours_together(self):
        # all_reduce then all_to_all are both COMM: one dichotomy run.
        s = _scheduler(
            LigerDichotomyPolicy(),
            [[make_func("all_reduce", 5.0), make_func("all_to_all", 7.0),
              make_func("gemm", 3.0)]],
        )
        r = s.plan_round()
        assert [f.op.op for f in r.subset0] == ["all_reduce", "all_to_all"]
        assert r.window == 12.0

    def test_expert_overlap_splits_comm_flavours(self):
        # Same stream: the class switch all_reduce→all_to_all ends the run.
        s = _scheduler(
            ExpertOverlapPolicy(),
            [[make_func("all_reduce", 5.0), make_func("all_to_all", 7.0),
              make_func("gemm", 3.0)]],
        )
        r = s.plan_round()
        assert [f.op.op for f in r.subset0] == ["all_reduce"]
        assert r.primary_class == RC_NVLINK
        r2 = s.plan_round()
        assert [f.op.op for f in r2.subset0] == ["all_to_all"]
        assert r2.primary_class == RC_ALL_TO_ALL

    def test_expert_overlap_packs_nvlink_under_all_to_all_window(self):
        # Dichotomy blocks any COMM under a COMM window; expert_overlap
        # admits the other collective flavour.
        batches = lambda: [  # noqa: E731 - fresh funcs per scheduler
            [make_func("all_to_all", 20.0), make_func("gemm", 1.0)],
            [make_func("all_reduce", 10.0), make_func("gemm", 1.0)],
        ]
        r_dich = _scheduler(LigerDichotomyPolicy(), batches()).plan_round()
        assert r_dich.subset1 == []
        r_eo = _scheduler(ExpertOverlapPolicy(), batches()).plan_round()
        # ...and keeps walking: the compute kernel behind it fits too.
        assert [f.op.op for f in r_eo.subset1] == ["all_reduce", "gemm"]
        assert r_eo.secondary_fill == 11.0


# ----------------------------------------------------------------------
# Shared pop/split/record helpers
# ----------------------------------------------------------------------
class TestSharedHelpers:
    def test_take_whole_pops_collects_records(self):
        policy = LigerDichotomyPolicy()
        s = _scheduler(
            policy,
            [[make_func("gemm", 10.0)],
             [make_func("all_reduce", 4.0), make_func("gemm", 1.0)]],
        )
        fv = s.processing[1]
        subset1, record = [], []
        taken = policy._take_whole(s, fv, 1, subset1, record)
        assert taken == 4.0
        assert [f.op.op for f in subset1] == ["all_reduce"]
        assert record == [(1, None)]
        assert fv.peek().op.op == "gemm"  # head consumed

    def test_take_split_pushes_remainder_back(self):
        policy = LigerDichotomyPolicy()
        s = _scheduler(
            policy,
            [[make_func("gemm", 10.0)],
             [make_func("all_reduce", 9.0), make_func("gemm", 1.0)]],
        )
        fv = s.processing[1]
        whole = fv.peek()
        piece = make_func("all_reduce", 3.0, name="ar.c1/3", batch_id=1)
        rest = make_func("all_reduce", 6.0, name="ar.rest", batch_id=1)
        subset1, record = [], []
        taken = policy._take_split(s, fv, 1, (piece, rest), subset1, record)
        assert taken == 3.0
        assert subset1 == [piece]
        assert record == [(1, (piece, rest))]
        assert fv.peek() is rest  # remainder at the head, whole gone
        assert whole not in (fv.peek(),)

    def test_take_whole_without_record(self):
        policy = LigerDichotomyPolicy()
        s = _scheduler(
            policy,
            [[make_func("gemm", 10.0)],
             [make_func("all_reduce", 4.0), make_func("gemm", 1.0)]],
        )
        subset1 = []
        policy._take_whole(s, s.processing[1], 1, subset1, None)
        assert len(subset1) == 1


# ----------------------------------------------------------------------
# First-fit / best-fit parity (satellite: packing property test)
# ----------------------------------------------------------------------
def _packed_fill(packing: str, window: float, heads) -> float:
    """Plan one round: primary [gemm window], then one batch per head."""
    batches = [[make_func("gemm", window), make_func("all_reduce", 1.0)]]
    for i, dur in enumerate(heads):
        batches.append(
            [make_func("all_reduce", dur, batch_id=i + 1),
             make_func("gemm", 1.0, batch_id=i + 1)]
        )
    s = _scheduler(make_policy("dichotomy", packing=packing), batches)
    round_ = s.plan_round()
    round_.validate_principle1()  # Principle-1 clean for both packers
    return round_.secondary_fill


class TestPackingParity:
    @settings(max_examples=60, deadline=None)
    @given(
        n_heads=st.integers(min_value=1, max_value=6),
        head=st.floats(min_value=1.0, max_value=50.0),
        slots=st.integers(min_value=0, max_value=8),
        # slack stays off 0: an exact-fit window is 1-ulp fragile under
        # the packer's sequential remaining -= head accounting.
        slack=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_equal_heads_fill_parity(self, n_heads, head, slots, slack):
        """With identical-duration candidate heads the two packers fill the
        window identically: both take min(n_heads, floor(window/head))
        heads, so best-fit fill >= first-fit fill holds with equality.
        (With *unequal* heads first-fit can beat best-fit — greedy
        largest-first is not optimal online — so >= is asserted only on
        this provably-equal family.)
        """
        window = head * slots + head * slack  # room for exactly `slots`
        ff = _packed_fill("first_fit", window, [head] * n_heads)
        bf = _packed_fill("best_fit", window, [head] * n_heads)
        expected = head * min(n_heads, slots)
        assert ff == pytest.approx(expected)
        assert bf >= ff  # equality on this family; >= is the contract
        assert bf == pytest.approx(expected)

    def test_best_fit_beats_first_fit_when_order_hurts(self):
        # Window 10; arrival order offers 7 then 10.  First-fit takes 7 and
        # dead-ends (10 no longer fits, no decomposer); best-fit takes the
        # exact-fit 10.
        ff = _packed_fill("first_fit", 10.0, [7.0, 10.0])
        bf = _packed_fill("best_fit", 10.0, [7.0, 10.0])
        assert ff == 7.0
        assert bf == 10.0

    def test_both_packers_principle1_clean_under_anticipation(self):
        from repro.core.contention import ContentionAnticipator
        from repro.profiling.contention_profiler import ContentionFactors

        anticipator = ContentionAnticipator(
            ContentionFactors(compute=1.10, comm=1.15)
        )
        for packing in ("first_fit", "best_fit"):
            batches = [
                [make_func("gemm", 30.0), make_func("all_reduce", 1.0)],
                [make_func("all_reduce", 20.0), make_func("gemm", 1.0)],
                [make_func("all_reduce", 8.0), make_func("gemm", 1.0)],
            ]
            s = LigerScheduler(
                anticipator=anticipator,
                policy=make_policy("dichotomy", packing=packing),
                max_inflight=8,
            )
            for vec in make_workload_vecs(batches):
                s.enqueue(vec)
            r = s.plan_round()
            r.validate_principle1()
            # fill is anticipated (scaled), not no-load
            assert r.secondary_fill == pytest.approx(
                sum(
                    anticipator.anticipated(f.duration, f.kind)
                    for f in r.subset1
                )
            )


# ----------------------------------------------------------------------
# Round metadata
# ----------------------------------------------------------------------
class TestRoundMetadata:
    def test_round_carries_primary_class(self):
        s = _scheduler(
            ExpertOverlapPolicy(), [[make_func("all_to_all", 5.0)]]
        )
        r = s.plan_round()
        assert r.primary_class == RC_ALL_TO_ALL
        assert r.primary_kind is KernelKind.COMM
