"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_schedule_and_run_executes_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(5.0, lambda: order.append("b"))
    eng.schedule(1.0, lambda: order.append("a"))
    eng.schedule(9.0, lambda: order.append("c"))
    end = eng.run()
    assert order == ["a", "b", "c"]
    assert end == 9.0
    assert eng.now == 9.0


def test_same_time_ties_broken_by_priority_then_insertion():
    eng = Engine()
    order = []
    eng.schedule(1.0, lambda: order.append("late"), priority=9)
    eng.schedule(1.0, lambda: order.append("first"), priority=0)
    eng.schedule(1.0, lambda: order.append("second"), priority=0)
    eng.run()
    assert order == ["first", "second", "late"]


def test_cancelled_events_do_not_fire():
    eng = Engine()
    fired = []
    handle = eng.schedule(1.0, lambda: fired.append("x"))
    eng.schedule(0.5, lambda: handle.cancel())
    eng.run()
    assert fired == []


def test_cancel_is_idempotent_and_safe_after_fire():
    eng = Engine()
    handle = eng.schedule(0.0, lambda: None)
    eng.run()
    handle.cancel()
    handle.cancel()


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    eng = Engine()
    eng.schedule(5.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_at(1.0, lambda: None)


def test_nonfinite_time_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(float("nan"), lambda: None)
    with pytest.raises(SimulationError):
        eng.schedule(float("inf"), lambda: None)


def test_callbacks_can_schedule_more_events():
    eng = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            eng.schedule(1.0, lambda: chain(n + 1))

    eng.schedule(0.0, lambda: chain(0))
    end = eng.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert end == 5.0


def test_run_until_stops_without_executing_later_events():
    eng = Engine()
    seen = []
    eng.schedule(1.0, lambda: seen.append(1))
    eng.schedule(10.0, lambda: seen.append(10))
    end = eng.run(until=5.0)
    assert seen == [1]
    assert end == 5.0
    # The later event survives and can be run afterwards.
    eng.run()
    assert seen == [1, 10]


def test_step_executes_single_event():
    eng = Engine()
    seen = []
    eng.schedule(1.0, lambda: seen.append("a"))
    eng.schedule(2.0, lambda: seen.append("b"))
    assert eng.step() is True
    assert seen == ["a"]
    assert eng.step() is True
    assert eng.step() is False
    assert seen == ["a", "b"]


def test_pending_count_excludes_cancelled():
    eng = Engine()
    h1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.pending == 2
    h1.cancel()
    assert eng.pending == 1


def test_peek_time_skips_cancelled():
    eng = Engine()
    h1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    h1.cancel()
    assert eng.peek_time() == 2.0


def test_max_events_guard():
    eng = Engine()

    def loop():
        eng.schedule(0.0, loop)

    eng.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        eng.run(max_events=100)


def test_run_is_not_reentrant():
    eng = Engine()
    errors = []

    def reenter():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.schedule(0.0, reenter)
    eng.run()
    assert len(errors) == 1


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    eng = Engine()
    fired = []
    for d in delays:
        eng.schedule(d, lambda d=d: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e4), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_cancelled_subset_never_fires(items):
    eng = Engine()
    fired = []
    handles = []
    for i, (d, cancel) in enumerate(items):
        handles.append((eng.schedule(d, lambda i=i: fired.append(i)), cancel))
    for h, cancel in handles:
        if cancel:
            h.cancel()
    eng.run()
    expected = {i for i, (_, cancel) in enumerate(items) if not cancel}
    assert set(fired) == expected

def test_negative_epsilon_delay_clamps_to_now():
    """schedule() and schedule_at() tolerate the same float-skew epsilon.

    Round boundaries accumulate float error; a delay an epsilon short of
    zero (or an absolute time an epsilon short of now) must land *at* now
    rather than raise — and both entry points must agree about the same
    instant.
    """
    eng = Engine()
    eng.schedule(5.0, lambda: None)
    eng.run()
    assert eng.now == 5.0
    fired = []
    h1 = eng.schedule(-1e-12, lambda: fired.append("delay"))
    h2 = eng.schedule_at(eng.now - 5e-10, lambda: fired.append("abs"))
    assert h1.time == eng.now
    assert h2.time == eng.now
    eng.run()
    assert fired == ["delay", "abs"]
    # Beyond the tolerance both still reject.
    with pytest.raises(SimulationError):
        eng.schedule(-1e-8, lambda: None)
    with pytest.raises(SimulationError):
        eng.schedule_at(eng.now - 1e-8, lambda: None)


def test_schedule_many_matches_repeated_schedule_at():
    """A batch splice fires in exactly the order repeated schedule_at gives."""
    entries = [(3.0, 0, "c"), (1.0, 0, "a"), (1.0, 1, "b"), (3.0, 0, "d")]

    seq_eng = Engine()
    seq_fired = []
    for t, p, tag in entries:
        seq_eng.schedule_at(t, lambda tag=tag: seq_fired.append(tag), priority=p)
    seq_eng.run()

    many_eng = Engine()
    many_fired = []
    handles = many_eng.schedule_many(
        [(t, p, lambda tag=tag: many_fired.append(tag)) for t, p, tag in entries]
    )
    assert len(handles) == len(entries)
    many_eng.run()
    assert many_fired == seq_fired == ["a", "b", "c", "d"]


def test_schedule_many_big_splice_heapifies():
    """Splices larger than the live heap take the extend-and-heapify path."""
    eng = Engine()
    eng.schedule(100.0, lambda: None)  # one pre-existing entry
    fired = []
    n = 50
    eng.schedule_many(
        [(float(i % 7), 0, lambda i=i: fired.append(i)) for i in range(n)]
    )
    assert eng.pending == n + 1
    eng.run()
    assert len(fired) == n
    # Same-instant entries keep list order within each timestamp bucket.
    assert fired == sorted(range(n), key=lambda i: (i % 7, i))


def test_schedule_many_rejects_past_and_nonfinite():
    eng = Engine()
    eng.schedule(5.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_many([(1.0, 0, lambda: None)])
    with pytest.raises(SimulationError):
        eng.schedule_many([(float("inf"), 0, lambda: None)])


def test_step_consumes_tombstones_like_run():
    """step() shares run()'s pop path: tombstones swallowed, peek consistent."""
    eng = Engine()
    h1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: pytest.fail("never advanced this far"))
    fired = []
    eng.schedule(1.5, lambda: fired.append("mid"))
    h1.cancel()
    assert eng.peek_time() == 1.5
    assert eng.step() is True
    assert fired == ["mid"]
    assert eng.now == 1.5
    assert eng.peek_time() == 2.0
