"""The serving-session chassis: golden equivalence + composed subsystems.

Two halves:

* **Equivalence** — every (server, strategy) golden scenario must reproduce
  the pre-chassis fingerprint bit-for-bit with an empty
  :class:`~repro.serving.session.ServingConfig` (the zero-cost convention
  survives the rebase).
* **Capabilities** — the generation servers now ride the chassis, so fault
  injection, admission control, deadlines, and observability must work on
  :class:`~repro.serving.generation.ContinuousBatchingServer` — none of
  which existed before the chassis.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, LaunchFailure
from repro.faults.resilience import ResilienceConfig
from repro.hw import v100_nvlink_node
from repro.models import MODELS
from repro.obs import Observability
from repro.serving import (
    ContinuousBatchingServer,
    LifecycleServer,
    ServingConfig,
    StaticBatchingServer,
    chat_workload,
    generation_workload,
)
from repro.serving.api import make_strategy
from repro.serving.session import ServingSession
from serving_goldens import (
    GOLDEN_PATH,
    SCENARIOS,
    fingerprint,
    reset_batch_ids,
    run_scenario,
)

MODEL = MODELS["OPT-13B"].scaled_layers(2)
NODE = v100_nvlink_node(4)


def _load_goldens():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Golden equivalence (zero-cost convention)
# ----------------------------------------------------------------------
class TestGoldenEquivalence:
    @pytest.mark.parametrize("server,strategy", SCENARIOS)
    def test_trace_bit_identical_to_pre_chassis_golden(self, server, strategy):
        goldens = _load_goldens()
        _, trace = run_scenario(server, strategy)
        assert fingerprint(trace) == goldens[f"{server}/{strategy}"], (
            f"{server}/{strategy}: timeline diverged from the pre-chassis "
            "golden — the zero-cost convention is broken"
        )

    def test_explicit_empty_config_matches_golden(self):
        """Passing config= explicitly takes the same zero-cost path."""
        goldens = _load_goldens()
        _, trace = run_scenario(
            "continuous", "liger", config=ServingConfig(record_trace=True)
        )
        assert fingerprint(trace) == goldens["continuous/liger"]

    def test_config_and_legacy_kwargs_clash(self):
        strat = make_strategy("intra", MODEL, NODE)
        with pytest.raises(ConfigError, match="not both"):
            ContinuousBatchingServer(
                MODEL, NODE, strat,
                config=ServingConfig(),
                observability=Observability(),
                check_memory=False,
            )


# ----------------------------------------------------------------------
# The chassis itself
# ----------------------------------------------------------------------
class TestServingSession:
    def test_pipeline_stage_order_plain(self):
        strat = make_strategy("intra", MODEL, NODE)
        session = ServingSession(
            MODEL, NODE, strat,
            config=ServingConfig(),
            check_memory=False,
            complete_callback=lambda b, t: None,
        )
        assert session.pipeline.describe() == "dispatch → strategy"

    def test_pipeline_stage_order_fully_armed(self):
        from repro.serving.overload import OverloadConfig

        strat = make_strategy("intra", MODEL, NODE)
        session = ServingSession(
            MODEL, NODE, strat,
            config=ServingConfig(
                fault_plan=FaultPlan([LaunchFailure(start=0.0, end=1.0)]),
                overload=OverloadConfig(),
                observability=Observability(),
            ),
            check_memory=False,
            complete_callback=lambda b, t: None,
            use_overload_controller=True,
            recovery_uses_metrics=True,
        )
        assert session.pipeline.describe() == "admission → dispatch → recovery"
        assert session.recovery is not None
        assert session.overload_ctl is not None

    def test_strategy_mismatch_rejected(self):
        other = MODELS["OPT-13B"].scaled_layers(4)
        strat = make_strategy("intra", other, NODE)
        with pytest.raises(ConfigError, match="different model/node"):
            ServingSession(
                MODEL, NODE, strat,
                config=ServingConfig(),
                check_memory=False,
                complete_callback=lambda b, t: None,
            )


# ----------------------------------------------------------------------
# New capabilities on the generation servers
# ----------------------------------------------------------------------
class TestContinuousBatchingCapabilities:
    def _serve(self, jobs, **cfg_kwargs):
        reset_batch_ids()
        strat = make_strategy("liger", MODEL, NODE)
        srv = ContinuousBatchingServer(
            MODEL, NODE, strat, max_batch=8, pipeline_depth=2,
            check_memory=False, config=ServingConfig(**cfg_kwargs),
        )
        return srv.run(jobs)

    def test_fault_injection_with_recovery(self):
        """A launch-fail window triggers retries, yet every job completes."""
        jobs = generation_workload(8, 200.0, seed=0)
        plan = FaultPlan([LaunchFailure(start=0.0, end=20_000.0)])
        result = self._serve(
            jobs,
            fault_plan=plan,
            resilience=ResilienceConfig(max_retries=8, enable_fallback=False),
        )
        assert result.resilience is not None
        assert result.resilience.retries > 0
        assert result.metrics.num_completed == 8
        assert result.metrics.num_terminal == 8

    def test_admission_control_sheds_under_burst(self):
        """A tiny pending bound sheds jobs; every job still terminates."""
        from repro.serving.overload import OverloadConfig

        jobs = generation_workload(24, 4000.0, seed=2)
        result = self._serve(
            jobs,
            overload=OverloadConfig(max_pending_requests=2, policy="reject"),
        )
        assert result.overload is not None
        assert result.overload.shed_requests > 0
        assert result.metrics.shed_requests == result.overload.shed_requests
        assert result.metrics.num_terminal == 24
        assert result.metrics.num_completed < 24

    def test_deadlines_time_out_queued_jobs(self):
        from repro.serving.overload import OverloadConfig

        jobs = generation_workload(16, 2000.0, seed=3)
        result = self._serve(
            jobs,
            overload=OverloadConfig(
                max_pending_requests=64, default_deadline_us=2_000.0
            ),
        )
        assert result.metrics.timed_out_requests > 0
        assert result.metrics.num_terminal == 16
        # Timed-out jobs carry deadlines, so SLO attainment is tracked.
        assert result.metrics.slo_attainment() is not None

    def test_observability_bus_and_prometheus(self):
        """The bus fills and the Prometheus export carries repro_ metrics."""
        obs = Observability()
        jobs = generation_workload(6, 400.0, seed=1)
        result = self._serve(jobs, observability=obs, record_trace=True)
        assert result.observability is obs
        assert len(obs.bus.events) > 0
        kinds = {type(e).__name__ for e in obs.bus.events}
        assert "RequestsAdmitted" in kinds
        assert "BatchDispatched" in kinds
        text = obs.to_prometheus()
        assert "repro_" in text
        assert "repro_pending_queue_requests" in text
        # Zero-cost check rides the goldens; here just confirm the trace
        # recorded alongside the subsystems.
        assert result.trace is not None and len(result.trace.rows) > 0

    def test_faults_overload_obs_compose(self):
        """All three subsystems on one generation run."""
        from repro.serving.overload import OverloadConfig

        obs = Observability()
        jobs = generation_workload(10, 1000.0, seed=4)
        plan = FaultPlan([LaunchFailure(start=0.0, end=10_000.0)])
        result = self._serve(
            jobs,
            fault_plan=plan,
            resilience=ResilienceConfig(max_retries=8, enable_fallback=False),
            overload=OverloadConfig(max_pending_requests=4, policy="shed-oldest"),
            observability=obs,
        )
        assert result.resilience is not None
        assert result.overload is not None
        assert result.metrics.num_terminal == 10
        assert len(obs.bus.events) > 0


class TestStaticBatchingCapabilities:
    def test_admission_sheds_whole_groups(self):
        from repro.serving.overload import OverloadConfig

        reset_batch_ids()
        jobs = generation_workload(16, 8000.0, seed=5)
        strat = make_strategy("intra", MODEL, NODE)
        srv = StaticBatchingServer(
            MODEL, NODE, strat, batch_size=4, check_memory=False,
            config=ServingConfig(
                overload=OverloadConfig(max_pending_requests=4, policy="reject")
            ),
        )
        result = srv.run(jobs)
        assert result.overload is not None
        # Groups are atomic: sheds come in multiples of the group size.
        assert result.metrics.shed_requests % 4 == 0
        assert result.metrics.num_terminal == 16

    def test_retry_exhaustion_sheds_group(self):
        """A permanent launch-fail window sheds the whole afflicted group."""
        reset_batch_ids()
        jobs = generation_workload(4, 400.0, seed=6)
        strat = make_strategy("intra", MODEL, NODE)
        srv = StaticBatchingServer(
            MODEL, NODE, strat, batch_size=4, check_memory=False,
            config=ServingConfig(
                fault_plan=FaultPlan([LaunchFailure(start=0.0, end=1e12)]),
                resilience=ResilienceConfig(
                    max_retries=1, enable_fallback=False, enable_watchdog=False
                ),
            ),
        )
        result = srv.run(jobs)
        assert result.metrics.shed_requests == 4
        assert result.metrics.num_completed == 0
        assert result.metrics.num_terminal == 4


# ----------------------------------------------------------------------
# Lifecycle: zero-completion runs return a valid result (satellite)
# ----------------------------------------------------------------------
class TestLifecycleZeroCompletion:
    def test_all_timed_out_returns_valid_result(self):
        from repro.serving.overload import OverloadConfig

        reset_batch_ids()
        chats = chat_workload(4, 100.0, seed=0)
        strat = make_strategy("intra", MODEL, NODE)
        srv = LifecycleServer(
            MODEL, NODE, strat, prefill_batch=2, check_memory=False,
            config=ServingConfig(
                overload=OverloadConfig(
                    max_pending_requests=64, default_deadline_us=1.0
                )
            ),
        )
        result = srv.run(chats)
        assert result.num_requests == 0
        assert result.timed_out_requests + result.shed_requests == 4
        assert result.ttft.count == 0
        assert result.latency.count == 0
        assert result.tokens_per_second == 0.0
        assert result.slo_attainment == 0.0
        assert result.overload is not None
        assert result.summary()  # renders without raising
