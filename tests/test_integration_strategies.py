"""Integration tests: all four strategies serving real workloads.

Uses a layer-reduced OPT-30B (the paper's own trick for feasibility studies,
§2.2: "reducing layer number will not impact the computational and
communication features") so each serving run stays fast, and asserts the
*shapes* the paper reports rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core import LigerConfig, SyncMode
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.parallel import (
    InterleavedStrategy,
    InterOpStrategy,
    InterTheoreticalStrategy,
    IntraOpStrategy,
)
from repro.profiling.contention_profiler import ContentionFactors
from repro.serving import Server
from repro.serving.workload import general_trace, generative_trace

MODEL = OPT_30B.scaled_layers(8)
NODE = v100_nvlink_node(4)

#: Pinned factors so tests skip the (slower) offline profiling pass.
FACTORS = ContentionFactors(compute=1.05, comm=1.12)


def run(strategy_cls, rate, n=24, batch=2, *, workload="general", **kwargs):
    if strategy_cls is InterleavedStrategy:
        kwargs.setdefault("config", LigerConfig(contention_factors=FACTORS))
    strat = strategy_cls(MODEL, NODE, **kwargs)
    if workload == "general":
        batches = general_trace(n, rate, batch, seed=11)
    else:
        batches = generative_trace(n, rate, batch_size=batch, context_len=16)
    server = Server(MODEL, NODE, strat, check_memory=False)
    return server.run(batches)


class TestEachStrategyServes:
    @pytest.mark.parametrize(
        "cls",
        [IntraOpStrategy, InterOpStrategy, InterTheoreticalStrategy, InterleavedStrategy],
    )
    def test_all_requests_complete(self, cls):
        result = run(cls, rate=20)
        assert result.num_requests == 24
        assert result.metrics.num_completed == 24
        assert result.avg_latency_ms > 0
        assert result.throughput > 0

    @pytest.mark.parametrize(
        "cls",
        [IntraOpStrategy, InterOpStrategy, InterleavedStrategy],
    )
    def test_generative_workload_serves(self, cls):
        result = run(cls, rate=200, n=128, batch=32, workload="generative")
        assert result.metrics.num_completed == 128

    def test_deterministic_replay(self):
        a = run(IntraOpStrategy, rate=30)
        b = run(IntraOpStrategy, rate=30)
        assert a.avg_latency_ms == b.avg_latency_ms
        assert a.throughput == b.throughput


class TestPaperShapes:
    """The qualitative relationships every figure depends on."""

    def test_intra_latency_beats_inter_at_low_rate(self):
        intra = run(IntraOpStrategy, rate=5)
        inter = run(InterOpStrategy, rate=5)
        assert intra.avg_latency_ms < inter.avg_latency_ms

    def test_inter_throughput_beats_intra_at_saturation(self):
        intra = run(IntraOpStrategy, rate=400, n=40)
        inter = run(InterOpStrategy, rate=400, n=40)
        assert inter.throughput > intra.throughput

    def test_liger_matches_intra_latency_at_low_rate(self):
        liger = run(InterleavedStrategy, rate=5)
        intra = run(IntraOpStrategy, rate=5)
        assert liger.avg_latency_ms <= intra.avg_latency_ms * 1.10

    def test_liger_throughput_beats_intra_at_saturation(self):
        liger = run(InterleavedStrategy, rate=400, n=40)
        intra = run(IntraOpStrategy, rate=400, n=40)
        assert liger.throughput > intra.throughput * 1.05

    def test_liger_latency_beats_inter_before_saturation(self):
        liger = run(InterleavedStrategy, rate=100, n=40)
        inter = run(InterOpStrategy, rate=100, n=40)
        assert liger.avg_latency_ms < inter.avg_latency_ms


class TestLigerInternals:
    def test_overlap_actually_happens(self):
        strat = InterleavedStrategy(
            MODEL, NODE, config=LigerConfig(contention_factors=FACTORS)
        )
        server = Server(MODEL, NODE, strat, check_memory=False)
        server.run(general_trace(32, 300, 2, seed=4))
        assert strat.stats.rounds_launched > 0
        assert strat.stats.mean_fill_fraction > 0.1
        # trace-level evidence: comm overlapped with compute on GPU 0
        assert server.trace.overlap_time(0) > 0

    def test_lone_batch_has_no_secondary_fill(self):
        strat = InterleavedStrategy(
            MODEL, NODE, config=LigerConfig(contention_factors=FACTORS)
        )
        server = Server(MODEL, NODE, strat, check_memory=False)
        server.run(general_trace(2, 1.0, 2, seed=4))  # one batch total
        assert strat.stats.total_fill == 0.0

    def test_decomposition_used_under_pressure(self):
        strat = InterleavedStrategy(
            MODEL,
            NODE,
            config=LigerConfig(contention_factors=FACTORS, division_factor=8),
        )
        server = Server(MODEL, NODE, strat, check_memory=False)
        server.run(general_trace(48, 400, 2, seed=4))
        assert strat.stats.decomposed_pieces > 0

    @pytest.mark.parametrize("mode", list(SyncMode))
    def test_all_sync_modes_complete(self, mode):
        result = run(
            InterleavedStrategy,
            rate=100,
            config=LigerConfig(sync_mode=mode, contention_factors=FACTORS),
        )
        assert result.metrics.num_completed == 24

    def test_hybrid_beats_cpu_gpu_sync(self):
        """Fig. 13's shape."""
        hybrid = run(
            InterleavedStrategy,
            rate=150,
            n=40,
            config=LigerConfig(sync_mode=SyncMode.HYBRID, contention_factors=FACTORS),
        )
        cpu = run(
            InterleavedStrategy,
            rate=150,
            n=40,
            config=LigerConfig(sync_mode=SyncMode.CPU_GPU, contention_factors=FACTORS),
        )
        assert hybrid.avg_latency_ms < cpu.avg_latency_ms
        assert hybrid.throughput >= cpu.throughput * 0.98

    def test_inter_th_differs_from_inter_op(self):
        """Inter-Th reprices stage kernels; results must differ measurably."""
        th = run(InterTheoreticalStrategy, rate=100, n=40)
        op = run(InterOpStrategy, rate=100, n=40)
        assert th.avg_latency_ms != op.avg_latency_ms
