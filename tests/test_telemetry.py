"""Tests for the telemetry store, SLO burn-rate engine, and the
critical-path analyzer (plus their advisory wiring)."""

from __future__ import annotations

import json
import re

import pytest

from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.models.specs import OPT_30B
from repro.obs import (
    BatchCompleted,
    EventBus,
    Observability,
    ObservabilityConfig,
    RequestsShed,
    analyze_critical_path,
    validate_merged_trace,
)
from repro.obs.metrics import Histogram
from repro.obs.slo import BurnRule, SloEngine, SloPolicy
from repro.obs.telemetry import TimeSeriesStore
from repro.sim.kernel import KernelKind
from repro.sim.tracing import Trace, TraceRow

MODEL = OPT_30B.scaled_layers(2)
NODE = v100_nvlink_node(2)


# ----------------------------------------------------------------------
# TimeSeriesStore
# ----------------------------------------------------------------------
class TestTimeSeriesStore:
    def test_gauge_series_and_latest(self):
        s = TimeSeriesStore(window_us=1_000.0)
        s.record_gauge("g", 100.0, 1.0)
        s.record_gauge("g", 1_500.0, 2.0)
        s.record_gauge("g", 1_900.0, 3.0)  # same window: last write wins
        assert s.series("g") == [(0.0, 1.0), (1_000.0, 3.0)]
        assert s.latest("g") == 3.0
        assert s.latest("missing") is None

    def test_counter_rate_is_delta_over_span(self):
        s = TimeSeriesStore(window_us=1_000.0)
        for t, cum in ((0.0, 0.0), (1_000.0, 50.0), (2_000.0, 200.0)):
            s.record_counter("c_total", t, cum)
        # (200 - 0) / 2ms = 100_000/s over the whole history.
        assert s.rate("c_total") == pytest.approx(100_000.0)
        # Last two windows only: (200 - 50) / 1ms.
        assert s.rate("c_total", windows=2) == pytest.approx(150_000.0)
        assert s.window_rates("c_total") == [
            (1_000.0, pytest.approx(50_000.0)),
            (2_000.0, pytest.approx(150_000.0)),
        ]
        assert s.rate("c_total", windows=1) == 0.0  # needs two samples

    def test_percentile_nearest_rank(self):
        s = TimeSeriesStore(window_us=1_000.0)
        for v in range(1, 101):
            s.observe("lat", 500.0, float(v))
        assert s.percentile("lat", 0.5) == 50.0
        assert s.percentile("lat", 0.99) == 99.0
        assert s.percentile("lat", 1.0) == 100.0
        assert s.percentile("lat", 0.0) == 1.0
        assert s.observation_count("lat") == 100
        assert s.percentile("missing", 0.5) is None
        with pytest.raises(ConfigError):
            s.percentile("lat", 1.5)

    def test_percentile_windowed(self):
        s = TimeSeriesStore(window_us=1_000.0)
        s.observe("lat", 500.0, 1_000.0)
        s.observe("lat", 1_500.0, 1.0)
        assert s.percentile("lat", 1.0) == 1_000.0
        assert s.percentile("lat", 1.0, windows=1) == 1.0

    def test_ring_eviction(self):
        s = TimeSeriesStore(window_us=1_000.0, max_windows=2)
        for i in range(4):
            s.record_gauge("g", i * 1_000.0, float(i))
        assert len(s.windows) == 2
        assert s.evicted_windows == 2
        assert s.series("g") == [(2_000.0, 2.0), (3_000.0, 3.0)]

    def test_straggler_lands_in_older_window(self):
        s = TimeSeriesStore(window_us=1_000.0)
        s.record_gauge("g", 2_500.0, 1.0)
        s.record_gauge("h", 2_400.0, 9.0)  # not newer: clamped, no new window
        assert len(s.windows) == 1

    def test_federation_rollup(self):
        s = TimeSeriesStore(window_us=1_000.0)
        s.record_gauge("inflight", 100.0, 3.0, replica="0")
        s.record_gauge("inflight", 100.0, 5.0, replica="1")
        s.record_gauge("inflight", 1_200.0, 1.0, replica="0")
        assert s.sum_latest("inflight") == 6.0  # 1 (latest r0) + 5 (r1)
        assert s.series("inflight", replica="0") == [(0.0, 3.0), (1_000.0, 1.0)]
        assert s.label_sets("inflight") == [{"replica": "0"}, {"replica": "1"}]

    def test_sources_sampled_on_pump(self):
        from repro.obs.metrics import MetricsRegistry

        s = TimeSeriesStore(window_us=1_000.0)
        box = {"v": 2.0}
        s.add_source("live", lambda: box["v"], replica="0")
        s.pump(MetricsRegistry(), 100.0)
        box["v"] = 7.0
        s.pump(MetricsRegistry(), 1_100.0)
        assert s.series("live", replica="0") == [(0.0, 2.0), (1_000.0, 7.0)]

    def test_kind_collision_raises(self):
        s = TimeSeriesStore()
        s.record_gauge("x", 0.0, 1.0)
        with pytest.raises(ConfigError):
            s.record_counter("x", 0.0, 1.0)

    def test_prometheus_export_has_timestamps(self):
        s = TimeSeriesStore(window_us=1_000.0)
        s.record_counter("c_total", 0.0, 1.0)
        s.record_counter("c_total", 1_000.0, 4.0)
        s.record_gauge("g", 1_000.0, 2.5, replica="0")
        text = s.to_prometheus()
        assert "# TYPE c_total counter" in text
        assert "c_total 1 0" in text and "c_total 4 1" in text
        assert 'g{replica="0"} 2.5 1' in text
        # One TYPE header per family, in spec order before its samples.
        assert text.count("# TYPE c_total") == 1

    def test_save_series_json_and_prom(self, tmp_path):
        s = TimeSeriesStore(window_us=1_000.0)
        s.record_gauge("g", 0.0, 1.0)
        s.observe("lat", 0.0, 5.0)
        jpath = tmp_path / "series.json"
        s.save_series(str(jpath))
        snap = json.loads(jpath.read_text())
        assert snap["window_us"] == 1_000.0
        assert snap["windows"][0]["gauges"] == {"g": 1.0}
        assert snap["windows"][0]["observations"] == {"lat": [5.0]}
        ppath = tmp_path / "series.prom"
        s.save_series(str(ppath))
        assert "# TYPE g gauge" in ppath.read_text()

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            TimeSeriesStore(window_us=0.0)
        with pytest.raises(ConfigError):
            TimeSeriesStore(max_windows=1)


# ----------------------------------------------------------------------
# Histogram percentile queries (dirty flag + reused sorted buffer)
# ----------------------------------------------------------------------
class TestHistogramPercentile:
    def test_nearest_rank(self):
        h = Histogram("h", "help")
        for v in range(1, 11):
            h.observe(float(v))
        assert h.percentile(0.5) == 5.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 10.0

    def test_query_after_query_reuses_sorted_buffer(self):
        h = Histogram("h", "help")
        for v in (5.0, 1.0, 3.0):
            h.observe(v)
        assert h.percentile(0.5) == 3.0
        for _ in range(5):
            assert h.percentile(0.5) == 3.0
        assert h.sort_count == 1  # one sort serves every repeat query
        h.observe(0.5)  # dirties the buffer
        assert h.percentile(0.0) == 0.5
        assert h.sort_count == 2

    def test_empty_and_invalid(self):
        h = Histogram("h", "help")
        assert h.percentile(0.5) is None
        with pytest.raises(ConfigError):
            h.percentile(-0.1)


# ----------------------------------------------------------------------
# SLO burn-rate engine
# ----------------------------------------------------------------------
def _completed(t, rids, latencies, batch_id=0):
    return BatchCompleted(
        time_us=t,
        batch_id=batch_id,
        rids=tuple(rids),
        completed_rids=tuple(rids),
        latencies_us=tuple(latencies),
        slo_tracked=0,
        slo_met=0,
        deadline_misses=0,
    )


def _shed(t, rids, batch_id=0):
    return RequestsShed(
        time_us=t,
        batch_id=batch_id,
        rids=tuple(rids),
        where="admission",
        slo_tracked=len(rids),
    )


def _engine(policies, window_us=1_000.0):
    bus = EventBus()
    store = TimeSeriesStore(window_us=window_us)
    return SloEngine(policies, bus=bus, store=store), bus, store


class TestSloEngine:
    def _availability_policy(self):
        return SloPolicy(
            "avail",
            target=0.9,
            fast=BurnRule("fast", long_windows=2, short_windows=1, threshold=5.0),
            slow=BurnRule("slow", long_windows=4, short_windows=2, threshold=2.0),
        )

    def test_fast_burn_fires_when_both_spans_exceed(self):
        eng, bus, store = _engine([self._availability_policy()])
        # Windows 1 and 2: pure sheds -> error rate 1.0, burn 10x.
        bus.publish(_shed(1_100.0, range(5)))
        bus.publish(_shed(2_100.0, range(5), batch_id=1))
        fired = eng.evaluate(2_900.0)  # judges window 2
        severities = {a.severity for a in fired}
        assert severities == {"fast", "slow"}
        alert = next(a for a in fired if a.severity == "fast")
        assert alert.policy == "avail" and alert.objective == "availability"
        assert alert.burn_long == pytest.approx(10.0)
        assert alert.burn_short == pytest.approx(10.0)
        assert eng.under_fast_burn()
        # The burn-rate gauge landed in the store for both rules.
        assert store.latest("repro_slo_burn_rate", policy="avail", severity="fast") == (
            pytest.approx(10.0)
        )
        # And the alert rode the bus (-> Prometheus counter / timeline instant).
        assert [e.kind for e in bus.events if e.kind == "slo-burn-alert"]

    def test_quiet_short_window_gates_the_page(self):
        eng, bus, _ = _engine([self._availability_policy()])
        bus.publish(_shed(1_100.0, range(20)))  # window 1: all bad
        bus.publish(_completed(2_100.0, range(10), [1.0] * 10))  # window 2: good
        fired = eng.evaluate(2_900.0)
        # Long span burns 6.7x >= 5 but the short (current) window is clean.
        assert not [a for a in fired if a.severity == "fast"]
        assert not eng.under_fast_burn()

    def test_alert_resolves_when_short_burn_drops(self):
        eng, bus, _ = _engine([self._availability_policy()])
        bus.publish(_shed(1_100.0, range(5)))
        bus.publish(_shed(2_100.0, range(5), batch_id=1))
        assert eng.evaluate(2_900.0)
        bus.publish(_completed(3_100.0, range(8), [1.0] * 8))
        assert eng.evaluate(3_900.0) == []  # nothing new fires
        assert not eng.under_fast_burn()
        assert "slo-alert-resolved" in [e.kind for e in bus.events]
        # A re-fire later produces a fresh alert, not a duplicate.
        bus.publish(_shed(4_100.0, range(9), batch_id=2))
        refired = eng.evaluate(4_900.0)
        assert [a.severity for a in refired].count("fast") == 1

    def test_each_window_judged_once(self):
        eng, bus, _ = _engine([self._availability_policy()])
        bus.publish(_shed(1_100.0, range(5)))
        bus.publish(_shed(2_100.0, range(5), batch_id=1))
        assert eng.evaluate(2_900.0)
        assert eng.evaluate(2_950.0) == []  # same window: idempotent
        assert len(eng.alerts) == 2  # fast + slow, once each

    def test_latency_objective_classifies_by_threshold(self):
        policy = SloPolicy(
            "lat",
            objective="latency",
            target=0.5,
            latency_threshold_ms=1.0,
            fast=BurnRule("fast", long_windows=1, short_windows=1, threshold=1.5),
        )
        eng, bus, _ = _engine([policy])
        # 1 under the 1ms cut, 3 over -> error rate 0.75, burn 1.5x.
        bus.publish(_completed(100.0, range(4), [500.0, 2_000.0, 3_000.0, 4_000.0]))
        fired = eng.evaluate(900.0)
        assert [a for a in fired if a.severity == "fast"]

    def test_no_data_means_no_burn(self):
        eng, _, _ = _engine([self._availability_policy()])
        assert eng.evaluate(10_000.0) == []
        assert not eng.under_fast_burn()

    def test_alert_table_renders(self):
        eng, bus, _ = _engine([self._availability_policy()])
        assert eng.alert_table() == "no SLO alerts fired\n"
        bus.publish(_shed(1_100.0, range(5)))
        bus.publish(_shed(2_100.0, range(5), batch_id=1))
        eng.evaluate(2_900.0)
        table = eng.alert_table()
        assert "avail" in table and "fast" in table and "10.0x" in table

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ConfigError):
            _engine([SloPolicy("a"), SloPolicy("a", target=0.5)])

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            SloPolicy("x", objective="throughput")
        with pytest.raises(ConfigError):
            SloPolicy("x", target=1.0)
        with pytest.raises(ConfigError):
            SloPolicy("x", objective="latency")  # missing threshold
        with pytest.raises(ConfigError):
            BurnRule("fast", long_windows=1, short_windows=2)


# ----------------------------------------------------------------------
# Advisory wiring (breaker watermark + router spread)
# ----------------------------------------------------------------------
class TestAdvisory:
    def test_default_observability_has_no_advisor(self):
        assert Observability().fast_burn_advisor() is None
        armed = Observability(
            ObservabilityConfig(slo_policies=(SloPolicy("avail"),))
        )
        assert armed.fast_burn_advisor() is not None

    def test_breaker_trips_at_low_watermark_under_advisory(self):
        from repro.serving.metrics import ServingMetrics
        from repro.serving.overload import OverloadConfig, OverloadController
        from repro.serving.workload import general_trace
        from repro.sim.engine import Engine

        cfg = OverloadConfig(max_pending_requests=8, breaker_trip_checks=1)
        ctl = OverloadController(
            cfg, MODEL, NODE, Engine(), ServingMetrics(), lambda b: None
        )
        assert (ctl._low, ctl._high) == (2, 6)
        # Depth 4: between the watermarks.
        ctl._pending.extend(general_trace(4, 1_000.0, 2, seed=0))
        ctl._breaker_check()
        assert not ctl.breaker_open  # 4 <= high watermark 6
        ctl.attach_advisor(lambda: True)
        ctl._breaker_check()
        assert ctl.breaker_open  # 4 > lowered watermark 2
        assert ctl.advisory_trips == 1
        (event,) = ctl.report.events
        assert "advisory" in event.reason

    def test_router_spreads_instead_of_affinity_under_advisory(self):
        from repro.cluster.cluster import Cluster
        from repro.serving.workload import general_trace

        cluster = Cluster(
            MODEL,
            NODE,
            replicas=2,
            strategy="intra",
            check_memory=False,
            affinity=lambda b: "tenant",
            seed=0,
        )
        router = cluster.router
        batches = general_trace(8, 1_000.0, 2, seed=0)
        home = router._pick_target(batches[0], frozenset())
        assert router._pick_target(batches[1], frozenset()) == home
        assert router.advisory_spreads == 0
        router.attach_advisor(lambda: True)
        router._pick_target(batches[2], frozenset())
        assert router.advisory_spreads == 1


# ----------------------------------------------------------------------
# Critical-path analyzer: synthetic walks
# ----------------------------------------------------------------------
def _row(gpu, ready, start, end, *, kind=KernelKind.COMPUTE, op="gemm", noload=None):
    return TraceRow(
        gpu=gpu, stream=f"s{gpu}", name=f"{op}_b0@g{gpu}", kind=kind,
        batch_id=0, layer=0, op=op, ready=ready, start=start, end=end,
        noload_duration=(end - start) if noload is None else noload,
    )


class TestAnalyzerSynthetic:
    def test_empty_input(self):
        report = analyze_critical_path()
        assert report.makespan_us == 0.0 and report.path == []

    def test_device_gated_gap_becomes_device_wait(self):
        t = Trace()
        t.rows.append(_row(0, 0.0, 0.0, 10.0))
        t.rows.append(_row(0, 5.0, 20.0, 30.0))
        report = analyze_critical_path(t)
        assert [(s.kind, s.name) for s in report.path] == [
            ("compute", "gemm"), ("wait", "device"), ("compute", "gemm"),
        ]
        assert report.path_coverage_us == pytest.approx(report.makespan_us)
        (lane,) = report.per_gpu
        assert lane.compute_us == pytest.approx(20.0)
        assert lane.idle_us == pytest.approx(10.0)
        assert lane.total_us == pytest.approx(report.makespan_us)

    def test_input_gated_hop_crosses_gpus(self):
        t = Trace()
        t.rows.append(_row(0, 0.0, 0.0, 10.0))
        t.rows.append(_row(1, 10.0, 10.0, 25.0, kind=KernelKind.COMM, op="all_reduce"))
        report = analyze_critical_path(t)
        assert [(s.kind, s.gpu) for s in report.path] == [
            ("compute", 0), ("comm", 1),
        ]
        assert report.path_coverage_us == pytest.approx(25.0)

    def test_contention_carved_proportionally(self):
        t = Trace()
        # 10us of work inflated to 20us: 10us of contention.
        t.rows.append(_row(0, 0.0, 0.0, 20.0, noload=10.0))
        report = analyze_critical_path(t)
        (lane,) = report.per_gpu
        assert lane.contention_us == pytest.approx(10.0)
        assert lane.compute_us == pytest.approx(10.0)
        assert lane.total_us == pytest.approx(report.makespan_us)

    def test_top_segments_aggregate_by_kind_and_op(self):
        t = Trace()
        t.rows.append(_row(0, 0.0, 0.0, 10.0))
        t.rows.append(_row(0, 0.0, 10.0, 30.0))
        report = analyze_critical_path(t)
        (top,) = report.top_segments()
        assert top == ("compute", "gemm", pytest.approx(30.0), 2)
        assert "critical path" in report.describe()


# ----------------------------------------------------------------------
# Acceptance: attribution partitions the makespan on every server
# ----------------------------------------------------------------------
def _assert_partitions(report):
    assert report.makespan_us > 0
    assert report.per_gpu
    for lane in report.per_gpu:
        assert lane.total_us == pytest.approx(report.makespan_us, rel=1e-9), lane.lane


class TestAttributionAcceptance:
    def _strategy(self):
        from repro.serving.api import make_strategy

        return make_strategy("liger", MODEL, NODE)

    def test_plain_server(self):
        from repro.serving.server import Server
        from repro.serving.workload import general_trace

        srv = Server(MODEL, NODE, self._strategy(), record_trace=True,
                     check_memory=False)
        srv.run(general_trace(8, 200.0, 2, seed=0))
        _assert_partitions(analyze_critical_path(srv.trace))

    def test_static_batching_server(self):
        from repro.serving.generation import (
            StaticBatchingServer,
            generation_workload,
        )

        srv = StaticBatchingServer(MODEL, NODE, self._strategy(), batch_size=4,
                                   record_trace=True, check_memory=False)
        srv.run(generation_workload(8, 200.0, seed=0))
        _assert_partitions(analyze_critical_path(srv.trace))

    def test_continuous_batching_server(self):
        from repro.serving.generation import (
            ContinuousBatchingServer,
            generation_workload,
        )

        srv = ContinuousBatchingServer(MODEL, NODE, self._strategy(),
                                       max_batch=8, pipeline_depth=2,
                                       record_trace=True, check_memory=False)
        srv.run(generation_workload(8, 200.0, seed=0))
        _assert_partitions(analyze_critical_path(srv.trace))

    def test_lifecycle_server(self):
        from repro.serving.lifecycle import LifecycleServer, chat_workload

        srv = LifecycleServer(MODEL, NODE, self._strategy(), prefill_batch=2,
                              max_decode_batch=8, record_trace=True,
                              check_memory=False)
        srv.run(chat_workload(4, 120.0, seed=0))
        _assert_partitions(analyze_critical_path(srv.trace))


# ----------------------------------------------------------------------
# Chaos integration: lanes per incarnation, validated merged timeline
# ----------------------------------------------------------------------
class TestChaosTelemetry:
    @pytest.fixture(scope="class")
    def chaos_run(self):
        from repro.cluster.chaos import ChaosConfig, run_chaos

        obs = Observability(
            ObservabilityConfig(
                telemetry=True,
                window_us=20_000.0,
                slo_policies=(SloPolicy("avail", target=0.9),),
            )
        )
        config = ChaosConfig(
            replicas=3, crashes=1, seed=7, num_requests=36, rate=60.0,
            record_trace=True,
        )
        report = run_chaos(config, observability=obs)
        return obs, report

    def test_attribution_sums_on_every_incarnation_lane(self, chaos_run):
        obs, report = chaos_run
        path_report = obs.critical_path(traces=report.result.traces)
        _assert_partitions(path_report)
        # The crash produced a fresh incarnation -> a distinct lane label.
        labels = {lane.replica for lane in path_report.per_gpu}
        assert any(re.match(r"node\d+r\d+", lbl) for lbl in labels)

    def test_merged_trace_validates_with_lifecycle_instants(self, chaos_run):
        obs, report = chaos_run
        merged = obs.merged_chrome_trace(traces=report.result.traces)
        counts = validate_merged_trace(merged)
        assert counts["kernel"] > 0 and counts["span"] > 0
        instants = [
            ev["name"] for ev in merged["traceEvents"] if ev.get("ph") == "i"
        ]
        assert "node-crash" in instants
        assert "failover" in instants
        ts = [ev["ts"] for ev in merged["traceEvents"]]
        assert ts == sorted(ts)

    def test_store_federates_per_replica_series(self, chaos_run):
        obs, _ = chaos_run
        sets = obs.telemetry.label_sets("repro_cluster_node_alive")
        assert sets == [{"replica": "0"}, {"replica": "1"}, {"replica": "2"}]
        # The crashed replica's liveness series dipped to 0 and came back.
        crashed = [
            lbl["replica"]
            for lbl in sets
            if 0.0 in dict(obs.telemetry.series(
                "repro_cluster_node_alive", replica=lbl["replica"]
            )).values()
        ]
        assert crashed
        # Lifecycle transitions landed in the registry counter too.
        c = obs.registry._counters["repro_node_lifecycle_total"]
        assert c.value(kind="crash") >= 1
        assert c.value(kind="recover") >= 1


# ----------------------------------------------------------------------
# Zero-cost contract: telemetry moves no kernel
# ----------------------------------------------------------------------
def _normalized_rows(trace):
    base = min(r.batch_id for r in trace.rows)
    fix = lambda name: re.sub(
        r"_b(\d+)", lambda m: f"_b{int(m.group(1)) - base}", name
    )
    return [
        (
            r.gpu, r.stream, fix(r.name), r.kind, r.batch_id - base,
            r.layer, r.op, r.ready, r.start, r.end, r.noload_duration,
        )
        for r in trace.rows
    ]


class TestZeroCost:
    def test_telemetry_enabled_run_is_bit_identical(self):
        from repro.serving.api import serve

        def _run(observability):
            return serve(
                MODEL, NODE, strategy="liger", arrival_rate=400.0,
                num_requests=12, batch_size=2, seed=0, record_trace=True,
                observability=observability,
            )

        plain = _run(None)
        observed = _run(
            Observability(ObservabilityConfig(telemetry=True, window_us=10_000.0))
        )
        assert _normalized_rows(plain.trace) == _normalized_rows(observed.trace)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTelemetryCli:
    def test_cluster_mode_writes_artifacts(self, tmp_path, capsys):
        from repro.obs.telemetry_cli import main

        series = tmp_path / "series.json"
        timeline = tmp_path / "merged.json"
        rc = main([
            "--replicas", "2", "--layers", "2", "--requests", "12",
            "--rate", "100", "--batch", "2", "--seed", "0",
            "--report", "--alerts",
            "--series-out", str(series), "--timeline", str(timeline),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan:" in out and "SLO" in out
        snap = json.loads(series.read_text())
        assert snap["windows"]
        validate_merged_trace(json.loads(timeline.read_text()))

    def test_build_policies_default_and_flags(self):
        from repro.obs.telemetry_cli import _build_parser, build_policies

        parser = _build_parser()
        default = build_policies(parser.parse_args([]))
        assert [p.name for p in default] == ["availability"]
        armed = build_policies(
            parser.parse_args(["--slo-p99-ms", "50", "--slo-deadline", "0.9"])
        )
        assert [p.objective for p in armed] == ["latency", "deadline"]
