"""Tests for full-lifecycle (prefill + decode) serving."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, IncompleteRequestError
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.serving import ChatRequest, LifecycleServer, chat_workload
from repro.serving.api import make_strategy

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)


def run(strategy_name="intra", n=24, rate=120.0, **kw):
    strat = make_strategy(strategy_name, MODEL, NODE)
    server = LifecycleServer(MODEL, NODE, strat, check_memory=False, **kw)
    return server, server.run(chat_workload(n, rate, seed=5))


class TestChatRequest:
    def test_metrics_require_progress(self):
        r = ChatRequest(rid=0, arrival=10.0, prompt_len=16, gen_tokens=4)
        with pytest.raises(IncompleteRequestError):
            _ = r.ttft
        with pytest.raises(IncompleteRequestError):
            _ = r.latency
        r.prefill_done = 30.0
        assert r.ttft == 20.0
        r.tokens_done = 2
        assert r.current_context == 18
        assert not r.finished

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChatRequest(rid=0, arrival=0.0, prompt_len=0, gen_tokens=4)
        with pytest.raises(ConfigError):
            chat_workload(0, 1.0)
        with pytest.raises(ConfigError):
            chat_workload(4, 1.0, prompt_range=(0, 8))


class TestLifecycleServer:
    def test_all_requests_finish_with_both_metrics(self):
        server, result = run()
        assert result.num_requests == 24
        assert result.ttft.mean > 0
        assert result.latency.mean > result.ttft.mean  # decode comes after
        # Every generated token was counted.
        reqs = chat_workload(24, 120.0, seed=5)
        assert result.tokens_generated == sum(r.gen_tokens for r in reqs)

    def test_ttft_much_smaller_than_full_latency(self):
        _, result = run()
        assert result.ttft.mean < 0.6 * result.latency.mean

    def test_memory_returns_to_weights_only(self):
        server, _ = run()
        weights = MODEL.weight_bytes_per_device(NODE.num_gpus)
        for dev in server.memory.devices:
            assert dev.used == pytest.approx(weights)

    def test_liger_composes(self):
        _, intra = run("intra", rate=200.0, n=32)
        _, liger = run("liger", rate=200.0, n=32)
        assert liger.latency.mean <= intra.latency.mean * 1.02
        assert liger.ttft.mean <= intra.ttft.mean * 1.05

    def test_prefill_batch_size_respected(self):
        server, result = run(prefill_batch=1)
        assert result.num_requests == 24

    def test_invalid_params(self):
        strat = make_strategy("intra", MODEL, NODE)
        with pytest.raises(ConfigError):
            LifecycleServer(MODEL, NODE, strat, prefill_batch=0, check_memory=False)
        strat2 = make_strategy("intra", MODEL, NODE)
        server = LifecycleServer(MODEL, NODE, strat2, check_memory=False)
        with pytest.raises(ConfigError):
            server.run([])

    def test_summary_renders(self):
        _, result = run()
        text = result.summary()
        assert "TTFT" in text and "tok/s" in text
