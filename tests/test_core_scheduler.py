"""Tests for Algorithm 1: the Liger scheduler's round planning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembly import FuncVec, KernelFunc
from repro.core.contention import NO_ANTICIPATION, ContentionAnticipator
from repro.core.decomposition import DecompositionPlanner
from repro.core.scheduler import LigerScheduler, Round
from repro.errors import ConfigError, SchedulingError
from repro.hw import v100_nvlink_node
from repro.models.ops import allreduce_op, gemm_op
from repro.profiling import OpProfiler
from repro.profiling.contention_profiler import ContentionFactors
from repro.serving.request import Batch, Phase, Request
from repro.sim.kernel import KernelKind


def make_batch(bid_seed=0):
    return Batch(
        requests=[Request(rid=bid_seed, arrival=0.0, seq_len=64, phase=Phase.PREFILL)]
    )


def comp(name, dur, decomposable=False):
    return KernelFunc(
        op=gemm_op(name, 0, 128, 1024, 1024, decomposable=decomposable),
        duration=dur,
        kind=KernelKind.COMPUTE,
        batch_id=0,
        batch_size=2,
        seq_len=64,
        decomposable=decomposable,
    )


def comm(name, dur, decomposable=False):
    return KernelFunc(
        op=allreduce_op(name, 0, 1e6, decomposable=decomposable),
        duration=dur,
        kind=KernelKind.COMM,
        batch_id=0,
        batch_size=2,
        seq_len=64,
        decomposable=decomposable,
    )


def scheduler(anticipator=NO_ANTICIPATION, decomposer=None, max_inflight=4):
    return LigerScheduler(
        anticipator=anticipator, decomposer=decomposer, max_inflight=max_inflight
    )


class TestPrimarySubset:
    def test_collects_maximal_same_type_run(self):
        s = scheduler()
        s.enqueue(FuncVec(make_batch(), [comp("a", 10), comp("b", 20), comm("c", 5)]))
        r = s.plan_round()
        assert [f.op.name for f in r.subset0] == ["a", "b"]
        assert r.primary_kind is KernelKind.COMPUTE
        assert r.window == 30

    def test_switch_kernel_included_in_run(self):
        s = scheduler()
        s.enqueue(FuncVec(make_batch(), [comm("ar", 5), comp("g", 10)]))
        r = s.plan_round()
        assert [f.op.name for f in r.subset0] == ["ar"]
        assert r.primary_kind is KernelKind.COMM

    def test_consecutive_rounds_alternate_types(self):
        s = scheduler()
        s.enqueue(
            FuncVec(
                make_batch(),
                [comp("a", 10), comm("b", 5), comp("c", 10), comm("d", 5)],
            )
        )
        kinds = []
        while (r := s.plan_round()) is not None:
            kinds.append(r.primary_kind)
        assert kinds == [
            KernelKind.COMPUTE,
            KernelKind.COMM,
            KernelKind.COMPUTE,
            KernelKind.COMM,
        ]

    def test_no_work_returns_none(self):
        assert scheduler().plan_round() is None


class TestSecondarySubset:
    def test_fills_window_with_opposite_type(self):
        s = scheduler()
        s.enqueue(FuncVec(make_batch(0), [comp("p1", 30), comm("p2", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("s1", 10), comm("s2", 10), comp("s3", 10)]))
        r = s.plan_round()
        assert [f.op.name for f in r.subset1] == ["s1", "s2"]
        assert r.secondary_fill == 20

    def test_stops_at_same_type_kernel(self):
        s = scheduler()
        s.enqueue(FuncVec(make_batch(0), [comp("p1", 100), comm("p2", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("s1", 10), comp("s2", 10), comm("s3", 10)]))
        r = s.plan_round()
        # s2 is compute (same as primary): stop after s1; s3 unreachable.
        assert [f.op.name for f in r.subset1] == ["s1"]

    def test_skips_over_multiple_subsequent_batches(self):
        s = scheduler()
        s.enqueue(FuncVec(make_batch(0), [comp("p", 50), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("b1", 20), comp("x", 1)]))
        s.enqueue(FuncVec(make_batch(2), [comm("b2", 20), comp("y", 1)]))
        r = s.plan_round()
        assert [f.op.name for f in r.subset1] == ["b1", "b2"]

    def test_oversize_kernel_not_packed_without_decomposition(self):
        s = scheduler()
        s.enqueue(FuncVec(make_batch(0), [comp("p", 10), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("big", 50), comp("x", 1)]))
        r = s.plan_round()
        assert r.subset1 == []

    def test_anticipation_scales_fit_test(self):
        # comm factor 2.0: a 6us comm kernel needs 12us of window.
        anticipator = ContentionAnticipator(ContentionFactors(compute=1.0, comm=2.0))
        s = scheduler(anticipator=anticipator)
        s.enqueue(FuncVec(make_batch(0), [comp("p", 10), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("c6", 6), comp("x", 1)]))
        r = s.plan_round()
        assert r.subset1 == []  # 6 * 2.0 > 10

        s2 = scheduler(anticipator=anticipator)
        s2.enqueue(FuncVec(make_batch(0), [comp("p", 13), comm("pc", 5)]))
        s2.enqueue(FuncVec(make_batch(1), [comm("c6", 6), comp("x", 1)]))
        r2 = s2.plan_round()
        assert [f.op.name for f in r2.subset1] == ["c6"]
        assert r2.secondary_fill == pytest.approx(12.0)

    def test_principle1_invariant_enforced(self):
        s = scheduler()
        s.enqueue(FuncVec(make_batch(0), [comp("p", 40), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("a", 15), comm("b", 15), comp("x", 1)]))
        r = s.plan_round()
        r.validate_principle1()
        assert r.secondary_fill <= r.window


class TestQueueManagement:
    def test_processing_list_bounded(self):
        s = scheduler(max_inflight=2)
        for i in range(5):
            s.enqueue(FuncVec(make_batch(i), [comp(f"p{i}", 10), comm(f"c{i}", 5)]))
        assert len(s.processing) == 2
        assert len(s.waiting) == 3

    def test_drained_batches_replaced_from_waiting(self):
        s = scheduler(max_inflight=1)
        s.enqueue(FuncVec(make_batch(0), [comp("a", 10)]))
        s.enqueue(FuncVec(make_batch(1), [comp("b", 10)]))
        r1 = s.plan_round()
        assert r1.subset0[0].op.name == "a"
        drained = s.take_drained()
        assert len(drained) == 1
        r2 = s.plan_round()
        assert r2.subset0[0].op.name == "b"

    def test_primary_rotation_on_drain(self):
        """When the primary batch drains, the next batch becomes primary and
        its remaining kernels continue — the interleaving handoff."""
        s = scheduler()
        s.enqueue(FuncVec(make_batch(0), [comp("p", 20), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("s1", 10), comp("s2", 30), comm("s3", 5)]))
        r1 = s.plan_round()  # p | s1
        assert [f.op.name for f in r1.subset1] == ["s1"]
        r2 = s.plan_round()  # pc | (batch1 head is now compute s2, too big? window 5)
        assert r2.subset0[0].op.name == "pc"
        r3 = s.plan_round()  # batch 0 drained; batch 1 is primary now
        assert r3.subset0[0].op.name == "s2"

    def test_invalid_max_inflight(self):
        with pytest.raises(ConfigError):
            scheduler(max_inflight=0)


class TestDecompositionIntegration:
    def _decomposer(self, d=8):
        return DecompositionPlanner(OpProfiler(v100_nvlink_node(4)), d)

    def test_oversize_decomposable_comm_is_split(self):
        node = v100_nvlink_node(4)
        prof = OpProfiler(node)
        s = scheduler(decomposer=DecompositionPlanner(prof, 8))
        big_ar = allreduce_op("bigar", 0, 8e6)
        dur = prof.duration(big_ar)
        f = KernelFunc(
            op=big_ar, duration=dur, kind=KernelKind.COMM,
            batch_id=1, batch_size=2, seq_len=64, decomposable=True,
        )
        # window = half the big collective: must split.
        s.enqueue(FuncVec(make_batch(0), [comp("p", dur * 0.5), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [f, comp("x", 1)]))
        r = s.plan_round()
        assert len(r.subset1) == 1
        assert ".c" in r.subset1[0].op.name
        # remainder back at the head of batch 1
        assert ".rest" in s.processing[1].peek().op.name
        r.validate_principle1()

    def test_round_rejects_empty_primary(self):
        # An empty primary subset is a broken scheduling invariant, not a
        # user-config mistake.
        with pytest.raises(SchedulingError):
            Round(index=0, primary_kind=KernelKind.COMPUTE, subset0=[], subset1=[],
                  window=0.0, secondary_fill=0.0)

    def test_principle1_violation_detected(self):
        r = Round(
            index=0,
            primary_kind=KernelKind.COMPUTE,
            subset0=[comp("p", 10)],
            subset1=[],
            window=10.0,
            secondary_fill=15.0,
        )
        with pytest.raises(SchedulingError):
            r.validate_principle1()


class TestBestFitPacking:
    def _sched(self, packing):
        return LigerScheduler(
            anticipator=NO_ANTICIPATION, decomposer=None, packing=packing
        )

    def test_best_fit_prefers_largest_head(self):
        s = self._sched("best_fit")
        s.enqueue(FuncVec(make_batch(0), [comp("p", 25), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("small", 10), comp("x", 1)]))
        s.enqueue(FuncVec(make_batch(2), [comm("big", 20), comp("y", 1)]))
        r = s.plan_round()
        # best-fit takes big (20) then small (10 doesn't fit in 5 left)
        assert [f.op.name for f in r.subset1] == ["big"]
        assert r.secondary_fill == 20

    def test_first_fit_takes_arrival_order(self):
        s = self._sched("first_fit")
        s.enqueue(FuncVec(make_batch(0), [comp("p", 25), comm("pc", 5)]))
        s.enqueue(FuncVec(make_batch(1), [comm("small", 10), comp("x", 1)]))
        s.enqueue(FuncVec(make_batch(2), [comm("big", 20), comp("y", 1)]))
        r = s.plan_round()
        # first-fit takes small (batch 1 first), then big no longer fits
        assert [f.op.name for f in r.subset1] == ["small"]

    def test_best_fit_never_violates_principle1(self):
        s = self._sched("best_fit")
        s.enqueue(FuncVec(make_batch(0), [comp("p", 50), comm("pc", 5)]))
        for i in range(1, 4):
            s.enqueue(
                FuncVec(make_batch(i), [comm(f"c{i}", 10 * i), comp(f"x{i}", 1)])
            )
        while (r := s.plan_round()) is not None:
            r.validate_principle1()

    def test_best_fit_fill_at_least_first_fit(self):
        def run(packing):
            s = self._sched(packing)
            s.enqueue(FuncVec(make_batch(0), [comp("p", 30), comm("pc", 5)]))
            s.enqueue(FuncVec(make_batch(1), [comm("a", 12), comp("x", 1)]))
            s.enqueue(FuncVec(make_batch(2), [comm("b", 29), comp("y", 1)]))
            return s.plan_round().secondary_fill

        assert run("best_fit") >= run("first_fit")

    def test_invalid_packing_rejected(self):
        with pytest.raises(ConfigError):
            self._sched("worst_fit")

    def test_liger_config_packing_plumbed(self):
        from repro.core import LigerConfig
        from repro.errors import ConfigError as CE

        cfg = LigerConfig(packing="best_fit")
        assert cfg.packing == "best_fit"
        with pytest.raises(CE):
            LigerConfig(packing="magic")


# ----------------------------------------------------------------------
# Property tests: Algorithm 1 invariants over random workloads
# ----------------------------------------------------------------------
@st.composite
def random_funcvec(draw, batch_seed):
    n = draw(st.integers(min_value=1, max_value=12))
    funcs = []
    for i in range(n):
        is_comm = draw(st.booleans())
        dur = draw(st.floats(min_value=1.0, max_value=200.0))
        funcs.append(comm(f"c{batch_seed}_{i}", dur) if is_comm else comp(f"g{batch_seed}_{i}", dur))
    return FuncVec(make_batch(batch_seed), funcs)


@given(
    data=st.data(),
    num_batches=st.integers(min_value=1, max_value=4),
    packing=st.sampled_from(["first_fit", "best_fit"]),
)
@settings(max_examples=60, deadline=None)
def test_algorithm1_invariants(data, num_batches, packing):
    s = LigerScheduler(
        anticipator=ContentionAnticipator(ContentionFactors(compute=1.1, comm=1.2)),
        packing=packing,
    )
    vecs = [data.draw(random_funcvec(i)) for i in range(num_batches)]
    totals = {i: len(v) for i, v in enumerate(vecs)}
    for v in vecs:
        s.enqueue(v)
    popped = 0
    rounds = 0
    while (r := s.plan_round()) is not None:
        rounds += 1
        assert rounds < 200, "scheduler failed to make progress"
        # Invariant 1: primary subset is a uniform-type run.
        kinds = {f.is_comm for f in r.subset0}
        assert len(kinds) == 1
        # Invariant 2: secondary subset is entirely the opposite type.
        for f in r.subset1:
            assert f.is_comm != r.subset0[0].is_comm
        # Invariant 3 (Principle 1): anticipated fill within the window.
        r.validate_principle1()
        popped += len(r.subset0) + len(r.subset1)
    # Every kernel is scheduled exactly once; nothing lost or duplicated.
    assert popped == sum(totals.values())
    assert not s.has_work
