"""Schedule-plan cache: bit-identity, fingerprint keys, LRU, counters.

The load-bearing guarantee is **bit-identity**: a cache-off run (plan
cache, assembly cache, and simulator memos all disabled) must fingerprint
identically to the committed golden traces that the default cache-on
configuration reproduces (``test_session.py``) — so cache-on ≡ golden ≡
cache-off across all four servers × liger/intra.

The fingerprint unit tests pin the key's *separating* power: inputs that
would plan differently (different contention factors, division factor,
packing, shapes) must produce different keys, and unfingerprintable state
must be reported uncacheable rather than guessed at.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.core.contention import ContentionAnticipator
from repro.core.plan_cache import SchedulePlanCache
from repro.profiling.contention_profiler import ContentionFactors
from serving_goldens import GOLDEN_PATH, SCENARIOS, fingerprint, run_scenario


def _load_goldens():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Cache-off ≡ golden ≡ cache-on (the bit-identity contract)
# ----------------------------------------------------------------------
class TestCacheOffEquivalence:
    @pytest.mark.parametrize("server,strategy", SCENARIOS)
    def test_cache_off_matches_golden(self, server, strategy):
        """Disabling every hot-path cache must not move a single float."""
        goldens = _load_goldens()
        _, trace = run_scenario(server, strategy, cache_off=True)
        assert fingerprint(trace) == goldens[f"{server}/{strategy}"], (
            f"{server}/{strategy}: cache-off timeline diverged from the "
            "golden — a cache is not bit-identical"
        )


# ----------------------------------------------------------------------
# Fingerprint separation
# ----------------------------------------------------------------------
def _scheduler_stub(
    *,
    sigs=("sig-a", "sig-b"),
    factors=(1.2, 1.3),
    division=8,
    packing="first_fit",
):
    anticipator = ContentionAnticipator(
        ContentionFactors(compute=factors[0], comm=factors[1])
    )
    return SimpleNamespace(
        processing=[SimpleNamespace(sig=s) for s in sigs],
        anticipator=anticipator,
        decomposer=None if division is None else SimpleNamespace(
            division_factor=division
        ),
        packing=packing,
    )


class TestFingerprint:
    def test_identical_inputs_share_a_key(self):
        cache = SchedulePlanCache([0, 1])
        assert cache.fingerprint(_scheduler_stub()) == cache.fingerprint(
            _scheduler_stub()
        )

    def test_same_shapes_different_contention_factors_miss(self):
        """The §3.5 scales live in the key: a changed factor changes plans."""
        cache = SchedulePlanCache([0, 1])
        base = cache.fingerprint(_scheduler_stub(factors=(1.2, 1.3)))
        bumped = cache.fingerprint(_scheduler_stub(factors=(1.2, 1.4)))
        assert base != bumped

    def test_division_factor_and_packing_separate(self):
        cache = SchedulePlanCache([0, 1])
        base = cache.fingerprint(_scheduler_stub())
        assert base != cache.fingerprint(_scheduler_stub(division=16))
        assert base != cache.fingerprint(_scheduler_stub(division=None))
        assert base != cache.fingerprint(_scheduler_stub(packing="best_fit"))

    def test_shapes_separate(self):
        cache = SchedulePlanCache([0, 1])
        base = cache.fingerprint(_scheduler_stub(sigs=("sig-a", "sig-b")))
        assert base != cache.fingerprint(_scheduler_stub(sigs=("sig-a",)))
        assert base != cache.fingerprint(
            _scheduler_stub(sigs=("sig-a", "sig-c"))
        )

    def test_unfingerprintable_funcvec_is_uncacheable(self):
        cache = SchedulePlanCache([0, 1])
        stub = _scheduler_stub()
        stub.processing[1].sig = None
        assert cache.fingerprint(stub) is None
        assert cache.uncacheable == 1

    def test_anticipator_without_fingerprint_is_uncacheable(self):
        cache = SchedulePlanCache([0, 1])
        stub = _scheduler_stub()
        stub.anticipator = object()
        assert cache.fingerprint(stub) is None
        assert cache.uncacheable == 1

    def test_empty_processing_is_not_counted_uncacheable(self):
        cache = SchedulePlanCache([0, 1])
        assert cache.fingerprint(_scheduler_stub(sigs=())) is None
        assert cache.uncacheable == 0

    def test_adaptive_anticipator_drift_invalidates(self):
        """Learned-scale drift changes the key — stale replays can't match."""
        from repro.core.contention import AdaptiveAnticipator

        cache = SchedulePlanCache([0, 1])
        stub = _scheduler_stub()
        stub.anticipator = AdaptiveAnticipator()
        before = cache.fingerprint(stub)
        stub.anticipator.observe(
            SimpleNamespace(is_comm=False), 10.0, 19.0
        )
        assert cache.fingerprint(stub) != before


# ----------------------------------------------------------------------
# LRU bookkeeping
# ----------------------------------------------------------------------
class TestLru:
    def _put(self, cache, key):
        round_ = SimpleNamespace(
            subset0=[], primary_kind=None, window=1.0, secondary_fill=0.0
        )
        cache.put(key, round_, actions=[], maps0=[], maps1=[])

    def test_eviction_counts_and_caps(self):
        cache = SchedulePlanCache([0], max_entries=2)
        for key in ("a", "b", "c"):
            self._put(cache, key)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("b") is not None

    def test_get_bumps_lru_age(self):
        cache = SchedulePlanCache([0], max_entries=2)
        self._put(cache, "a")
        self._put(cache, "b")
        assert cache.get("a") is not None  # refresh "a"
        self._put(cache, "c")  # evicts "b", not "a"
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_hit_miss_counters(self):
        cache = SchedulePlanCache([0])
        assert cache.get("missing") is None
        self._put(cache, "k")
        assert cache.get("k") is not None
        assert (cache.hits, cache.misses) == (1, 1)


# ----------------------------------------------------------------------
# End-to-end: counters flow to perf_counters() and the Prometheus export
# ----------------------------------------------------------------------
class TestCountersEndToEnd:
    def _serve(self, **strategy_cfg):
        from repro.core import LigerConfig
        from repro.hw import v100_nvlink_node
        from repro.models import MODELS
        from repro.serving import ContinuousBatchingServer, generation_workload
        from repro.serving.api import make_strategy
        from serving_goldens import reset_batch_ids

        reset_batch_ids()
        model = MODELS["OPT-13B"].scaled_layers(2)
        node = v100_nvlink_node(2)
        strat = make_strategy(
            "liger", model, node, config=LigerConfig(**strategy_cfg)
        )
        jobs = generation_workload(
            24, 1200.0, context_len=16, gen_tokens=(1, 1), seed=0
        )
        srv = ContinuousBatchingServer(
            model, node, strat, max_batch=4, pipeline_depth=2,
            record_trace=False, check_memory=False,
        )
        return srv, strat, jobs

    def test_steady_decode_hits_and_counters(self):
        srv, strat, jobs = self._serve()
        srv.run(jobs)
        counters = strat.perf_counters()
        assert counters["plan_cache_hits"] > 0
        assert counters["plan_cache_misses"] > 0
        assert counters["plan_cache_uncacheable"] == 0
        assert counters["assembly_cache_hits"] > 0
        assert counters["plan_build_seconds"] > 0.0
        assert counters["plan_cache_entries"] == len(
            strat.runtime.plan_cache
        )

    def test_disabled_cache_never_builds(self):
        srv, strat, jobs = self._serve(enable_plan_cache=False)
        srv.run(jobs)
        assert strat.runtime.plan_cache is None
        assert "plan_cache_hits" not in strat.perf_counters()

    def test_perf_gauges_in_prometheus_export(self):
        """Satellite: the ``repro_perf_*`` section rides observability."""
        from repro.obs import Observability
        from repro.serving import ServingConfig

        from repro.core import LigerConfig
        from repro.hw import v100_nvlink_node
        from repro.models import MODELS
        from repro.serving import ContinuousBatchingServer, generation_workload
        from repro.serving.api import make_strategy
        from serving_goldens import reset_batch_ids

        reset_batch_ids()
        model = MODELS["OPT-13B"].scaled_layers(2)
        node = v100_nvlink_node(2)
        strat = make_strategy("liger", model, node, config=LigerConfig())
        jobs = generation_workload(
            12, 1200.0, context_len=16, gen_tokens=(1, 1), seed=0
        )
        obs = Observability()
        srv = ContinuousBatchingServer(
            model, node, strat, max_batch=4, pipeline_depth=2,
            check_memory=False,
            config=ServingConfig(observability=obs, record_trace=False),
        )
        srv.run(jobs)
        text = obs.to_prometheus()
        assert "repro_perf_plan_cache_hits" in text
        assert "repro_perf_assembly_cache_hits" in text
        assert "repro_perf_plan_build_seconds" in text
        # The gauges carry the live counter values, not zeros.
        hits = strat.perf_counters()["plan_cache_hits"]
        assert hits > 0
        assert f"repro_perf_plan_cache_hits {hits}" in text

    def test_intra_strategy_exports_no_perf_gauges(self):
        """Duck-typing: strategies without perf_counters stay gauge-free."""
        from repro.obs import Observability
        from repro.serving import ServingConfig

        from repro.hw import v100_nvlink_node
        from repro.models import MODELS
        from repro.serving import ContinuousBatchingServer, generation_workload
        from repro.serving.api import make_strategy
        from serving_goldens import reset_batch_ids

        reset_batch_ids()
        model = MODELS["OPT-13B"].scaled_layers(2)
        node = v100_nvlink_node(2)
        strat = make_strategy("intra", model, node)
        jobs = generation_workload(6, 400.0, seed=0)
        obs = Observability()
        srv = ContinuousBatchingServer(
            model, node, strat, max_batch=4, pipeline_depth=2,
            check_memory=False,
            config=ServingConfig(observability=obs, record_trace=False),
        )
        srv.run(jobs)
        assert "repro_perf_" not in obs.to_prometheus()
