"""Property-based tests of the Machine executor.

These pin the simulator's global invariants under randomly generated
workloads: no deadlock for dependency-free schedules, work conservation
(wall duration ≥ no-load duration, with equality exactly when never
overlapped under NullContention), stream FIFO order, collective group
completion, and occupancy-capacity respect.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import v100_nvlink_node
from repro.sim import (
    CollectiveCostModel,
    DefaultContention,
    Engine,
    Kernel,
    KernelKind,
    Machine,
    NullContention,
    Trace,
)

_EPS = 1e-6


@st.composite
def kernel_spec(draw):
    return {
        "kind": draw(st.sampled_from([KernelKind.COMPUTE, KernelKind.COMM, KernelKind.MEMORY])),
        "duration": draw(st.floats(min_value=0.0, max_value=500.0)),
        "occupancy": draw(st.floats(min_value=0.05, max_value=1.0)),
        "mem": draw(st.floats(min_value=0.0, max_value=1.0)),
        "stream": draw(st.integers(min_value=0, max_value=2)),
        "gpu": draw(st.integers(min_value=0, max_value=1)),
        "avail": draw(st.floats(min_value=0.0, max_value=200.0)),
    }


def build_machine(specs, contention):
    m = Machine(
        v100_nvlink_node(2), Engine(), contention=contention, trace=Trace()
    )
    for i, s in enumerate(specs):
        stream = m.gpu(s["gpu"]).stream(f"s{s['stream']}")
        m.launch(
            stream,
            Kernel(
                name=f"k{i}",
                kind=s["kind"],
                duration=s["duration"],
                occupancy=s["occupancy"],
                memory_intensity=s["mem"],
            ),
            available_at=s["avail"],
        )
    return m


@given(specs=st.lists(kernel_spec(), min_size=1, max_size=20))
@settings(max_examples=80, deadline=None)
def test_random_schedules_always_complete(specs):
    m = build_machine(specs, DefaultContention())
    m.run()
    assert m.all_idle()
    assert len(m.trace.rows) == len(specs)


@given(specs=st.lists(kernel_spec(), min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_wall_duration_never_below_noload(specs):
    m = build_machine(specs, DefaultContention())
    m.run()
    for r in m.trace.rows:
        assert r.duration >= r.noload_duration - _EPS
        assert r.start >= r.ready - _EPS


@given(specs=st.lists(kernel_spec(), min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_null_contention_durations_exact(specs):
    m = build_machine(specs, NullContention())
    m.run()
    for r in m.trace.rows:
        assert abs(r.duration - r.noload_duration) < 1e-5


@given(
    durations=st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=8
    )
)
@settings(max_examples=60, deadline=None)
def test_single_stream_strict_fifo(durations):
    m = Machine(
        v100_nvlink_node(1), Engine(), contention=NullContention(), trace=Trace()
    )
    s = m.gpu(0).stream("s0")
    for i, d in enumerate(durations):
        m.launch(
            s,
            Kernel(name=f"k{i}", kind=KernelKind.COMPUTE, duration=d, occupancy=0.5),
            available_at=0.0,
        )
    m.run()
    rows = sorted(m.trace.rows, key=lambda r: int(r.name[1:]))
    for a, b in zip(rows, rows[1:]):
        assert b.start >= a.end - _EPS
    # back-to-back: total = sum of durations
    assert rows[-1].end == sum(durations) or abs(
        rows[-1].end - sum(durations)
    ) < 1e-6


@given(
    sizes=st.lists(st.floats(min_value=0.0, max_value=8e6), min_size=1, max_size=5),
    skews=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=4, max_size=4),
)
@settings(max_examples=50, deadline=None)
def test_collective_groups_complete_together(sizes, skews):
    node = v100_nvlink_node(4)
    m = Machine(node, Engine(), contention=DefaultContention(), trace=Trace())
    ccm = CollectiveCostModel(node.topology)
    for i, size in enumerate(sizes):
        coll = ccm.make_allreduce(size, [0, 1, 2, 3], name=f"ar{i}")
        for g in range(4):
            m.launch(m.gpu(g).stream("comm"), coll.members[g], available_at=skews[g])
    m.run()
    by_op = {}
    for r in m.trace.rows:
        by_op.setdefault(r.name.split("@")[0], []).append(r)
    for name, rows in by_op.items():
        assert len(rows) == 4
        ends = {round(r.end, 6) for r in rows}
        assert len(ends) == 1, f"{name} members ended at {ends}"
        # No member starts before it was launched.
        for r in rows:
            assert r.start >= min(skews) - _EPS


@given(specs=st.lists(kernel_spec(), min_size=2, max_size=12))
@settings(max_examples=50, deadline=None)
def test_occupancy_capacity_respected(specs):
    """At no instant does the sum of resident occupancies exceed 1 per GPU.

    Verified post-hoc from the trace by sweeping interval boundaries.
    """
    m = build_machine(specs, NullContention())
    m.run()
    occ = {s["gpu"]: [] for s in specs}
    rows = list(m.trace.rows)
    by_gpu = {}
    for i, r in enumerate(rows):
        by_gpu.setdefault(r.gpu, []).append((r, specs[int(r.name[1:])]["occupancy"]))
    for gpu, entries in by_gpu.items():
        boundaries = sorted({r.start for r, _ in entries})
        for t in boundaries:
            resident = sum(
                o for r, o in entries if r.start <= t + _EPS and r.end > t + _EPS
            )
            assert resident <= 1.0 + 1e-5
