"""Replicated cluster: zero-cost identity, failover, and recovery.

The two load-bearing contracts:

* **Zero-cost** — a one-replica cluster with an empty fault plan
  reproduces the plain server's golden kernel timeline **bit-for-bit**
  (same fingerprint as ``tests/golden/serving_traces.json``).  The
  cluster tier may cost nothing when it is not used.
* **Exactly-once under failover** — crashes re-dispatch in-flight work,
  partitions drain in place, and the router's completion-ownership gate
  ensures duplicated work never double-completes a request.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    Cluster,
    CrossNodeInterconnect,
    Router,
    batch_payload_bytes,
)
from repro.cluster.node import ClusterNode
from repro.errors import ConfigError
from repro.faults.plan import (
    FaultPlan,
    NetworkPartition,
    NodeCrash,
    NodeDegradation,
)
from repro.faults.resilience import ReplicaRecovery, ReplicaRecoveryConfig
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.serving.workload import general_trace
from serving_goldens import GOLDEN_PATH, fingerprint, reset_batch_ids

SMALL_MODEL = OPT_30B.scaled_layers(2)
SMALL_NODE = v100_nvlink_node(2)


def small_cluster(replicas, plan=None, **kwargs):
    kwargs.setdefault("strategy", "intra")
    kwargs.setdefault("check_memory", False)
    return Cluster(
        SMALL_MODEL, SMALL_NODE, replicas=replicas, fault_plan=plan, **kwargs
    )


def run_small(cluster, num_requests=12, rate=200.0, seed=0):
    return cluster.run(general_trace(num_requests, rate, 2, seed=seed))


# ----------------------------------------------------------------------
# Zero-cost: the cluster tier may not perturb a fault-free replica
# ----------------------------------------------------------------------
class TestZeroCost:
    def test_one_replica_matches_server_golden(self):
        # The committed golden was captured from the *plain* Server; a
        # one-replica fault-free cluster must reproduce it bit-for-bit.
        with open(GOLDEN_PATH, encoding="utf-8") as fh:
            golden = json.load(fh)["server/liger"]
        reset_batch_ids()
        cluster = Cluster(
            OPT_30B.scaled_layers(4),
            v100_nvlink_node(4),
            replicas=1,
            strategy="liger",
            record_trace=True,
            check_memory=False,
        )
        result = cluster.run(general_trace(12, 40.0, 2, seed=0))
        assert result.completed_requests == 12
        label, trace = result.traces[0]
        assert label == "node0"
        assert fingerprint(trace) == golden

    def test_fault_free_cluster_consumes_no_randomness(self):
        # Single candidate → no rng.choice; no node faults → no sweeps.
        # The run must leave the seeded RNG untouched.
        cluster = small_cluster(1, record_trace=False)
        state_before = cluster.rng.getstate()
        result = run_small(cluster)
        assert result.completed_requests == 12
        assert cluster.rng.getstate() == state_before
        # No health sweeps fired: the recovery log stays empty.
        assert result.resilience.actions == []


# ----------------------------------------------------------------------
# Construction validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_replicas_floor(self):
        with pytest.raises(ConfigError, match="replicas"):
            small_cluster(0)

    def test_fault_targets_must_exist(self):
        plan = FaultPlan([NodeCrash(start=0.0, end=1.0, node=5)])
        with pytest.raises(ConfigError, match="node 5"):
            small_cluster(2, plan)
        plan = FaultPlan([NetworkPartition(start=0.0, end=1.0, nodes=(3,))])
        with pytest.raises(ConfigError, match="node 3"):
            small_cluster(2, plan)
        plan = FaultPlan(
            [NodeDegradation(start=0.0, end=1.0, node=2, factor=2.0)]
        )
        with pytest.raises(ConfigError, match="node 2"):
            small_cluster(2, plan)

    def test_router_checks_recovery_size(self):
        cluster = small_cluster(2)
        with pytest.raises(ConfigError, match="replicas"):
            Router(cluster.nodes, recovery=ReplicaRecovery(3))


# ----------------------------------------------------------------------
# Crash → failover
# ----------------------------------------------------------------------
class TestCrashFailover:
    def test_crash_fails_over_inflight_work(self):
        # Crash node 1 over a window that is guaranteed to hold in-flight
        # work (a burst of arrivals lands before the crash).  Every
        # request must still reach a terminal state, and the batches that
        # were on node 1 must complete elsewhere.
        plan = FaultPlan([NodeCrash(start=8_000.0, end=500_000.0, node=1)])
        cluster = small_cluster(
            2, plan,
            recovery=ReplicaRecoveryConfig(health_check_period_us=1_000.0),
        )
        result = run_small(cluster, num_requests=16, rate=2_000.0)
        assert result.completed_requests + result.shed_requests == 16
        assert result.unhealthy_dispatches == 0
        assert result.router_completed_requests == result.completed_requests
        # Node 1 held work when it died: the report shows the failovers.
        assert result.resilience.failovers >= 1
        assert result.resilience.unhealthy_marks >= 1

    def test_failover_budget_exhaustion_sheds(self):
        # With a zero failover budget the crashed node's work cannot be
        # re-dispatched — it must be shed terminally, not lost.
        plan = FaultPlan([NodeCrash(start=8_000.0, end=500_000.0, node=1)])
        cluster = small_cluster(
            2, plan,
            recovery=ReplicaRecoveryConfig(
                max_failovers=0, health_check_period_us=1_000.0
            ),
        )
        result = run_small(cluster, num_requests=16, rate=2_000.0)
        assert result.completed_requests + result.shed_requests == 16
        assert result.shed_requests >= 1
        assert result.resilience.failovers == 0
        assert result.resilience.failover_shed_requests >= 1

    def test_all_replicas_down_sheds_arrivals(self):
        # Both replicas dead across the whole arrival window: nothing can
        # be dispatched, so everything sheds — liveness over completeness.
        plan = FaultPlan(
            [
                NodeCrash(start=1_000.0, end=5_000_000.0, node=0),
                NodeCrash(start=1_000.0, end=5_000_000.0, node=1),
            ]
        )
        cluster = small_cluster(2, plan)
        result = cluster.run(general_trace(8, 100.0, 2, seed=0))
        assert result.completed_requests + result.shed_requests == 8
        assert result.shed_requests >= 1
        assert result.unhealthy_dispatches == 0

    def test_recovered_node_is_readmitted(self):
        # Crash ends mid-run; with traffic still arriving the sweep keeps
        # probing and the reborn incarnation is re-admitted.
        plan = FaultPlan([NodeCrash(start=10_000.0, end=30_000.0, node=1)])
        cluster = small_cluster(2, plan)
        result = run_small(cluster, num_requests=24, rate=150.0)
        assert result.completed_requests + result.shed_requests == 24
        assert result.resilience.readmissions >= 1
        assert cluster.nodes[1].alive
        assert cluster.nodes[1].incarnation == 1


# ----------------------------------------------------------------------
# Partition → drain in place (default) or failover (opt-in)
# ----------------------------------------------------------------------
class TestPartition:
    PLAN = FaultPlan(
        [NetworkPartition(start=8_000.0, end=120_000.0, nodes=(1,))]
    )

    def test_partitioned_node_drains_in_place(self):
        # The node keeps executing; its completions pass the gate, so no
        # work is lost and nothing needs to move.
        cluster = small_cluster(2, self.PLAN)
        result = run_small(cluster, num_requests=16, rate=2_000.0)
        assert result.completed_requests == 16
        assert result.resilience.failovers == 0
        assert result.resilience.unhealthy_marks >= 1
        assert result.rejected_completions == 0

    def test_failover_on_unreachable_duplicates_then_gates(self):
        # Opting into failover for unreachable nodes duplicates the work:
        # the partitioned host keeps executing its copy while the new
        # owner runs another.  The gate must reject the loser — requests
        # stay exactly-once (completed counts match the gate's).
        cluster = small_cluster(
            2,
            self.PLAN,
            recovery=ReplicaRecoveryConfig(
                failover_on_unreachable=True, health_check_period_us=1_000.0
            ),
        )
        result = run_small(cluster, num_requests=16, rate=2_000.0)
        assert result.completed_requests + result.shed_requests == 16
        assert result.resilience.failovers >= 1
        assert result.rejected_completions >= 1
        assert result.router_completed_requests == result.completed_requests


# ----------------------------------------------------------------------
# Degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_degraded_node_finishes_but_slower(self):
        batches = list(general_trace(12, 500.0, 2, seed=0))
        baseline = run_small(small_cluster(1), num_requests=12, rate=500.0)
        plan = FaultPlan(
            [NodeDegradation(start=0.0, end=1e9, node=0, factor=4.0)]
        )
        degraded = small_cluster(1, plan).run(batches)
        assert degraded.completed_requests == 12
        assert degraded.makespan_us > baseline.makespan_us

    def test_degradation_survives_reboot(self):
        # A crash inside a degradation window reboots the node; the new
        # incarnation must re-arm the (still open) straggler window.
        plan = FaultPlan(
            [
                NodeCrash(start=10_000.0, end=20_000.0, node=1),
                NodeDegradation(start=0.0, end=1e9, node=1, factor=3.0),
            ]
        )
        cluster = small_cluster(2, plan)
        result = run_small(cluster, num_requests=24, rate=150.0)
        assert result.completed_requests + result.shed_requests == 24
        assert cluster.nodes[1].incarnation == 1
        # The reborn machine's injector carries the translated straggler
        # windows: every GPU is inflated inside the (still open) window.
        injector = cluster.nodes[1].server.machine.fault_injector
        assert injector is not None
        machine = cluster.nodes[1].server.machine
        for gpu_id in range(len(machine.gpus)):
            assert injector.plan.compute_inflation(gpu_id, 25_000.0) == 3.0


# ----------------------------------------------------------------------
# Router policy
# ----------------------------------------------------------------------
class TestRouterPolicy:
    def test_affinity_pins_a_key_to_one_node(self):
        cluster = small_cluster(
            3, affinity=lambda batch: batch.requests[0].rid % 2
        )
        targets = {}
        original = Router._send

        def spy(router, entry, now, *, from_node):
            key = entry.batch.requests[0].rid % 2
            targets.setdefault(key, set()).add(entry.node)
            return original(router, entry, now, from_node=from_node)

        cluster.router._send = spy.__get__(cluster.router, Router)
        result = run_small(cluster, num_requests=16, rate=2_000.0)
        assert result.completed_requests == 16
        for nodes in targets.values():
            assert len(nodes) == 1

    def test_tie_breaks_come_from_the_run_seed(self):
        def pick_sequence(seed):
            cluster = small_cluster(3, seed=seed)
            order = []
            original = Router._send

            def spy(router, entry, now, *, from_node):
                order.append(entry.node)
                return original(router, entry, now, from_node=from_node)

            cluster.router._send = spy.__get__(cluster.router, Router)
            run_small(cluster, num_requests=16, rate=5_000.0, seed=0)
            return order

        assert pick_sequence(7) == pick_sequence(7)
        sequences = {tuple(pick_sequence(s)) for s in range(6)}
        assert len(sequences) > 1  # the seed actually steers the ties


# ----------------------------------------------------------------------
# Interconnect pricing
# ----------------------------------------------------------------------
class TestInterconnect:
    def test_alpha_beta_cost_model(self):
        link = CrossNodeInterconnect(
            latency_us=25.0, bandwidth_gbps=12.5, per_request_us=1.0
        )
        # 12.5 GB/s → 1 MB costs 80 µs of serialization.
        assert link.transfer_us(1_000_000, num_requests=2) == pytest.approx(
            25.0 + 2.0 + 80.0
        )
        assert link.transfer_us(0) == pytest.approx(26.0)

    def test_payload_scales_with_sequence_length(self):
        short = general_trace(2, 100.0, 2, seq_range=(16, 16), seed=0)[0]
        long = general_trace(2, 100.0, 2, seq_range=(512, 512), seed=0)[0]
        assert batch_payload_bytes(long) > batch_payload_bytes(short)

    def test_cross_node_dispatch_pays_the_link(self):
        # All traffic forced to node 1 (router home is node 0) must be
        # delayed by the interconnect: first kernel starts later than the
        # same workload served by node 0.
        def makespan(affinity_node):
            cluster = small_cluster(
                2,
                affinity=lambda batch: "all",
                interconnect=CrossNodeInterconnect(
                    latency_us=5_000.0, bandwidth_gbps=12.5
                ),
            )
            cluster.router._affinity_map["all"] = affinity_node
            return run_small(cluster, num_requests=8, rate=2_000.0).makespan_us

        assert makespan(1) > makespan(0)


# ----------------------------------------------------------------------
# Node incarnation semantics
# ----------------------------------------------------------------------
class TestClusterNode:
    def test_crash_is_idempotent_and_recover_rebuilds(self):
        from repro.sim.engine import Engine

        node = ClusterNode(
            0, SMALL_MODEL, SMALL_NODE, "intra",
            engine=Engine(), check_memory=False,
        )
        first_server = node.server
        node.crash()
        node.crash()  # idempotent
        assert not node.alive
        assert node.server.machine.halted
        node.recover()
        assert node.alive
        assert node.incarnation == 1
        assert node.server is not first_server
        node.recover()  # no-op when alive
        assert node.incarnation == 1
