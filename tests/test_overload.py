"""Overload layer: admission control, deadlines, KV pressure, backpressure.

Covers the :mod:`repro.serving.overload` pipeline directly (controller-level
tests drive an :class:`~repro.sim.engine.Engine` by hand) and end-to-end
through :class:`~repro.serving.server.Server` and
:class:`~repro.serving.lifecycle.LifecycleServer`.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, OutOfMemoryError
from repro.faults.resilience import ResilienceConfig
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.serving import (
    AdmissionPolicy,
    Batch,
    BurstyProcess,
    KVCacheAccountant,
    OverloadConfig,
    OverloadController,
    Phase,
    Request,
    RequestState,
    Server,
    ServingMetrics,
    chat_workload,
    LifecycleServer,
)
from repro.serving.api import make_strategy
from repro.serving.workload import general_trace, generative_trace
from repro.sim.engine import Engine

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)


def _batch(rid0, arrival, *, size=1, seq=8, phase=Phase.PREFILL,
           context=0, deadline=None):
    reqs = [
        Request(rid=rid0 + i, arrival=arrival, seq_len=seq, phase=phase,
                context_len=context, deadline=deadline)
        for i in range(size)
    ]
    return Batch(reqs)


def _controller(config, downstream=None, metrics=None):
    engine = Engine()
    metrics = metrics if metrics is not None else ServingMetrics()
    sunk = []
    ctl = OverloadController(
        config, MODEL, NODE, engine, metrics,
        downstream if downstream is not None else sunk.append,
    )
    return ctl, sunk, engine, metrics


class TestConfig:
    def test_policy_coercion_from_string(self):
        cfg = OverloadConfig(policy="shed-oldest")
        assert cfg.policy is AdmissionPolicy.SHED_OLDEST

    def test_validation(self):
        with pytest.raises(ConfigError):
            OverloadConfig(max_pending_requests=0)
        with pytest.raises(ConfigError):
            OverloadConfig(default_deadline_us=0.0)
        with pytest.raises(ConfigError):
            OverloadConfig(kv_capacity_frac=1.5)
        with pytest.raises(ConfigError):
            OverloadConfig(breaker_high_frac=0.2, breaker_low_frac=0.5)
        with pytest.raises(ConfigError):
            OverloadConfig(policy="drop-table")


class TestAdmissionPolicies:
    CFG = dict(
        max_pending_requests=2,
        max_inflight_batches=1,
        max_staged_batches=0,
        enable_kv_accounting=False,
        breaker_enabled=False,
    )

    def test_reject_sheds_the_arrival(self):
        cfg = OverloadConfig(policy="reject", **self.CFG)
        ctl, sunk, _, metrics = _controller(cfg)
        batches = [_batch(i, float(i)) for i in range(5)]
        for b in batches:
            ctl.on_arrival(b)
        # One dispatched, two queued, the last two rejected.
        assert len(sunk) == 1
        assert ctl.queue_depth == 2
        assert metrics.shed_requests == 2
        assert [r.state for r in batches[3].requests] == [RequestState.SHED]
        assert [r.state for r in batches[4].requests] == [RequestState.SHED]

    def test_shed_oldest_keeps_the_newest(self):
        cfg = OverloadConfig(policy="shed-oldest", **self.CFG)
        ctl, sunk, _, metrics = _controller(cfg)
        batches = [_batch(i, float(i)) for i in range(5)]
        for b in batches:
            ctl.on_arrival(b)
        assert len(sunk) == 1
        # Queue holds the two *newest* arrivals; the oldest queued were shed.
        queued = [b.batch_id for b in ctl._pending]
        assert queued == [batches[3].batch_id, batches[4].batch_id]
        assert metrics.shed_requests == 2
        assert batches[1].requests[0].state is RequestState.SHED
        assert batches[2].requests[0].state is RequestState.SHED

    def test_shed_by_deadline_drops_tightest_slo(self):
        cfg = OverloadConfig(policy="shed-by-deadline", **self.CFG)
        ctl, sunk, _, metrics = _controller(cfg)
        ctl.on_arrival(_batch(0, 0.0))  # dispatched
        tight = _batch(1, 0.0, deadline=50.0)
        loose = _batch(2, 0.0, deadline=5000.0)
        ctl.on_arrival(tight)
        ctl.on_arrival(loose)
        newcomer = _batch(3, 0.0, deadline=1000.0)
        ctl.on_arrival(newcomer)
        # The tightest-deadline queued batch was sacrificed for the newcomer.
        assert tight.requests[0].state is RequestState.SHED
        queued = [b.batch_id for b in ctl._pending]
        assert queued == [loose.batch_id, newcomer.batch_id]
        assert metrics.shed_requests == 1

    def test_shed_by_deadline_falls_back_to_reject(self):
        cfg = OverloadConfig(policy="shed-by-deadline", **self.CFG)
        ctl, sunk, _, _ = _controller(cfg)
        for i in range(3):  # no deadlines anywhere: nothing to sacrifice
            ctl.on_arrival(_batch(i, float(i)))
        extra = _batch(9, 9.0)
        ctl.on_arrival(extra)
        assert extra.requests[0].state is RequestState.SHED
        assert ctl.queue_depth == 2

    def test_queue_is_always_bounded(self):
        for policy in AdmissionPolicy:
            cfg = OverloadConfig(policy=policy, **self.CFG)
            ctl, _, _, _ = _controller(cfg)
            for i in range(20):
                ctl.on_arrival(_batch(i, float(i), deadline=1e9))
                assert ctl.queue_depth <= cfg.max_pending_requests


class TestDeadlines:
    def test_default_deadline_stamped_at_arrival(self):
        cfg = OverloadConfig(default_deadline_us=500.0, breaker_enabled=False)
        ctl, _, _, _ = _controller(cfg)
        b = _batch(0, 10.0)
        ctl.on_arrival(b)
        assert b.requests[0].deadline == 510.0

    def test_expired_pending_batch_is_timed_out_cheaply(self):
        cfg = OverloadConfig(
            max_inflight_batches=1, max_staged_batches=0,
            enable_kv_accounting=False, breaker_enabled=False,
        )
        ctl, sunk, engine, metrics = _controller(cfg)
        blocker = _batch(0, 0.0)
        late = _batch(1, 0.0, deadline=100.0)
        engine.schedule_at(0.0, lambda: ctl.on_arrival(blocker))
        engine.schedule_at(0.0, lambda: ctl.on_arrival(late))
        # The blocker completes long after `late`'s deadline.
        engine.schedule_at(
            500.0, lambda: ctl.on_complete(blocker, 500.0)
        )
        engine.run()
        # `late` was never dispatched — shed from the queue at zero cost.
        assert len(sunk) == 1
        assert late.requests[0].state is RequestState.TIMED_OUT
        assert metrics.timed_out_requests == 1

    def test_mixed_batch_expiry_splits_terminal_states(self):
        cfg = OverloadConfig(breaker_enabled=False)
        ctl, _, engine, metrics = _controller(cfg)
        reqs = [
            Request(rid=0, arrival=0.0, seq_len=8, deadline=100.0),
            Request(rid=1, arrival=0.0, seq_len=8, deadline=1e6),
        ]
        batch = Batch(reqs)
        engine.schedule_at(200.0, lambda: ctl._expire_batch(batch, 200.0))
        engine.run()
        assert reqs[0].state is RequestState.TIMED_OUT
        assert reqs[1].state is RequestState.SHED  # collateral of its batch
        assert metrics.timed_out_requests == 1
        assert metrics.shed_requests == 1


class TestKVAccountant:
    def test_capacity_is_free_memory_after_weights(self):
        acct = KVCacheAccountant(MODEL, NODE, capacity_frac=0.5)
        free = NODE.gpu.memory_capacity - MODEL.weight_bytes_per_device(4)
        assert acct.capacity == pytest.approx(0.5 * free)

    def test_weights_too_big_rejected(self):
        with pytest.raises(ConfigError):
            KVCacheAccountant(OPT_30B.scaled_layers(96), NODE)

    def test_charge_release_cycle(self):
        acct = KVCacheAccountant(MODEL, NODE)
        b = _batch(0, 0.0, size=4, phase=Phase.DECODE, seq=1, context=64)
        nbytes = acct.charge(b)
        assert nbytes > 0
        assert acct.used == nbytes
        assert acct.inflight == 1
        with pytest.raises(ConfigError):
            acct.charge(b)  # double-charge is a bug, not a no-op
        assert acct.release(b.batch_id) == nbytes
        assert acct.used == 0.0
        assert acct.release(b.batch_id) == 0.0  # idempotent
        assert acct.peak == nbytes

    def test_charge_refuses_to_oversubscribe(self):
        acct = KVCacheAccountant(MODEL, NODE)
        per_token = MODEL.kv_cache_bytes(1, 1, tp=4)
        budget_tokens = int(acct.capacity / per_token)
        big = _batch(0, 0.0, phase=Phase.DECODE, seq=1,
                     context=budget_tokens + 8)
        with pytest.raises(OutOfMemoryError):
            acct.charge(big)
        assert acct.used == 0.0  # failed charge leaves no residue

    def test_unpadded_accounting_sums_members(self):
        acct = KVCacheAccountant(MODEL, NODE)
        reqs = [
            Request(rid=0, arrival=0.0, seq_len=1, phase=Phase.DECODE,
                    context_len=16),
            Request(rid=1, arrival=0.0, seq_len=1, phase=Phase.DECODE,
                    context_len=64),
        ]
        mixed = Batch(reqs)
        per_token = MODEL.kv_cache_bytes(1, 1, tp=4)
        # Per-request (context+1) tokens, NOT padded to the max context.
        assert acct.bytes_for(mixed) == pytest.approx(per_token * (17 + 65))


class TestPreemption:
    def _pressured(self, budget_tokens):
        cfg = OverloadConfig(
            max_inflight_batches=1, max_staged_batches=2,
            breaker_enabled=False,
        )
        ctl, sunk, engine, metrics = _controller(cfg)
        per_token = MODEL.kv_cache_bytes(1, 1, tp=4)
        ctl.accountant.capacity = per_token * budget_tokens
        return ctl, sunk, engine, metrics

    def test_young_staged_decode_is_preempted_for_older_work(self):
        ctl, sunk, _, _ = self._pressured(600)
        old = _batch(0, 0.0, phase=Phase.DECODE, seq=1, context=100)
        young = _batch(1, 10.0, phase=Phase.DECODE, seq=1, context=400)
        head = _batch(2, 5.0, phase=Phase.PREFILL, seq=300)
        ctl.on_arrival(old)     # dispatched (101 tokens charged)
        ctl.on_arrival(young)   # staged (401 more tokens charged)
        ctl.on_arrival(head)    # needs 300: only fits if `young` is evicted
        assert ctl.report.preempted_batches == 1
        assert young.batch_id in [b.batch_id for b in ctl._pending]
        assert young.requests[0].state is RequestState.PENDING  # requeued
        assert head.batch_id in ctl._staged
        assert ctl.accountant.used <= ctl.accountant.capacity

    def test_never_preempts_older_batches(self):
        ctl, _, _, _ = self._pressured(600)
        old = _batch(0, 0.0, phase=Phase.DECODE, seq=1, context=100)
        staged = _batch(1, 1.0, phase=Phase.DECODE, seq=1, context=400)
        newcomer = _batch(2, 50.0, phase=Phase.PREFILL, seq=300)
        ctl.on_arrival(old)
        ctl.on_arrival(staged)
        ctl.on_arrival(newcomer)  # younger than `staged`: must wait
        assert ctl.report.preempted_batches == 0
        assert newcomer.batch_id in [b.batch_id for b in ctl._pending]

    def test_impossible_batch_raises_instead_of_wedging(self):
        ctl, _, _, _ = self._pressured(100)
        giant = _batch(0, 0.0, phase=Phase.PREFILL, seq=500)
        with pytest.raises(OutOfMemoryError):
            ctl.on_arrival(giant)  # nothing in flight could ever free room

    def test_preempted_batch_eventually_dispatches(self):
        ctl, sunk, _, _ = self._pressured(600)
        old = _batch(0, 0.0, phase=Phase.DECODE, seq=1, context=100)
        young = _batch(1, 10.0, phase=Phase.DECODE, seq=1, context=400)
        head = _batch(2, 5.0, phase=Phase.PREFILL, seq=300)
        ctl.on_arrival(old)
        ctl.on_arrival(young)
        ctl.on_arrival(head)  # preempts young
        ctl.on_complete(old, 100.0)   # frees 101 tokens, dispatches head
        ctl.on_complete(head, 200.0)  # frees 300: young readmits
        assert young.batch_id in ctl._staged or any(
            b.batch_id == young.batch_id for b in sunk
        )


class TestServerOverload:
    N = 512

    def _overloaded_workload(self):
        # Decode-heavy traffic at ~2× the sustainable rate, in bursts:
        # batch-8 decode steps over a 256-token context at 4000 req/s mean.
        return generative_trace(
            self.N, 4000.0, batch_size=8, context_len=256, seed=0,
            arrival=BurstyProcess(4000.0, burstiness=6.0, phase_requests=64),
        )

    def _run(self, overload, workload=None):
        strat = make_strategy("intra", MODEL, NODE)
        server = Server(
            MODEL, NODE, strat, check_memory=False, record_trace=False,
            overload=overload,
        )
        return server.run(workload or self._overloaded_workload())

    def test_overload_run_is_bounded_and_fully_accounted(self):
        cfg = OverloadConfig(
            max_pending_requests=32, policy="shed-oldest",
            default_deadline_us=100_000.0,
        )
        result = self._run(cfg)
        m = result.metrics
        rpt = result.overload
        assert m.num_terminal == self.N  # every request reached a terminal state
        assert m.shed_requests + m.timed_out_requests > 0  # it really shed
        assert rpt.peak_pending_requests <= cfg.max_pending_requests
        assert rpt.peak_kv_bytes <= rpt.kv_capacity_bytes
        assert rpt.admitted_requests + rpt.shed_requests \
            + rpt.timed_out_requests >= self.N

    def test_admission_control_beats_unbounded_queueing(self):
        # Same overloaded trace with and without admission control: the
        # unprotected server serves everything but its completed-request
        # latency collapses; the protected one keeps served latency bounded
        # by shedding the excess.
        unprotected = self._run(None)
        protected = self._run(
            OverloadConfig(max_pending_requests=32, policy="shed-oldest")
        )
        assert unprotected.metrics.num_completed == self.N
        assert protected.metrics.shed_requests > 0
        p_lat = protected.latency_stats()
        u_lat = unprotected.latency_stats()
        assert p_lat.p99 < u_lat.p99
        assert p_lat.mean < u_lat.mean

    def test_tight_deadlines_shed_queued_work_cheaply(self):
        cfg = OverloadConfig(
            max_pending_requests=256, default_deadline_us=15_000.0
        )
        result = self._run(cfg)
        m = result.metrics
        att = m.slo_attainment()
        assert m.timed_out_requests > 0  # expired while pending: never ran
        assert att is not None and 0.0 <= att <= 1.0
        assert m.slo_tracked > 0
        assert m.num_terminal == self.N

    def test_disabled_overload_is_bit_identical(self):
        base = self._run(None, workload=general_trace(32, 40.0, 2, seed=3))
        again = self._run(None, workload=general_trace(32, 40.0, 2, seed=3))
        assert (
            [r.completion for r in base.metrics.completed]
            == [r.completion for r in again.metrics.completed]
        )


class TestBreakerAndDowngrade:
    def test_breaker_opens_under_sustained_backlog_and_downgrades(self):
        strat = make_strategy("liger", MODEL, NODE)
        cfg = OverloadConfig(
            max_pending_requests=16, policy="reject",
            breaker_check_period_us=2_000.0, breaker_trip_checks=2,
            breaker_high_frac=0.5, breaker_low_frac=0.125,
        )
        server = Server(
            MODEL, NODE, strat, check_memory=False,
            resilience=ResilienceConfig(),
            overload=cfg,
        )
        trace = generative_trace(
            192, 6000.0, batch_size=4, context_len=256, seed=0,
            arrival=BurstyProcess(6000.0, burstiness=8.0, phase_requests=96),
        )
        result = server.run(trace)
        rpt = result.overload
        assert rpt.breaker_trips >= 1
        assert any(ev.state == "open" for ev in rpt.events)
        # The trip downgraded liger to its intra-op fallback.
        assert result.resilience is not None
        assert result.resilience.overload_downgrades >= 1

    def test_breaker_closes_once_queue_drains(self):
        cfg = OverloadConfig(
            max_pending_requests=4,
            breaker_check_period_us=100.0, breaker_trip_checks=1,
            breaker_high_frac=0.5, breaker_low_frac=0.25,
            enable_kv_accounting=False, max_inflight_batches=1,
            max_staged_batches=0,
        )
        ctl, sunk, engine, _ = _controller(cfg)
        first = _batch(0, 0.0)
        engine.schedule_at(0.0, lambda: ctl.on_arrival(first))
        for i in range(1, 5):
            engine.schedule_at(
                1.0, lambda i=i: ctl.on_arrival(_batch(i, 1.0))
            )
        ctl.arm()
        # Drain the queue late: the breaker must open first, then close.
        def drain():
            if not ctl._dispatched:
                return
            bid, batch = next(iter(ctl._dispatched.items()))
            ctl.on_complete(batch, engine.now)

        for t in (1_000.0, 1_100.0, 1_200.0, 1_300.0, 1_400.0):
            engine.schedule_at(t, drain)
        engine.run()
        states = [ev.state for ev in ctl.report.events]
        assert "open" in states
        assert states[-1] == "closed"
        assert not ctl.breaker_open

    def test_open_breaker_fails_fast(self):
        cfg = OverloadConfig(breaker_enabled=False)
        ctl, sunk, _, metrics = _controller(cfg)
        ctl.breaker_open = True  # as if tripped
        b = _batch(0, 0.0)
        ctl.on_arrival(b)
        assert b.requests[0].state is RequestState.SHED
        assert not sunk


class TestLifecycleOverload:
    def test_deadline_misses_and_timeouts_under_pressure(self):
        reqs = chat_workload(
            48, 600.0, prompt_range=(32, 128), gen_tokens=(8, 24),
            seed=1, deadline_us=250_000.0,
        )
        strat = make_strategy("intra", MODEL, NODE)
        srv = LifecycleServer(
            MODEL, NODE, strat, check_memory=False,
            overload=OverloadConfig(
                max_pending_requests=6, policy="shed-by-deadline"
            ),
        )
        res = srv.run(reqs)
        assert res.timed_out_requests > 0
        assert res.slo_attainment is not None
        total = res.num_requests + res.shed_requests + res.timed_out_requests
        assert total == 48
        for r in reqs:  # terminal-state invariant: nobody left pending
            assert r.state.terminal

    def test_bounded_admission_queue_under_kv_pressure(self):
        reqs = chat_workload(
            40, 3000.0, prompt_range=(64, 256), gen_tokens=(16, 32), seed=2,
        )
        strat = make_strategy("intra", MODEL, NODE)
        srv = LifecycleServer(
            MODEL, NODE, strat, check_memory=False,
            overload=OverloadConfig(max_pending_requests=8, policy="reject"),
        )
        # Memory for ~600 KV tokens: prompts back up behind resident chats.
        per_token = MODEL.kv_cache_bytes(1, 1, tp=4)
        srv.memory.reserve(
            "test-squeeze", srv.memory.min_available() - 600 * per_token
        )
        res = srv.run(reqs)
        assert res.shed_requests > 0
        total = res.num_requests + res.shed_requests + res.timed_out_requests
        assert total == 40
        for r in reqs:
            assert r.state.terminal

    def test_kv_pressure_triggers_recompute_preemption(self):
        from repro.serving import ChatRequest
        from repro.sim.memory import activation_bytes

        # Three chats and room for ~245 KV tokens: Z (100 tokens) admits
        # immediately; O (200 tokens, loose deadline) blocks; A (80 tokens,
        # tight deadline) passes O via EDF.  When Z finishes, O still does
        # not fit — until it preempts the younger A, which re-prefills its
        # accumulated context and completes afterwards.
        z = ChatRequest(rid=0, arrival=0.0, prompt_len=92, gen_tokens=8,
                        deadline=500_000.0)
        o = ChatRequest(rid=1, arrival=10.0, prompt_len=180, gen_tokens=20,
                        deadline=5_000_000.0)
        a = ChatRequest(rid=2, arrival=20.0, prompt_len=72, gen_tokens=40,
                        deadline=400_000.0)
        strat = make_strategy("intra", MODEL, NODE)
        srv = LifecycleServer(
            MODEL, NODE, strat, check_memory=False, prefill_batch=1,
            overload=OverloadConfig(
                max_pending_requests=64, policy="shed-by-deadline"
            ),
        )
        per_token = MODEL.kv_cache_bytes(1, 1, tp=4)
        budget = 245 * per_token + 2 * activation_bytes(MODEL, 1, 1, 4)
        srv.memory.reserve(
            "test-squeeze", srv.memory.min_available() - budget
        )
        res = srv.run([z, o, a])
        assert res.preemptions >= 1
        assert res.num_requests == 3  # everyone completed despite eviction
        for r in (z, o, a):
            assert r.state is RequestState.COMPLETED
