"""Tests for function assembly (§3.2): KernelFunc, FuncVec, FunctionAssembler."""

from __future__ import annotations

import pytest

from repro.core.assembly import FuncVec, FunctionAssembler, KernelFunc
from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.models.ops import allreduce_op, gemm_op
from repro.models.transformer import prefill_ops
from repro.profiling import OpProfiler
from repro.serving.request import Batch, Phase, Request
from repro.sim.kernel import KernelKind


def make_batch(size=2, seq=64, arrival=0.0, phase=Phase.PREFILL):
    return Batch(
        requests=[
            Request(rid=i, arrival=arrival, seq_len=seq, phase=phase)
            for i in range(size)
        ]
    )


def kf(op, duration, batch_id=0):
    return KernelFunc(
        op=op,
        duration=duration,
        kind=op.kind,
        batch_id=batch_id,
        batch_size=2,
        seq_len=64,
        decomposable=op.decomposable,
    )


class TestKernelFunc:
    def test_metadata_carried(self):
        op = gemm_op("g", 0, 128, 512, 512)
        f = kf(op, 42.0)
        assert f.duration == 42.0
        assert not f.is_comm
        assert f.batch_size == 2 and f.seq_len == 64

    def test_same_type_granularity(self):
        comm = kf(allreduce_op("ar", 0, 1e6), 10.0)
        comp = kf(gemm_op("g", 0, 8, 8, 8), 10.0)
        assert comm.same_type_as(KernelKind.COMM)
        assert not comm.same_type_as(KernelKind.COMPUTE)
        assert comp.same_type_as(KernelKind.COMPUTE)
        # MEMORY schedules like computation
        assert comp.same_type_as(KernelKind.MEMORY)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            kf(gemm_op("g", 0, 8, 8, 8), -1.0)


class TestFuncVec:
    def _vec(self):
        funcs = [
            kf(gemm_op("g1", 0, 128, 512, 512), 10.0),
            kf(gemm_op("g2", 0, 128, 512, 512), 10.0),
            kf(allreduce_op("ar", 0, 1e6), 5.0),
            kf(gemm_op("g3", 1, 128, 512, 512), 10.0),
        ]
        return FuncVec(make_batch(), funcs)

    def test_fifo_order(self):
        v = self._vec()
        names = [v.pop().op.name for _ in range(4)]
        assert names == ["g1", "g2", "ar", "g3"]
        assert v.empty

    def test_next_switches_detects_type_boundary(self):
        v = self._vec()
        assert not v.next_switches()  # g1 → g2: same type
        v.pop()
        assert v.next_switches()  # g2 → ar: switch
        v.pop()
        assert v.next_switches()  # ar → g3: switch
        v.pop()
        assert v.next_switches()  # g3 is last

    def test_push_front(self):
        v = self._vec()
        first = v.pop()
        v.push_front(first)
        assert v.peek().op.name == "g1"
        assert len(v) == 4

    def test_empty_vec_rejected(self):
        with pytest.raises(ConfigError):
            FuncVec(make_batch(), [])

    def test_empty_operations_rejected(self):
        v = self._vec()
        for _ in range(4):
            v.pop()
        with pytest.raises(ConfigError):
            v.pop()
        with pytest.raises(ConfigError):
            v.peek()
        with pytest.raises(ConfigError):
            v.next_switches()


class TestFunctionAssembler:
    def test_assembles_full_prefill(self):
        node = v100_nvlink_node(4)
        profiler = OpProfiler(node)
        assembler = FunctionAssembler(
            lambda b: prefill_ops(OPT_30B, b.size, b.seq_len, 4), profiler
        )
        batch = make_batch(size=2, seq=64)
        vec = assembler.assemble(batch)
        ops = prefill_ops(OPT_30B, 2, 64, 4)
        assert len(vec) == len(ops)
        assert vec.batch is batch
        # Durations come from the profiler.
        head = vec.peek()
        assert head.duration == profiler.duration(ops[0])
        assert assembler.batches_assembled == 1

    def test_durations_positive_and_types_alternate_sanely(self):
        node = v100_nvlink_node(4)
        assembler = FunctionAssembler(
            lambda b: prefill_ops(OPT_30B, b.size, b.seq_len, 4), OpProfiler(node)
        )
        vec = assembler.assemble(make_batch())
        comm = comp = 0
        while not vec.empty:
            f = vec.pop()
            assert f.duration > 0
            if f.is_comm:
                comm += 1
            else:
                comp += 1
        assert comm == 2 * OPT_30B.num_layers + 1
        assert comp > comm
