"""Tests for the experiment harness, reporting, and figure functions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    ExperimentRecord,
    ExperimentRunner,
    format_kv,
    format_table,
    table1,
)
from repro.experiments.figures import _fit_layers, _maybe_reduce, _scale
from repro.experiments.reporting import bar
from repro.hw import a100_pcie_node, v100_nvlink_node
from repro.models import GLM_130B, OPT_30B
from repro.profiling.contention_profiler import ContentionFactors


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [100, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        widths = {len(l) for l in lines[1:]}
        assert len(widths) <= 2  # data rows align with the rule

    def test_format_kv(self):
        text = format_kv([("alpha", 1.5), ("b", "x")])
        assert "alpha : 1.500" in text
        assert "b" in text and ": x" in text

    def test_bar(self):
        assert bar(5, 10, width=10) == "#####"
        assert bar(20, 10, width=10) == "#" * 10
        assert bar(1, 0) == ""

    def test_float_formatting(self):
        text = format_table(["x"], [[12345.6], [42.123], [0.12345], [0]])
        assert "12,346" in text
        assert "42.1" in text
        assert "0.123" in text


class TestRunner:
    def setup_method(self):
        self.model = OPT_30B.scaled_layers(6)
        self.node = v100_nvlink_node(4)
        self.runner = ExperimentRunner(
            self.model,
            self.node,
            figure="t",
            contention_factors=ContentionFactors(compute=1.05, comm=1.1),
        )

    def test_saturation_rate_positive_and_scales_with_batch(self):
        r2 = self.runner.saturation_rate(2)
        r8 = self.runner.saturation_rate(8)
        assert r2 > 0
        # Larger batches amortise per-kernel overheads: more req/s.
        assert r8 > r2

    def test_relative_rates(self):
        rates = self.runner.relative_rates((0.5, 1.0), 2)
        assert rates[0] == pytest.approx(self.runner.saturation_rate(2) * 0.5, rel=0.01)
        assert len(rates) == 2

    def test_run_point_produces_record(self):
        record, result = self.runner.run_point(
            "intra", 10.0, num_requests=8, batch_size=2
        )
        assert record.strategy == "intra"
        assert record.avg_latency_ms > 0
        assert result.metrics.num_completed == 8

    def test_sweep_cartesian(self):
        records = self.runner.sweep(
            ("intra", "liger"), (10.0, 20.0), num_requests=8, batch_size=2
        )
        assert len(records) == 4
        assert {(r.strategy, r.rate) for r in records} == {
            ("intra", 10.0), ("liger", 10.0), ("intra", 20.0), ("liger", 20.0)
        }

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            self.runner.run_point("intra", 10.0, workload="bogus")

    def test_record_row_matches_headers(self):
        record, _ = self.runner.run_point("intra", 10.0, num_requests=4, batch_size=2)
        assert len(record.row()) == len(ExperimentRecord.ROW_HEADERS)


class TestFigureHelpers:
    def test_scale_lookup(self):
        assert _scale("smoke").requests < _scale("full").requests
        with pytest.raises(ConfigError):
            _scale("huge")

    def test_maybe_reduce(self):
        sc = _scale("smoke")
        reduced = _maybe_reduce(OPT_30B, sc)
        assert reduced.num_layers == 8
        full = _maybe_reduce(OPT_30B, _scale("quick"))
        assert full is OPT_30B

    def test_fit_layers_respects_device_memory(self):
        # OPT-30B (60 GB) into one 16 GB V100: about a quarter of the layers.
        layers = _fit_layers(OPT_30B, v100_nvlink_node(1))
        assert 8 <= layers <= 16
        # GLM-130B (260 GB) into one 80 GB A100.
        layers = _fit_layers(GLM_130B, a100_pcie_node(1))
        assert 15 <= layers <= 25

    def test_table1_exact(self):
        result = table1()
        assert "7168" in result.text
        assert "12288" in result.text
        assert "FP16" in result.text


class TestFiguresSmoke:
    """Each figure function must run end-to-end at smoke scale."""

    @pytest.mark.parametrize("name", ["fig3", "fig13", "fig14", "ablations"])
    def test_figure_smoke(self, name):
        from repro.experiments import ALL_FIGURES

        result = ALL_FIGURES[name](scale="smoke")
        assert result.figure == name
        assert result.text
        assert result.summary
