"""Tests for trace aggregation and the Host (CPU) launch model."""

from __future__ import annotations

import json

import pytest

from repro.hw import v100_nvlink_node
from repro.sim import (
    CudaEvent,
    Engine,
    Host,
    Kernel,
    KernelKind,
    Machine,
    NullContention,
    Trace,
)
from repro.sim.tracing import _intersection_length, _union_length


def k(name, dur, kind=KernelKind.COMPUTE, occ=0.4):
    return Kernel(name=name, kind=kind, duration=dur, occupancy=occ)


def make_machine(num_gpus=1):
    return Machine(
        v100_nvlink_node(num_gpus), Engine(), contention=NullContention(), trace=Trace()
    )


class TestIntervalMath:
    def test_union_merges_overlaps(self):
        assert _union_length([(0, 10), (5, 15), (20, 25)]) == 20.0

    def test_union_ignores_empty(self):
        assert _union_length([(5, 5), (7, 6)]) == 0.0

    def test_intersection_basic(self):
        assert _intersection_length([(0, 10)], [(5, 20)]) == 5.0

    def test_intersection_disjoint(self):
        assert _intersection_length([(0, 1)], [(2, 3)]) == 0.0

    def test_intersection_multiple_segments(self):
        a = [(0, 10), (20, 30)]
        b = [(5, 25)]
        assert _intersection_length(a, b) == 10.0


class TestTraceAggregates:
    def _machine_with_overlap(self):
        m = make_machine()
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        m.launch(s0, k("compute", 100.0, occ=0.5), available_at=0.0)
        m.launch(s1, k("comm", 60.0, kind=KernelKind.COMM, occ=0.1), available_at=20.0)
        m.run()
        return m

    def test_busy_and_overlap_times(self):
        m = self._machine_with_overlap()
        t = m.trace
        assert t.busy_time(0) == pytest.approx(100.0)
        assert t.busy_time(0, KernelKind.COMM) == pytest.approx(60.0)
        assert t.overlap_time(0) == pytest.approx(60.0)
        assert t.overlap_efficiency(0) == pytest.approx(1.0)

    def test_comm_fraction(self):
        m = self._machine_with_overlap()
        assert m.trace.comm_fraction(0) == pytest.approx(0.6)

    def test_makespan(self):
        m = self._machine_with_overlap()
        assert m.trace.makespan() == pytest.approx(100.0)

    def test_chrome_trace_round_trips(self):
        m = self._machine_with_overlap()
        data = json.loads(m.trace.to_chrome_trace())
        assert len(data["traceEvents"]) == 2
        names = {e["name"] for e in data["traceEvents"]}
        assert names == {"compute", "comm"}

    def test_save_chrome_trace(self, tmp_path):
        m = self._machine_with_overlap()
        path = tmp_path / "trace.json"
        m.trace.save_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_kernel_durations_grouped_by_op(self):
        m = make_machine()
        s = m.gpu(0).stream("s0")
        for i in range(3):
            m.launch(
                s,
                Kernel(name=f"g{i}", kind=KernelKind.COMPUTE, duration=5.0, op="gemm"),
                available_at=0.0,
            )
        m.run()
        assert m.trace.kernel_durations() == {"gemm": [5.0, 5.0, 5.0]}

    def test_mean_queueing_delay(self):
        m = make_machine()
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        m.launch(s0, k("hog", 50.0, occ=0.9), available_at=0.0)
        m.launch(s1, k("lagged", 10.0, kind=KernelKind.COMM, occ=0.5), available_at=0.0)
        m.run()
        assert m.trace.mean_queueing_delay(KernelKind.COMM) == pytest.approx(50.0)


class TestHost:
    def test_launch_advances_cursor_by_overhead(self):
        m = make_machine()
        host = Host(m, launch_overhead=5.0)
        s = m.gpu(0).stream("s0")
        t1 = host.launch_kernel(s, k("a", 10.0))
        t2 = host.launch_kernel(s, k("b", 10.0))
        assert t1 == pytest.approx(5.0)
        assert t2 == pytest.approx(10.0)
        m.run()
        rows = {r.name: r for r in m.trace.rows}
        # first kernel cannot start before its launch completes
        assert rows["a"].start == pytest.approx(5.0)
        # second launch overhead hidden behind the first kernel
        assert rows["b"].start == pytest.approx(15.0)

    def test_when_event_blocks_cpu_until_visibility(self):
        m = make_machine()
        host = Host(m, launch_overhead=5.0, sync_visibility_latency=2.0)
        s = m.gpu(0).stream("s0")
        ev = CudaEvent()
        host.launch_kernel(s, k("a", 100.0))
        host.record_event(s, ev)
        fired = []

        def on_done():
            fired.append((m.engine.now, host.cursor(0)))
            host.launch_kernel(s, k("b", 10.0))

        host.when_event(ev, on_done)
        m.run()
        (t, cursor) = fired[0]
        assert t == pytest.approx(105.0 + 2.0 + 0.3, abs=0.5)
        assert cursor >= t
        rows = {r.name: r for r in m.trace.rows}
        # Exposed gap: b starts only after CPU observed + relaunched.
        assert rows["b"].start > rows["a"].end + 2.0

    def test_when_event_multi_gpu_penalty(self):
        m = make_machine(2)
        host = Host(
            m,
            launch_overhead=5.0,
            sync_visibility_latency=2.0,
            multi_gpu_launch_penalty=15.0,
        )
        s = m.gpu(0).stream("s0")
        ev = CudaEvent()
        host.launch_kernel(s, k("a", 50.0))
        host.record_event(s, ev)
        seen = []
        host.when_event(ev, lambda: seen.append(m.engine.now), multi_gpu=True)
        m.run()
        record_time = 55.0  # records when the stream reaches the command
        assert seen[0] == pytest.approx(record_time + 2.0 + 15.0, abs=0.1)

    def test_when_all_events(self):
        m = make_machine(2)
        host = Host(m, launch_overhead=1.0)
        evs = []
        for g in (0, 1):
            s = m.gpu(g).stream("s0")
            ev = CudaEvent()
            host.launch_kernel(s, k(f"k{g}", 30.0 + 10 * g))
            host.record_event(s, ev)
            evs.append(ev)
        seen = []
        host.when_all_events(evs, lambda: seen.append(m.engine.now))
        m.run()
        assert len(seen) == 1
        # fires only after the slower (g1) event
        assert seen[0] >= 40.0

    def test_when_all_events_empty_fires_immediately(self):
        m = make_machine()
        host = Host(m)
        seen = []
        host.when_all_events([], lambda: seen.append(m.engine.now))
        m.run()
        assert seen == [0.0]

    def test_per_rank_cursors_are_independent(self):
        """Each GPU has its own MPI launcher rank: launches don't serialize
        across GPUs."""
        m = make_machine(2)
        host = Host(m, launch_overhead=5.0)
        t0 = host.launch_kernel(m.gpu(0).stream("s0"), k("a", 1.0))
        t1 = host.launch_kernel(m.gpu(1).stream("s0"), k("b", 1.0))
        assert t0 == pytest.approx(5.0)
        assert t1 == pytest.approx(5.0)  # not 10.0
        m.run()

    def test_launch_group(self):
        m = make_machine()
        host = Host(m, launch_overhead=2.0)
        s = m.gpu(0).stream("s0")
        times = host.launch_group([(s, k("a", 1.0)), (s, k("b", 1.0))])
        assert times == [pytest.approx(2.0), pytest.approx(4.0)]
        assert host.launches_issued == 2
        m.run()
