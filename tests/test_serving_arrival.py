"""Direct unit tests for the arrival processes.

The serving tests exercise arrivals only indirectly (through a server);
these pin down the contract of each process — count, sortedness,
non-negativity, and determinism under a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serving import (
    BurstyProcess,
    ConstantRate,
    PoissonProcess,
    TraceReplay,
)
from repro.units import seconds


def _check_arrival_invariants(times, n):
    assert len(times) == n
    assert all(t >= 0 for t in times)
    assert times == sorted(times)


class TestBurstyProcess:
    def test_invariants(self):
        proc = BurstyProcess(10.0, burstiness=4.0, phase_requests=8)
        times = proc.arrivals(64)
        _check_arrival_invariants(times, 64)
        # Strictly increasing: every gap is a positive inter-arrival.
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_rate_is_harmonic_mean_of_phases(self):
        proc = BurstyProcess(10.0, burstiness=4.0, phase_requests=8)
        times = proc.arrivals(160)  # whole number of phase pairs
        observed = len(times) / (times[-1] / seconds(1.0))
        assert observed == pytest.approx(10.0, rel=0.05)

    def test_phases_alternate(self):
        proc = BurstyProcess(10.0, burstiness=4.0, phase_requests=4)
        times = proc.arrivals(8)
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        burst_gaps, lull_gaps = gaps[:4], gaps[4:]
        assert max(burst_gaps) < min(lull_gaps)

    def test_deterministic_without_jitter(self):
        a = BurstyProcess(20.0, burstiness=3.0).arrivals(32)
        b = BurstyProcess(20.0, burstiness=3.0).arrivals(32)
        assert a == b

    def test_jitter_seed_determinism(self):
        kw = dict(burstiness=4.0, phase_requests=8, jitter_frac=0.3)
        a = BurstyProcess(10.0, seed=7, **kw).arrivals(64)
        b = BurstyProcess(10.0, seed=7, **kw).arrivals(64)
        c = BurstyProcess(10.0, seed=8, **kw).arrivals(64)
        assert a == b
        assert a != c
        _check_arrival_invariants(a, 64)
        _check_arrival_invariants(c, 64)

    def test_jitter_perturbs_but_preserves_order(self):
        base = BurstyProcess(10.0).arrivals(32)
        jittered = BurstyProcess(10.0, jitter_frac=0.4, seed=3).arrivals(32)
        assert base != jittered
        assert all(b > a for a, b in zip(jittered, jittered[1:]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            BurstyProcess(0.0)
        with pytest.raises(ConfigError):
            BurstyProcess(10.0, burstiness=1.0)
        with pytest.raises(ConfigError):
            BurstyProcess(10.0, phase_requests=0)
        with pytest.raises(ConfigError):
            BurstyProcess(10.0, jitter_frac=1.0)
        with pytest.raises(ConfigError):
            BurstyProcess(10.0, jitter_frac=-0.1)
        with pytest.raises(ConfigError):
            BurstyProcess(10.0).arrivals(-1)


class TestTraceReplay:
    def test_replays_prefix(self):
        ts = [0.0, 10.0, 10.0, 35.5]
        proc = TraceReplay(ts)
        assert proc.arrivals(4) == ts
        assert proc.arrivals(2) == ts[:2]
        _check_arrival_invariants(proc.arrivals(4), 4)

    def test_rejects_bad_traces(self):
        with pytest.raises(ConfigError):
            TraceReplay([10.0, 5.0])  # unsorted
        with pytest.raises(ConfigError):
            TraceReplay([-1.0, 5.0])  # negative
        with pytest.raises(ConfigError):
            TraceReplay([1.0]).arrivals(2)  # over-read


class TestOtherProcesses:
    def test_constant_rate_spacing(self):
        times = ConstantRate(100.0).arrivals(10)
        _check_arrival_invariants(times, 10)
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert gaps == {round(seconds(1.0) / 100.0, 6)}

    def test_poisson_seed_determinism(self):
        a = PoissonProcess(50.0, seed=1).arrivals(64)
        b = PoissonProcess(50.0, seed=1).arrivals(64)
        c = PoissonProcess(50.0, seed=2).arrivals(64)
        assert a == b
        assert a != c
        _check_arrival_invariants(a, 64)
