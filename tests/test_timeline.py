"""Compiled-timeline fast path: equivalence matrix + executor unit tests.

The non-negotiable contract of :mod:`repro.sim.timeline` is that the fast
path is *bit-identical* to the interpreted path: for any scenario, running
with ``enable_timeline_replay=True`` must produce exactly the trace that
``enable_timeline_replay=False`` produces — same rows, same float bits.
The matrix here covers all four servers x both scheduling policies x
caches on/off, fingerprinting each arm with the golden-trace digest.

The flag only exists on :class:`~repro.core.LigerConfig`, so the matrix is
liger-only by construction: the intra strategy has no LigerRuntime and no
HYBRID window structure, hence nothing to replay — its goldens in
``tests/test_session.py`` already pin that path.

The executor unit tests cover the adaptive profitability gate (EMA of
events/window decides whether compiling a window is worth the fixed
cost), the bail guards, and the counter surface exported through
``strategy.perf_counters()``.
"""

from __future__ import annotations

import pytest

from serving_goldens import fingerprint, run_scenario

from repro.core import LigerConfig

SERVERS = ("server", "lifecycle", "static", "continuous")
POLICIES = ("dichotomy", "expert_overlap")


def _config(policy: str, caches: bool, replay: bool) -> LigerConfig:
    return LigerConfig(
        policy=policy,
        enable_plan_cache=caches,
        enable_assembly_cache=caches,
        enable_sim_memos=caches,
        enable_timeline_replay=replay,
    )


class TestReplayEquivalenceMatrix:
    """Fast path on/off must fingerprint identically, every combination."""

    @pytest.mark.parametrize("server", SERVERS)
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("caches", [True, False], ids=["cache_on", "cache_off"])
    def test_replay_on_off_identical(self, server, policy, caches):
        _, trace_on = run_scenario(
            server, "liger", cache_off=not caches,
            liger_config=_config(policy, caches, replay=True),
        )
        _, trace_off = run_scenario(
            server, "liger", cache_off=not caches,
            liger_config=_config(policy, caches, replay=False),
        )
        assert fingerprint(trace_on) == fingerprint(trace_off)

    def test_default_config_matches_golden(self):
        """Replay defaults on; the committed goldens must still hold."""
        import json

        from serving_goldens import GOLDEN_PATH

        with open(GOLDEN_PATH, encoding="utf-8") as fh:
            goldens = json.load(fh)
        _, trace = run_scenario(
            "continuous", "liger",
            liger_config=_config("dichotomy", caches=True, replay=True),
        )
        assert fingerprint(trace) == goldens["continuous/liger"]


def _bound_strategy(replay: bool = True, **cfg):
    """Returns (strategy, server): building the server binds the strategy,
    which is when the runtime (and its TimelineExecutor) come to exist."""
    from repro.hw import v100_nvlink_node
    from repro.models import OPT_30B
    from repro.serving.api import make_strategy
    from repro.serving.generation import ContinuousBatchingServer

    model, node = OPT_30B.scaled_layers(4), v100_nvlink_node(4)
    strat = make_strategy(
        "liger", model, node,
        config=LigerConfig(enable_timeline_replay=replay, **cfg),
    )
    srv = ContinuousBatchingServer(
        model, node, strat, max_batch=8, pipeline_depth=2, check_memory=False
    )
    return strat, srv


class TestExecutorCounters:
    def test_counters_present_and_active(self):
        """A real run replays windows and reports it through perf_counters."""
        from repro.serving.generation import generation_workload

        strat, srv = _bound_strategy()
        srv.run(generation_workload(8, 200.0, seed=0))
        counters = strat.perf_counters()
        for key in (
            "timeline_builds",
            "timeline_replays",
            "timeline_bails",
            "batched_events",
            "fanout_workers",
        ):
            assert key in counters, key
        assert counters["timeline_builds"] >= 1
        assert counters["timeline_replays"] >= 1
        assert counters["batched_events"] >= counters["timeline_replays"]
        assert counters["fanout_workers"] == 0

    def test_replay_off_has_no_timeline_counters(self):
        """With the flag off the runtime builds no executor at all."""
        strat, _ = _bound_strategy(replay=False)
        assert strat.runtime.timeline is None
        counters = strat.perf_counters()
        assert "timeline_builds" not in counters
        assert "timeline_replays" not in counters
        # fanout provenance is reported regardless of the replay flag.
        assert counters["fanout_workers"] == 0


class TestAdaptiveGate:
    """The EMA profitability gate skips compilation on unprofitable windows."""

    def _executor(self):
        from repro.sim.timeline import TimelineExecutor

        strat, _ = _bound_strategy()
        return TimelineExecutor(strat.runtime.machine)

    def test_gate_skips_after_warmup_below_threshold(self, monkeypatch):
        import repro.sim.timeline as tl

        ex = self._executor()
        monkeypatch.setattr(tl, "_GATE_WARMUP", 4)
        monkeypatch.setattr(tl, "_GATE_PROBE_EVERY", 10)
        # Pretend warmup completed with a hopeless average.
        ex.timeline_replays = 4
        ex._window_avg = 1.0

        class _Boom(Exception):
            pass

        def explode(*a, **k):  # compilation must never be reached while gated
            raise _Boom

        monkeypatch.setattr(ex, "_compile", explode)
        sentinel = object()
        # 9 gated calls return False without compiling; the 10th probes.
        for _ in range(tl._GATE_PROBE_EVERY - 1):
            assert ex.fast_forward(sentinel) is False
        with pytest.raises(_Boom):
            ex.fast_forward(sentinel)

    def test_gate_open_during_warmup(self, monkeypatch):
        import repro.sim.timeline as tl

        ex = self._executor()
        ex._window_avg = 0.0  # hopeless average, but...
        ex.timeline_replays = 0  # ...still in warmup: must attempt compile.

        class _Boom(Exception):
            pass

        monkeypatch.setattr(
            ex, "_compile", lambda *a, **k: (_ for _ in ()).throw(_Boom())
        )
        with pytest.raises(_Boom):
            ex.fast_forward(object())

    def test_profitable_average_keeps_gate_open(self, monkeypatch):
        import repro.sim.timeline as tl

        ex = self._executor()
        ex.timeline_replays = 100
        ex._window_avg = tl._GATE_MIN_AVG + 1.0

        class _Boom(Exception):
            pass

        monkeypatch.setattr(
            ex, "_compile", lambda *a, **k: (_ for _ in ()).throw(_Boom())
        )
        with pytest.raises(_Boom):
            ex.fast_forward(object())


class TestBailGuards:
    def test_fault_injector_disables_fast_path(self):
        """Fault-injected machines never take the compiled path."""
        from repro.faults import FaultInjector
        from repro.faults.plan import FaultPlan, GpuStraggler
        from repro.serving.generation import generation_workload

        strat, srv = _bound_strategy()
        plan = FaultPlan(
            [GpuStraggler(start=500.0, end=700.0, gpu=0, factor=2.0)]
        )
        FaultInjector(plan).arm(strat.runtime.machine)
        srv.run(generation_workload(4, 200.0, seed=0))
        counters = strat.perf_counters()
        assert counters.get("timeline_replays", 0) == 0

    def test_observer_heartbeats_still_bit_identical(self):
        """Foreign low-priority events (heartbeats) force bails, not drift."""
        from repro.obs.observability import Observability
        from repro.serving.session import ServingConfig

        _, trace_on = run_scenario(
            "continuous", "liger",
            liger_config=_config("dichotomy", caches=True, replay=True),
            config=ServingConfig(observability=Observability(), record_trace=True),
        )
        _, trace_off = run_scenario(
            "continuous", "liger",
            liger_config=_config("dichotomy", caches=True, replay=False),
            config=ServingConfig(observability=Observability(), record_trace=True),
        )
        assert fingerprint(trace_on) == fingerprint(trace_off)

def _window_machine():
    """A bare 2-GPU machine suitable for hand-built window programs."""
    from repro.hw import v100_nvlink_node
    from repro.sim import Engine, Machine, NullContention, Trace

    return Machine(
        v100_nvlink_node(2), Engine(),
        contention=NullContention(), trace=Trace(),
    )


def _kernel(name, dur, occ=0.4):
    from repro.sim import Kernel, KernelKind

    return Kernel(
        name=name, kind=KernelKind.COMPUTE, duration=dur,
        occupancy=occ, memory_intensity=0.3, batch_id=0,
    )


def _rows(machine):
    return [(r.name, r.start, r.end) for r in machine.trace.rows]


class TestWindowBoundaryBlocks:
    """Streams that block *inside* a window and stay blocked past its end.

    The interpreted path registers a per-GPU kick on the event the moment
    the WAIT reaches the stream head (Machine._pump); the commit must
    install the same waiter on the real event, or the event's later
    record() kicks nobody and the blocked stream stalls — forever, when
    its GPU never sees another incidental pump (this program deadlocks
    without the fix).
    """

    def _program(self, machine, anchor_times):
        """Per-GPU skew: gpu1's kernel runs 2x longer than gpu0's, so the
        anchor (pre-kick + host delay on gpu0) fires while gpu0's secondary
        stream is still blocked on gpu1's end-of-round record."""
        from repro.sim import CudaEvent

        a0 = machine.gpu(0).stream("a0")
        a1 = machine.gpu(0).stream("a1", priority=1)
        b0 = machine.gpu(1).stream("b0")
        pre_kick = CudaEvent("prekick")
        end_g1 = CudaEvent("end@g1")
        pre_kick.on_host(
            lambda: anchor_times.append(machine.engine.now), delay=0.5
        )
        machine.launch(a0, _kernel("k0", 10.0), available_at=0.0)
        machine.record_event(a0, pre_kick, available_at=0.0)
        machine.launch(b0, _kernel("k1", 20.0), available_at=0.0)
        machine.record_event(b0, end_g1, available_at=0.0)
        # Blocks in-window (at t=0), unblocks only after the window ends
        # (end_g1 records at t=20; the window ends at the 10.5 anchor).
        machine.wait_event(a1, end_g1, available_at=0.0)
        machine.launch(a1, _kernel("k2", 5.0), available_at=0.0)
        return pre_kick

    def _run(self, fast):
        from repro.sim.timeline import TimelineExecutor

        machine = _window_machine()
        # Built before the program so submit-time pumps are tracked seeds.
        ex = TimelineExecutor(machine) if fast else None
        anchor_times = []
        pre_kick = self._program(machine, anchor_times)
        if ex is not None:
            assert ex.fast_forward(pre_kick) is True
            assert ex.timeline_replays == 1
        machine.run()
        return _rows(machine), anchor_times, machine.kernels_completed

    def test_blocked_stream_resumes_after_committed_window(self):
        rows_fast, anchors_fast, done_fast = self._run(fast=True)
        rows_interp, anchors_interp, done_interp = self._run(fast=False)
        assert done_fast == done_interp == 3
        assert anchors_fast == anchors_interp == [10.5]
        assert rows_fast == rows_interp


class TestAnchorSurvivorTie:
    """A surviving kick at exactly the anchor instant must fire AFTER the
    anchor: the interpreted path scheduled the anchor at the pre-kick
    record, before the kick existed, so the anchor holds the lower seq.
    The commit must draw the anchor's seq before splicing survivors or the
    tie inverts in the real engine.
    """

    def _program(self, machine, observed):
        """Both GPUs' kernels retire at exactly t=10 off the one completion
        timer; gpu1's end-of-round record then releases a blocked stream,
        producing a kick at the anchor's exact (time, priority)."""
        from repro.sim import CudaEvent

        a0 = machine.gpu(0).stream("a0")
        b0 = machine.gpu(1).stream("b0")
        b1 = machine.gpu(1).stream("b1", priority=1)
        pre_kick = CudaEvent("prekick")
        end_g1 = CudaEvent("end@g1")
        # At the anchor instant the interpreted path has NOT yet run the
        # kick released by end_g1's record — the kick drew a later seq.
        pre_kick.on_host(
            lambda: observed.append(
                (machine.engine.now, bool(machine._pump_scheduled.get(1)))
            ),
            delay=0.0,
        )
        machine.launch(a0, _kernel("k0", 10.0), available_at=0.0)
        machine.record_event(a0, pre_kick, available_at=0.0)
        machine.launch(b0, _kernel("k1", 10.0), available_at=0.0)
        machine.record_event(b0, end_g1, available_at=0.0)
        machine.wait_event(b1, end_g1, available_at=0.0)
        machine.launch(b1, _kernel("k3", 5.0), available_at=0.0)
        return pre_kick

    def _run(self, fast):
        from repro.sim.timeline import TimelineExecutor

        machine = _window_machine()
        # Built before the program so submit-time pumps are tracked seeds.
        ex = TimelineExecutor(machine) if fast else None
        observed = []
        pre_kick = self._program(machine, observed)
        if ex is not None:
            assert ex.fast_forward(pre_kick) is True
            assert ex.timeline_replays == 1
        machine.run()
        return _rows(machine), observed, machine.kernels_completed

    def test_anchor_fires_before_same_instant_survivor_kick(self):
        rows_fast, observed_fast, done_fast = self._run(fast=True)
        rows_interp, observed_interp, done_interp = self._run(fast=False)
        assert done_fast == done_interp == 3
        # (anchor time, "had the survivor kick already run?") — the kick
        # must not have fired yet in either path.
        assert observed_interp == [(10.0, False)]
        assert observed_fast == observed_interp
        assert rows_fast == rows_interp


class TestGaugeExport:
    def test_timeline_gauges_in_prometheus_export(self):
        """Satellite: timeline + fanout counters ride the repro_perf_* section."""
        from repro.obs import Observability
        from repro.serving import ServingConfig

        from repro.hw import v100_nvlink_node
        from repro.models import MODELS
        from repro.serving import ContinuousBatchingServer, generation_workload
        from repro.serving.api import make_strategy
        from serving_goldens import reset_batch_ids

        reset_batch_ids()
        model = MODELS["OPT-13B"].scaled_layers(2)
        node = v100_nvlink_node(2)
        strat = make_strategy("liger", model, node, config=LigerConfig())
        obs = Observability()
        srv = ContinuousBatchingServer(
            model, node, strat, max_batch=4, pipeline_depth=2,
            check_memory=False,
            config=ServingConfig(observability=obs, record_trace=False),
        )
        srv.run(generation_workload(
            12, 1200.0, context_len=16, gen_tokens=(1, 1), seed=0
        ))
        text = obs.to_prometheus()
        for gauge in (
            "repro_perf_timeline_builds",
            "repro_perf_timeline_replays",
            "repro_perf_timeline_bails",
            "repro_perf_batched_events",
            "repro_perf_fanout_workers",
        ):
            assert gauge in text, gauge
        counters = strat.perf_counters()
        builds = counters["timeline_builds"]
        assert f"repro_perf_timeline_builds {builds}" in text
        assert "repro_perf_fanout_workers 0" in text

    def test_replay_off_exports_zeroed_timeline_gauges(self):
        """Without an executor the timeline gauges read 0 (the session
        registers the full repro_perf_* section unconditionally and the
        reader defaults missing counters to zero — same contract as the
        disabled plan cache)."""
        from repro.obs import Observability
        from repro.serving import ServingConfig

        from repro.hw import v100_nvlink_node
        from repro.models import MODELS
        from repro.serving import ContinuousBatchingServer, generation_workload
        from repro.serving.api import make_strategy
        from serving_goldens import reset_batch_ids

        reset_batch_ids()
        model = MODELS["OPT-13B"].scaled_layers(2)
        node = v100_nvlink_node(2)
        strat = make_strategy(
            "liger", model, node,
            config=LigerConfig(enable_timeline_replay=False),
        )
        obs = Observability()
        srv = ContinuousBatchingServer(
            model, node, strat, max_batch=4, pipeline_depth=2,
            check_memory=False,
            config=ServingConfig(observability=obs, record_trace=False),
        )
        srv.run(generation_workload(6, 400.0, seed=0))
        text = obs.to_prometheus()
        assert "repro_perf_timeline_builds 0" in text
        assert "repro_perf_timeline_replays 0" in text
        assert "repro_perf_batched_events 0" in text
        # fanout provenance is independent of the replay flag.
        assert "repro_perf_fanout_workers 0" in text
