"""Tests for multi-token generation serving: static vs continuous batching."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.serving import (
    ContinuousBatchingServer,
    GenRequest,
    StaticBatchingServer,
    generation_workload,
)
from repro.serving.api import make_strategy

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)


def workload(n=32, rate=300.0, gen_tokens=(4, 12), seed=7):
    return generation_workload(
        n, rate, context_len=16, gen_tokens=gen_tokens, seed=seed
    )


def run_server(server_cls, strategy_name="intra", n=32, rate=300.0, **kw):
    strat = make_strategy(strategy_name, MODEL, NODE)
    server = server_cls(MODEL, NODE, strat, check_memory=False, **kw)
    return server, server.run(workload(n=n, rate=rate))


class TestGenRequest:
    def test_progress_tracking(self):
        r = GenRequest(rid=0, arrival=0.0, context_len=16, gen_tokens=3)
        assert not r.finished
        assert r.current_context == 16
        r.tokens_done = 2
        assert r.current_context == 18
        r.tokens_done = 3
        assert r.finished

    def test_as_request_snapshot(self):
        r = GenRequest(rid=5, arrival=9.0, context_len=16, gen_tokens=4)
        r.tokens_done = 1
        req = r.as_request()
        assert req.context_len == 17
        assert req.seq_len == 1

    def test_invalid_job_rejected(self):
        with pytest.raises(ConfigError):
            GenRequest(rid=0, arrival=0.0, context_len=0, gen_tokens=1)
        with pytest.raises(ConfigError):
            GenRequest(rid=0, arrival=0.0, context_len=16, gen_tokens=0)


class TestWorkload:
    def test_lengths_in_range_and_seeded(self):
        a = workload(seed=1)
        b = workload(seed=1)
        assert [r.gen_tokens for r in a] == [r.gen_tokens for r in b]
        assert all(4 <= r.gen_tokens <= 12 for r in a)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            generation_workload(0, 1.0)
        with pytest.raises(ConfigError):
            generation_workload(4, 1.0, gen_tokens=(0, 4))


class TestStaticBatching:
    def test_all_requests_complete(self):
        server, result = run_server(StaticBatchingServer, batch_size=8)
        assert result.metrics.num_completed == 32
        assert "static" in result.strategy

    def test_pads_to_longest_member(self):
        server, _ = run_server(StaticBatchingServer, n=8, batch_size=8)
        reqs = workload(n=8)
        # one group of 8 → iterations = max gen_tokens; tokens = 8 × that.
        assert server.total_tokens == 8 * max(r.gen_tokens for r in reqs)

    def test_batch_members_released_together(self):
        server, result = run_server(StaticBatchingServer, n=8, batch_size=8)
        completions = {r.completion for r in result.metrics.completed}
        assert len(completions) == 1


class TestContinuousBatching:
    def test_all_requests_complete(self):
        server, result = run_server(ContinuousBatchingServer, max_batch=8)
        assert result.metrics.num_completed == 32
        assert "continuous" in result.strategy

    def test_no_padding_waste(self):
        server, _ = run_server(ContinuousBatchingServer, n=8, max_batch=8)
        reqs = workload(n=8)
        # exactly one iteration token per generated token
        assert server.total_tokens == sum(r.gen_tokens for r in reqs)

    def test_short_requests_finish_before_long_ones(self):
        server, result = run_server(ContinuousBatchingServer, n=16, max_batch=16)
        reqs = {r.rid: r for r in result.metrics.completed}
        # seq_len of the proxy records gen_tokens; shorter jobs must not
        # all finish last.
        by_len = sorted(result.metrics.completed, key=lambda r: r.seq_len)
        assert by_len[0].completion < by_len[-1].completion

    def test_beats_static_latency_with_varied_lengths(self):
        _, static = run_server(
            StaticBatchingServer, strategy_name="intra", rate=400.0, batch_size=8
        )
        _, cont = run_server(
            ContinuousBatchingServer, strategy_name="intra", rate=400.0, max_batch=8
        )
        assert cont.avg_latency_ms < static.avg_latency_ms

    def test_liger_composes_with_continuous_batching(self):
        _, intra = run_server(
            ContinuousBatchingServer, strategy_name="intra", rate=900.0,
            max_batch=8, pipeline_depth=3,
        )
        _, liger = run_server(
            ContinuousBatchingServer, strategy_name="liger", rate=900.0,
            max_batch=8, pipeline_depth=3,
        )
        assert liger.avg_latency_ms <= intra.avg_latency_ms * 1.02

    def test_pipeline_depth_one_serializes(self):
        server, result = run_server(
            ContinuousBatchingServer, n=8, max_batch=4, pipeline_depth=1
        )
        assert result.metrics.num_completed == 8

    def test_invalid_params(self):
        strat = make_strategy("intra", MODEL, NODE)
        with pytest.raises(ConfigError):
            ContinuousBatchingServer(MODEL, NODE, strat, max_batch=0, check_memory=False)
        strat2 = make_strategy("intra", MODEL, NODE)
        with pytest.raises(ConfigError):
            StaticBatchingServer(MODEL, NODE, strat2, batch_size=0, check_memory=False)
