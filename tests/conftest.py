"""Shared fixtures for the test suite, plus a per-test wall-clock guard."""

from __future__ import annotations

import os
import signal

import pytest

from repro.hw import a100_pcie_node, v100_nvlink_node
from repro.sim import Engine, Machine, NullContention, Trace

#: Per-test wall-clock budget in seconds; 0 disables the guard.  CI sets
#: this so a wedged simulation (a lost completion, an un-drained queue)
#: fails the one test loudly instead of hanging the whole job.  The guard
#: uses SIGALRM, so it is active only where that signal exists (not
#: Windows) and only in the main thread.
_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT_S", "0"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _TIMEOUT_S > 0 and hasattr(signal, "SIGALRM"):
        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded {_TIMEOUT_S}s wall clock "
                f"(REPRO_TEST_TIMEOUT_S)"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.alarm(_TIMEOUT_S)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
    else:
        yield


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def v100_node():
    return v100_nvlink_node(4)


@pytest.fixture
def a100_node():
    return a100_pcie_node(4)


@pytest.fixture
def machine(v100_node) -> Machine:
    """A 4-GPU V100 machine with tracing and NO contention (deterministic)."""
    return Machine(v100_node, Engine(), contention=NullContention(), trace=Trace())


@pytest.fixture
def contended_machine(v100_node) -> Machine:
    """A 4-GPU V100 machine with the default contention model and tracing."""
    return Machine(v100_node, Engine(), trace=Trace())
