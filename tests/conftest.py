"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw import a100_pcie_node, v100_nvlink_node
from repro.sim import Engine, Machine, NullContention, Trace


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def v100_node():
    return v100_nvlink_node(4)


@pytest.fixture
def a100_node():
    return a100_pcie_node(4)


@pytest.fixture
def machine(v100_node) -> Machine:
    """A 4-GPU V100 machine with tracing and NO contention (deterministic)."""
    return Machine(v100_node, Engine(), contention=NullContention(), trace=Trace())


@pytest.fixture
def contended_machine(v100_node) -> Machine:
    """A 4-GPU V100 machine with the default contention model and tracing."""
    return Machine(v100_node, Engine(), trace=Trace())
