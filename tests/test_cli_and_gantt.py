"""Tests for the serving CLI, the experiments CLI, and the Gantt renderer."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.sim import Engine, Kernel, KernelKind, Machine, NullContention, Trace
from repro.sim.gantt import render_gantt


def traced_machine():
    m = Machine(v100_nvlink_node(1), Engine(), contention=NullContention(), trace=Trace())
    s0 = m.gpu(0).stream("s0")
    s1 = m.gpu(0).stream("s1")
    m.launch(s0, Kernel(name="gemm", kind=KernelKind.COMPUTE, duration=100.0,
                        occupancy=0.9), available_at=0.0)
    m.launch(s1, Kernel(name="ar", kind=KernelKind.COMM, duration=50.0,
                        occupancy=0.05), available_at=0.0)
    m.run()
    return m


class TestGantt:
    def test_renders_lanes_and_legend(self):
        m = traced_machine()
        text = render_gantt(m.trace, width=40)
        assert "g0/s0" in text and "g0/s1" in text
        assert "compute" in text and "communication" in text

    def test_compute_and_comm_glyphs_distinct(self):
        m = traced_machine()
        text = render_gantt(m.trace, width=40)
        lanes = {l.split("|")[0].strip(): l for l in text.splitlines() if "|" in l}
        assert "█" in lanes["g0/s0"]
        assert "▒" in lanes["g0/s1"]

    def test_comm_lane_half_filled(self):
        m = traced_machine()
        text = render_gantt(m.trace, width=40)
        comm_lane = next(l for l in text.splitlines() if l.startswith("g0/s1"))
        filled = comm_lane.count("▒")
        assert 15 <= filled <= 25  # 50 of 100 us

    def test_window_filter(self):
        m = traced_machine()
        text = render_gantt(m.trace, start=60.0, end=100.0, width=20)
        # The comm kernel (ends at 50us with contention off) is outside the
        # window, so no lane cell may show communication (legend aside).
        lanes = [l for l in text.splitlines() if l.startswith("g0/")]
        assert lanes
        assert all("▒" not in l for l in lanes)

    def test_gpu_filter_and_errors(self):
        m = traced_machine()
        with pytest.raises(ConfigError):
            render_gantt(m.trace, width=5)
        with pytest.raises(ConfigError):
            render_gantt(Trace())
        with pytest.raises(ConfigError):
            render_gantt(m.trace, start=10.0, end=10.0)


class TestServingCli:
    def test_basic_run(self, capsys):
        from repro.__main__ import main

        rc = main([
            "--model", "OPT-30B", "--node", "v100", "--strategy", "intra",
            "--rate", "30", "--requests", "8", "--batch", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OPT-30B on v100-nvlink" in out
        assert "p99" in out

    def test_gantt_and_chrome_trace(self, capsys, tmp_path):
        from repro.__main__ import main

        trace_path = tmp_path / "t.json"
        rc = main([
            "--strategy", "liger", "--rate", "40", "--requests", "8",
            "--gantt", "--chrome-trace", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "compute" in out
        assert json.loads(trace_path.read_text())["traceEvents"]

    def test_generative_workload(self, capsys):
        from repro.__main__ import main

        rc = main([
            "--workload", "generative", "--strategy", "intra",
            "--rate", "800", "--requests", "64", "--batch", "32",
        ])
        assert rc == 0
        assert "64 reqs" in capsys.readouterr().out


class TestExperimentsCli:
    def test_table1(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["table1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GLM-130B" in out

    def test_unknown_figure_rejected(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_smoke_figure(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["fig14", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Decomposition factor" in out
