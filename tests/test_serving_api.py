"""Tests for the one-call serving API and the Server loop."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, PartitionError
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B, OPT_66B
from repro.parallel import IntraOpStrategy
from repro.serving import Server
from repro.serving.api import STRATEGIES, make_strategy, serve
from repro.serving.workload import general_trace

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)


class TestMakeStrategy:
    def test_all_registered_strategies_constructible(self):
        for name in STRATEGIES:
            strat = make_strategy(name, MODEL, NODE)
            assert strat.name == name

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            make_strategy("magic", MODEL, NODE)

    def test_liger_gets_reduced_nccl_by_default(self):
        liger = make_strategy("liger", MODEL, NODE)
        intra = make_strategy("intra", MODEL, NODE)
        assert liger.profiler.nccl.max_nchannels < intra.profiler.nccl.max_nchannels


class TestServeApi:
    def test_serve_general(self):
        result = serve(
            MODEL, NODE, strategy="intra", arrival_rate=20.0,
            num_requests=8, batch_size=2, check_memory=False,
        )
        assert result.num_requests == 8
        assert result.strategy == "intra"
        assert "req/s" in result.summary()

    def test_serve_generative(self):
        result = serve(
            MODEL, NODE, strategy="intra", workload="generative",
            arrival_rate=500.0, num_requests=64, batch_size=32,
            check_memory=False,
        )
        assert result.metrics.num_completed == 64

    def test_serve_unknown_workload(self):
        with pytest.raises(ConfigError):
            serve(MODEL, NODE, workload="tpu", check_memory=False)

    def test_memory_check_enforced(self):
        # OPT-66B cannot be placed on the V100 node.
        with pytest.raises(PartitionError):
            serve(OPT_66B, NODE, strategy="intra", num_requests=4)

    def test_trace_recorded_on_request(self):
        result = serve(
            MODEL, NODE, strategy="intra", arrival_rate=20.0,
            num_requests=4, batch_size=2, record_trace=True, check_memory=False,
        )
        assert result.trace is not None
        assert result.trace.rows


class TestServer:
    def test_rejects_mismatched_strategy(self):
        strat = IntraOpStrategy(MODEL, NODE)
        other = OPT_30B.scaled_layers(4)
        with pytest.raises(ConfigError):
            Server(other, NODE, strat, check_memory=False)

    def test_rejects_empty_workload(self):
        strat = IntraOpStrategy(MODEL, NODE)
        server = Server(MODEL, NODE, strat, check_memory=False)
        with pytest.raises(ConfigError):
            server.run([])

    def test_out_of_order_batches_sorted_by_arrival(self):
        strat = IntraOpStrategy(MODEL, NODE)
        server = Server(MODEL, NODE, strat, check_memory=False)
        batches = general_trace(8, 20.0, 2, seed=0)
        result = server.run(list(reversed(batches)))
        assert result.metrics.num_completed == 8

    def test_all_requests_complete_with_pending_time(self):
        strat = IntraOpStrategy(MODEL, NODE)
        server = Server(MODEL, NODE, strat, check_memory=False)
        # Arrival rate far above capacity: later requests accumulate
        # pending time but must still finish.
        batches = general_trace(16, 10_000.0, 2, seed=0)
        result = server.run(batches)
        stats = result.latency_stats()
        assert result.metrics.num_completed == 16
        assert stats.max > stats.p50  # queueing visible in the tail
