"""Unit tests for the small simulator primitives: kernels, collectives,
streams, events, and the error hierarchy."""

from __future__ import annotations

import pytest

from repro import errors
from repro.sim.events import CudaEvent
from repro.sim.kernel import CollectiveKind, CollectiveOp, Kernel, KernelKind
from repro.sim.stream import Command, CommandKind, Stream


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(errors.ConfigError, ValueError)

    def test_oom_is_simulation_error(self):
        assert issubclass(errors.OutOfMemoryError, errors.SimulationError)

    def test_profile_missing_is_key_error(self):
        assert issubclass(errors.ProfileMissingError, KeyError)


class TestKernel:
    def test_kind_taxonomy(self):
        assert KernelKind.COMM.is_comm
        assert not KernelKind.COMPUTE.is_comm
        assert KernelKind.MEMORY.is_compute_like
        assert KernelKind.AUX.is_compute_like
        assert not KernelKind.COMM.is_compute_like

    def test_validation(self):
        with pytest.raises(errors.ConfigError):
            Kernel(name="bad", kind=KernelKind.COMPUTE, duration=-1.0)
        with pytest.raises(errors.ConfigError):
            Kernel(name="bad", kind=KernelKind.COMPUTE, duration=1.0, occupancy=0.0)
        with pytest.raises(errors.ConfigError):
            Kernel(name="bad", kind=KernelKind.COMPUTE, duration=1.0, occupancy=1.5)
        with pytest.raises(errors.ConfigError):
            Kernel(
                name="bad", kind=KernelKind.COMPUTE, duration=1.0,
                memory_intensity=2.0,
            )

    def test_clone_gets_fresh_uid_and_overrides(self):
        k = Kernel(name="a", kind=KernelKind.COMPUTE, duration=5.0, batch_id=3)
        c = k.clone(duration=7.0)
        assert c.uid != k.uid
        assert c.duration == 7.0
        assert c.batch_id == 3
        assert c.meta is not k.meta  # deep-enough copy

    def test_uids_unique(self):
        ks = [Kernel(name=f"k{i}", kind=KernelKind.AUX, duration=1.0) for i in range(10)]
        assert len({k.uid for k in ks}) == 10


class TestCollectiveOp:
    def _op(self):
        return CollectiveOp(
            kind=CollectiveKind.ALL_REDUCE, bytes=1e6,
            participants=[0, 1, 2], duration=10.0,
        )

    def test_membership_lifecycle(self):
        op = self._op()
        assert not op.complete_membership
        for g in (0, 1, 2):
            op.make_member(g, occupancy=0.05)
        assert op.complete_membership
        assert all(m.collective is op for m in op.members.values())

    def test_nonparticipant_rejected(self):
        with pytest.raises(errors.ConfigError):
            self._op().make_member(9, occupancy=0.05)

    def test_duplicate_member_rejected(self):
        op = self._op()
        op.make_member(0, occupancy=0.05)
        with pytest.raises(errors.ConfigError):
            op.make_member(0, occupancy=0.05)

    def test_duplicate_participants_rejected(self):
        with pytest.raises(errors.ConfigError):
            CollectiveOp(
                kind=CollectiveKind.P2P, bytes=1.0,
                participants=[0, 0], duration=1.0,
            )

    def test_default_name(self):
        op = self._op()
        assert "all_reduce" in op.name


class TestStreamAndCommands:
    def test_command_validation(self):
        with pytest.raises(errors.ConfigError):
            Command(CommandKind.LAUNCH, available_at=0.0)  # no kernel
        with pytest.raises(errors.ConfigError):
            Command(CommandKind.RECORD_EVENT, available_at=0.0)  # no event
        with pytest.raises(errors.ConfigError):
            Command(CommandKind.WAIT_EVENT, available_at=0.0)

    def test_stream_fifo_and_counters(self):
        s = Stream(gpu_id=0, name="s", priority=2)
        ev = CudaEvent()
        s.enqueue(Command(CommandKind.RECORD_EVENT, available_at=0.0, event=ev))
        k = Kernel(name="k", kind=KernelKind.COMPUTE, duration=1.0)
        s.enqueue(Command(CommandKind.LAUNCH, available_at=0.0, kernel=k))
        assert s.pending_commands == 2
        assert not s.idle
        first = s.pop_head()
        assert first.kind is CommandKind.RECORD_EVENT
        assert s.retired == 1
        s.pop_head()
        assert s.idle


class TestCudaEvent:
    def test_single_shot_record(self):
        ev = CudaEvent("e")
        fired = []
        ev.record(5.0, lambda d, cb: fired.append((d, cb)))
        assert ev.is_recorded and ev.recorded_at == 5.0
        with pytest.raises(errors.StreamProtocolError):
            ev.record(6.0, lambda d, cb: None)

    def test_waiters_released_through_scheduler_hook(self):
        ev = CudaEvent("e")
        scheduled = []
        ev.add_stream_waiter(lambda: scheduled.append("stream"))
        ev.on_host(lambda: scheduled.append("host"), delay=3.0)
        calls = []
        ev.record(1.0, lambda d, cb: calls.append((d, cb)))
        assert len(calls) == 2
        delays = sorted(d for d, _ in calls)
        assert delays == [0.0, 3.0]

    def test_late_registration_rejected(self):
        ev = CudaEvent("e")
        ev.record(0.0, lambda d, cb: None)
        with pytest.raises(errors.StreamProtocolError):
            ev.add_stream_waiter(lambda: None)
        with pytest.raises(errors.StreamProtocolError):
            ev.on_host(lambda: None)
