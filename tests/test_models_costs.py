"""Tests for the analytical kernel cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hw import A100_80GB_PCIE, V100_16GB
from repro.models import KernelCostModel, OPT_30B, OPT_66B, GLM_130B
from repro.models.ops import allreduce_op, attention_op, elementwise_op, gemm_op


@pytest.fixture
def v100():
    return KernelCostModel(V100_16GB)


@pytest.fixture
def a100():
    return KernelCostModel(A100_80GB_PCIE)


class TestGemm:
    def test_duration_scales_roughly_with_flops(self, v100):
        t1 = v100.gemm_time(256, 4096, 4096)
        t2 = v100.gemm_time(512, 4096, 4096)
        assert 1.8 < t2 / t1 < 2.2

    def test_faster_gpu_is_faster(self, v100, a100):
        shape = (256, 8192, 8192)
        assert a100.gemm_time(*shape) < v100.gemm_time(*shape)

    def test_skinny_rows_hurt_efficiency(self, v100):
        # The Fig. 9 effect: small m → much lower efficiency.
        assert v100.gemm_efficiency(8, 4096, 4096) < 0.5 * v100.gemm_efficiency(
            512, 4096, 4096
        )

    def test_efficiency_bounded(self, v100):
        for m, k, n in [(1, 64, 64), (4096, 8192, 8192), (16, 7168, 7168)]:
            eff = v100.gemm_efficiency(m, k, n)
            assert 0 < eff <= v100.base_efficiency

    def test_tiny_gemm_dominated_by_overhead(self, v100):
        t = v100.gemm_time(1, 64, 64)
        assert t == pytest.approx(v100.kernel_overhead, rel=0.5)

    def test_decode_gemm_memory_bound(self, v100):
        # m = batch = 32, full hidden: weight streaming dominates.
        bd = v100.gemm_breakdown(32, 7168, 7168)
        assert bd.bound == "memory"

    def test_prefill_gemm_compute_bound(self, v100):
        bd = v100.gemm_breakdown(512, 7168, 7168)
        assert bd.bound == "compute"

    def test_giant_panel_rolloff(self, a100):
        """Fig. 10(j)(k): 4 partitioned kernels can sum below one whole kernel."""
        m = 144
        for model, partitioned_wins in [(OPT_30B, False), (OPT_66B, True), (GLM_130B, True)]:
            whole = a100.gemm_time(m, model.ffn_size, model.hidden_size)
            parts = 4 * a100.gemm_time(m, model.ffn_size // 4, model.hidden_size)
            assert (parts < whole) == partitioned_wins, model.name

    def test_vertical_split_much_cheaper_than_horizontal(self, v100):
        """Fig. 9: horizontal decomposition (splitting skinny A) is far worse."""
        m, k, n, d = 144, 7168, 28672, 8
        whole = v100.gemm_time(m, k, n)
        vertical = d * v100.gemm_time(m, k, n // d)
        horizontal = d * v100.gemm_time(max(1, m // d), k, n)
        assert vertical < horizontal
        assert vertical / whole < 1.4
        assert horizontal / whole > 2.0


class TestOtherOps:
    def test_attention_scales_with_context(self, v100):
        short = v100.attention_breakdown(2, 1, 64, 14, 128).total
        long = v100.attention_breakdown(2, 1, 2048, 14, 128).total
        assert long > short

    def test_decode_attention_memory_bound(self, v100):
        bd = v100.attention_breakdown(32, 1, 512, 14, 128)
        assert bd.bound == "memory"

    def test_elementwise_linear_in_elems(self, v100):
        base = v100.elementwise_time(1e6) - v100.kernel_overhead
        double = v100.elementwise_time(2e6) - v100.kernel_overhead
        assert double == pytest.approx(2 * base, rel=1e-6)

    def test_duration_dispatch(self, v100):
        assert v100.duration(gemm_op("g", 0, 128, 1024, 1024)) > 0
        assert (
            v100.duration(
                attention_op("a", 0, batch=2, q_len=8, ctx_len=8, heads=4, head_dim=64)
            )
            > 0
        )
        assert v100.duration(elementwise_op("e", 0, 1e5)) > 0

    def test_collective_dispatch_rejected(self, v100):
        with pytest.raises(ConfigError):
            v100.duration(allreduce_op("ar", 0, 1e6))
        with pytest.raises(ConfigError):
            v100.occupancy(allreduce_op("ar", 0, 1e6))
        with pytest.raises(ConfigError):
            v100.memory_intensity(allreduce_op("ar", 0, 1e6))

    def test_occupancy_ranges(self, v100):
        big = v100.occupancy(gemm_op("g", 0, 256, 4096, 4096))
        small = v100.occupancy(gemm_op("g", 0, 4, 4096, 4096))
        assert big == pytest.approx(0.92)
        assert small < big
        assert 0 < small <= 1

    def test_memory_intensity_ranges(self, v100):
        for op in [
            gemm_op("g", 0, 256, 4096, 4096),
            attention_op("a", 0, batch=2, q_len=8, ctx_len=8, heads=4, head_dim=64),
            elementwise_op("e", 0, 1e5),
        ]:
            assert 0 <= v100.memory_intensity(op) <= 1

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            KernelCostModel(V100_16GB, base_efficiency=0.0)
        with pytest.raises(ConfigError):
            KernelCostModel(V100_16GB, kernel_overhead=-1.0)
        with pytest.raises(ConfigError):
            KernelCostModel(V100_16GB, tile_rolloff_strength=-0.5)


@given(
    m=st.integers(min_value=1, max_value=4096),
    k=st.integers(min_value=64, max_value=16384),
    n=st.integers(min_value=64, max_value=16384),
)
@settings(max_examples=80, deadline=None)
def test_gemm_time_positive_and_at_least_overhead(m, k, n):
    cm = KernelCostModel(V100_16GB)
    t = cm.gemm_time(m, k, n)
    assert t >= cm.kernel_overhead


@given(
    m=st.integers(min_value=1, max_value=1024),
    k=st.integers(min_value=256, max_value=8192),
    n=st.integers(min_value=256, max_value=8192),
    d=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_vertical_decomposition_never_cheaper_when_small(m, k, n, d):
    """Below the rolloff threshold, splitting always costs something."""
    cm = KernelCostModel(V100_16GB)
    if k * n >= cm.tile_rolloff_threshold or n // d < 1:
        return
    whole = cm.gemm_time(m, k, n)
    parts = sum(cm.gemm_time(m, k, n // d) for _ in range(d))
    assert parts >= whole * 0.999
