"""Multiprocess perf fan-out: determinism contract + counter export.

The merge contract of :mod:`repro.perf.fanout` is that a fanned-out suite
differs from a sequential run *only* in wall-clock-derived fields and the
``fanout_workers`` provenance counter — every deterministic field (event
counts, simulated time, cache and timeline counters) must be identical,
because each scenario derives all randomness from its baked-in seeds and
workers start from fresh interpreter state.

These tests run a 2-scenario subset at smoke scale with one repeat per
arm: enough to cross the process boundary for real while staying inside
tier-1 time budgets.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.perf.fanout import ENV_WORKERS, fanout_map, run_suite_fanout
from repro.perf.harness import run_suite

#: Fields legitimately allowed to differ between sequential and fanned runs:
#: wall-clock measurements and counters derived from them, plus the fan-out
#: provenance marker itself.
WALL_DERIVED = frozenset(
    {
        "wall_s",
        "events_per_sec",
        "wall_per_sim_s",
        "speedup",
        "assembly_build_seconds",
        "plan_build_seconds",
        "fanout_workers",
    }
)

SUBSET = ["steady_decode", "moe_prefill"]


def _strip_wall(obj):
    """Recursively drop wall-derived fields from a results document."""
    if isinstance(obj, dict):
        return {
            k: _strip_wall(v) for k, v in obj.items() if k not in WALL_DERIVED
        }
    if isinstance(obj, list):
        return [_strip_wall(v) for v in obj]
    return obj


@pytest.fixture(scope="module")
def suite_pair():
    sequential = run_suite("smoke", only=SUBSET, repeats=1)
    fanned = run_suite_fanout("smoke", workers=2, only=SUBSET, repeats=1)
    return sequential, fanned


class TestFanoutDeterminism:
    def test_deterministic_fields_identical(self, suite_pair):
        sequential, fanned = suite_pair
        assert _strip_wall(sequential) == _strip_wall(fanned)

    def test_scenario_order_canonical(self, suite_pair):
        sequential, fanned = suite_pair
        assert list(fanned["scenarios"]) == list(sequential["scenarios"]) == SUBSET

    def test_fanout_provenance_recorded(self, suite_pair):
        """Fanned cells record the worker count; sequential cells record 0."""
        sequential, fanned = suite_pair

        def workers_of(cell):
            arm = cell.get("cache_on", cell)
            return arm.get("counters", {}).get("fanout_workers")

        for name in SUBSET:
            assert workers_of(fanned["scenarios"][name]) == 2
            assert workers_of(sequential["scenarios"][name]) == 0


class TestFanoutValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            run_suite_fanout("smoke", workers=2, only=["no_such_scenario"])

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            fanout_map(len, [()], workers=0)

    def test_workers_clamped_to_items(self):
        """More workers than items degrades gracefully (pool of len(items))."""
        out = fanout_map(len, [(1, 2), (3,)], workers=8)
        assert out == [2, 1]

    def test_env_var_name_stable(self):
        """The worker-announcement env var is API: counters and gauges key
        off it (``fanout_workers`` / ``repro_perf_fanout_workers``)."""
        assert ENV_WORKERS == "LIGER_FANOUT_WORKERS"
