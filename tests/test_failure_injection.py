"""Failure-injection tests: the simulator must fail loudly, never wedge.

Injects the classes of faults a scheduling runtime meets in practice —
mis-specified contention models, dependency cycles, ranks that never show
up, double submissions, memory exhaustion — and checks each is either
contained (clamped / rolled back) or raised as the specific typed error.

The second half exercises the declarative fault-injection subsystem
(:mod:`repro.faults`): randomized fault plans must always terminate, and a
straggler that breaks Principle 1 must trigger exactly one recorded strategy
downgrade followed by recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    DeadlockError,
    OutOfMemoryError,
    StreamProtocolError,
)
from repro.hw import v100_nvlink_node
from repro.sim import (
    ContentionModel,
    CudaEvent,
    Engine,
    Kernel,
    KernelKind,
    Machine,
    Trace,
)


def k(name, dur=10.0, kind=KernelKind.COMPUTE, occ=0.4):
    return Kernel(name=name, kind=kind, duration=dur, occupancy=occ)


class AcceleratingContention(ContentionModel):
    """A buggy model claiming overlapped kernels run FASTER than solo."""

    def slowdowns(self, resident):
        return {kern.uid: 0.25 for kern in resident}


class TestRogueContentionModel:
    def test_sub_unity_slowdowns_clamped(self):
        m = Machine(
            v100_nvlink_node(1), Engine(),
            contention=AcceleratingContention(), trace=Trace(),
        )
        m.launch(m.gpu(0).stream("a"), k("x", 100.0), available_at=0.0)
        m.launch(m.gpu(0).stream("b"), k("y", 100.0), available_at=0.0)
        m.run()
        # Kernels may never finish faster than their no-load duration.
        for r in m.trace.rows:
            assert r.duration >= 100.0 - 1e-6


class TestDependencyFaults:
    def test_event_wait_cycle_detected_as_deadlock(self):
        m = Machine(v100_nvlink_node(1), Engine(), trace=Trace())
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        e0, e1 = CudaEvent("e0"), CudaEvent("e1")
        # s0 waits e1 before recording e0; s1 waits e0 before recording e1.
        m.wait_event(s0, e1, available_at=0.0)
        m.record_event(s0, e0, available_at=0.0)
        m.wait_event(s1, e0, available_at=0.0)
        m.record_event(s1, e1, available_at=0.0)
        with pytest.raises(DeadlockError):
            m.run()

    def test_partial_collective_membership_rejected_up_front(self):
        from repro.sim.interconnect import CollectiveCostModel

        node = v100_nvlink_node(4)
        ccm = CollectiveCostModel(node.topology)
        coll = ccm.make_allreduce(1e6, [0, 1, 2, 3])
        m = Machine(node, Engine(), trace=Trace())
        # Ranks 2 and 3 never launch: rendezvous can't complete.
        m.launch(m.gpu(0).stream("c"), coll.members[0], available_at=0.0)
        m.launch(m.gpu(1).stream("c"), coll.members[1], available_at=0.0)
        with pytest.raises(DeadlockError):
            m.run()

    def test_double_event_record_flagged(self):
        m = Machine(v100_nvlink_node(1), Engine(), trace=Trace())
        s = m.gpu(0).stream("s")
        ev = CudaEvent("dup")
        m.record_event(s, ev, available_at=0.0)
        m.record_event(s, ev, available_at=0.0)
        with pytest.raises(StreamProtocolError):
            m.run()


class TestServingFaults:
    def test_double_batch_submission_rejected(self):
        from repro.models import OPT_30B
        from repro.parallel import IntraOpStrategy
        from repro.serving import Server
        from repro.serving.workload import general_trace

        model = OPT_30B.scaled_layers(4)
        node = v100_nvlink_node(4)
        strat = IntraOpStrategy(model, node)
        Server(model, node, strat, check_memory=False)
        batch = general_trace(2, 10.0, 2, seed=0)[0]
        strat.submit_batch(batch)
        with pytest.raises(ConfigError):
            strat.submit_batch(batch)  # still open: double submission

    def test_memory_exhaustion_raises_typed_error(self):
        from repro.models import ModelSpec
        from repro.parallel import IntraOpStrategy
        from repro.serving import Server
        from repro.serving.request import Batch, Request
        from repro.units import GB

        # A model whose weights almost fill the device: one huge batch OOMs.
        model = ModelSpec(
            name="tight", num_layers=2, num_heads=8, hidden_size=4096,
            weight_bytes=GB(62.0),
        )
        node = v100_nvlink_node(4)  # 15.5 GB weights in 16 GB devices
        strat = IntraOpStrategy(model, node)
        server = Server(model, node, strat, check_memory=False)
        huge = Batch(
            requests=[
                Request(rid=i, arrival=1.0, seq_len=4096) for i in range(64)
            ]
        )
        with pytest.raises(OutOfMemoryError):
            server.run([huge])


# ----------------------------------------------------------------------
# Declarative fault injection (repro.faults)
# ----------------------------------------------------------------------

def _serve_under_faults(plan, *, strategy="liger", resilience=None, seed=1):
    from repro.models.specs import OPT_13B
    from repro.serving.api import serve

    return serve(
        model=OPT_13B,
        node=v100_nvlink_node(4),
        strategy=strategy,
        arrival_rate=40.0,
        num_requests=32,
        batch_size=2,
        seed=seed,
        fault_plan=plan,
        resilience=resilience,
    )


def _random_plan(rng):
    """A random-but-valid plan over the first ~0.8 s of the run."""
    from repro.faults.plan import (
        FaultPlan,
        GpuStraggler,
        HostJitter,
        LaunchFailure,
        LinkDegradation,
    )

    def _overlaps(candidate, existing):
        return any(
            set(candidate.targets()) & set(f.targets())
            and candidate.start < f.end
            and f.start < candidate.end
            for f in existing
        )

    faults = []
    for _ in range(rng.integers(1, 4)):
        kind = rng.integers(0, 4)
        start = float(rng.uniform(0, 600_000))
        end = start + float(rng.uniform(1_000, 200_000))
        if kind == 0:
            fault = GpuStraggler(
                start=start, end=end,
                gpu=int(rng.integers(0, 4)),
                factor=float(rng.uniform(1.5, 6.0)),
            )
        elif kind == 1:
            fault = LinkDegradation(
                start=start, end=end,
                fraction=float(rng.uniform(0.2, 0.9)),
            )
        elif kind == 2:
            # Keep failure windows shorter than the retry budget most of
            # the time; longer windows exercise shedding, also legal.
            fault = LaunchFailure(start=start, end=start + 4_000.0)
        else:
            fault = HostJitter(
                start=start, end=end,
                amplitude=float(rng.uniform(1.0, 10.0)),
            )
        # Same-target overlap is a ConfigError since plan validation
        # landed; drop the colliding draw (the plan stays random-but-valid).
        if not _overlaps(fault, faults):
            faults.append(fault)
    return FaultPlan(faults)


class TestRandomizedFaultPlans:
    """Whatever the plan, the engine terminates and accounts for every request."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_plan_always_terminates(self, seed):
        rng = np.random.default_rng(seed)
        plan = _random_plan(rng)
        result = _serve_under_faults(plan)
        report = result.resilience
        assert report is not None
        # Every request is either served or explicitly shed — none lost.
        assert result.metrics.num_completed + result.metrics.shed_requests == 32
        assert not report.watchdog_tripped
        # Downgrades and upgrades come in pairs or end degraded — never more
        # upgrades than downgrades.
        assert report.upgrades <= report.downgrades

    def test_random_plans_are_deterministic(self):
        rng = np.random.default_rng(7)
        plan = _random_plan(rng)
        a = _serve_under_faults(plan)
        b = _serve_under_faults(plan)
        assert [
            (r.rid, r.completion) for r in a.metrics.completed
        ] == [(r.rid, r.completion) for r in b.metrics.completed]


class TestGracefulDegradation:
    """A straggler breaks Principle 1 → one downgrade, then recovery."""

    STRAGGLER = dict(start=0.0, end=400_000.0, gpu=1, factor=4.0)

    def test_straggler_triggers_exactly_one_downgrade_and_recovery(self):
        from repro.faults.plan import FaultPlan, GpuStraggler

        plan = FaultPlan([GpuStraggler(**self.STRAGGLER)])
        result = _serve_under_faults(plan)
        report = result.resilience
        # All requests served despite the fault — no wedge, no crash.
        assert result.metrics.num_completed == 32
        assert report.violations >= 1
        assert report.downgrades == 1
        assert report.upgrades == 1
        assert report.recovered
        assert len(report.recovery_times_us) == 1
        assert report.recovery_times_us[0] > 0
        # The downgrade actually routed work to the fallback strategy.
        assert report.batches_on_fallback >= 1
        kinds = [c.kind for c in report.changes]
        assert kinds == ["downgrade", "upgrade"]

    def test_clean_run_never_downgrades(self):
        from repro.faults.plan import FaultPlan

        result = _serve_under_faults(FaultPlan())
        report = result.resilience
        assert report.violations == 0
        assert report.downgrades == 0
        assert report.rounds_observed > 0

    def test_no_fallback_counts_violations_without_downgrading(self):
        from repro.faults.plan import FaultPlan, GpuStraggler
        from repro.faults.resilience import ResilienceConfig

        plan = FaultPlan([GpuStraggler(**self.STRAGGLER)])
        result = _serve_under_faults(
            plan, resilience=ResilienceConfig(enable_fallback=False)
        )
        report = result.resilience
        assert report.violations >= 1
        assert report.downgrades == 0
        assert result.metrics.num_completed == 32


class TestEmptyPlanIsFree:
    """The armed recovery stack with no faults must not perturb the timeline."""

    def test_empty_plan_reproduces_plain_run_bit_for_bit(self):
        from repro.faults.plan import FaultPlan
        from repro.models.specs import OPT_13B
        from repro.serving.api import serve

        kw = dict(
            model=OPT_13B, node=v100_nvlink_node(4), strategy="liger",
            arrival_rate=40.0, num_requests=32, batch_size=2, seed=1,
        )
        plain = serve(**kw)
        armed = serve(**kw, fault_plan=FaultPlan())
        assert [
            (r.rid, r.arrival, r.completion) for r in plain.metrics.completed
        ] == [(r.rid, r.arrival, r.completion) for r in armed.metrics.completed]
        assert plain.resilience is None
        assert armed.resilience is not None


class TestRetryAndShed:
    """Transient launch failures are retried; persistent ones shed or raise."""

    def test_short_window_absorbed_by_retries(self):
        from repro.faults.plan import FaultPlan, LaunchFailure

        plan = FaultPlan([LaunchFailure(start=50_000.0, end=53_000.0)])
        result = _serve_under_faults(plan)
        assert result.metrics.retries >= 1
        assert result.metrics.shed_requests == 0
        assert result.metrics.num_completed == 32

    def test_long_window_sheds_and_names_the_batch(self):
        from repro.faults.plan import FaultPlan, LaunchFailure

        plan = FaultPlan([LaunchFailure(start=50_000.0, end=80_000.0)])
        result = _serve_under_faults(plan)
        assert result.metrics.shed_requests > 0
        assert result.resilience.shed_batches
        assert (
            result.metrics.num_completed + result.metrics.shed_requests == 32
        )

    def test_shedding_disabled_raises_retry_exhausted(self):
        from repro.errors import RetryExhaustedError
        from repro.faults.plan import FaultPlan, LaunchFailure
        from repro.faults.resilience import ResilienceConfig

        plan = FaultPlan([LaunchFailure(start=50_000.0, end=80_000.0)])
        with pytest.raises(RetryExhaustedError):
            _serve_under_faults(
                plan, resilience=ResilienceConfig(shed_on_exhaustion=False)
            )


class TestIncompleteRunDiagnostics:
    def test_unserved_batches_raise_deadlock_naming_them(self):
        """A run that returns with open batches reports them as a wedge."""
        from repro.models import OPT_30B
        from repro.parallel import IntraOpStrategy
        from repro.serving import Server
        from repro.serving.workload import general_trace

        model = OPT_30B.scaled_layers(4)
        node = v100_nvlink_node(4)
        strat = IntraOpStrategy(model, node)
        server = Server(model, node, strat, check_memory=False)
        batches = general_trace(4, 50.0, 2, seed=0)
        # Sabotage: swallow one batch so it never reaches the machine.
        real_submit = strat.submit_batch
        strat.submit_batch = (
            lambda b: None if b.batch_id == batches[1].batch_id
            else real_submit(b)
        )
        with pytest.raises(DeadlockError, match="never completed"):
            server.run(batches)
