"""Failure-injection tests: the simulator must fail loudly, never wedge.

Injects the classes of faults a scheduling runtime meets in practice —
mis-specified contention models, dependency cycles, ranks that never show
up, double submissions, memory exhaustion — and checks each is either
contained (clamped / rolled back) or raised as the specific typed error.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    DeadlockError,
    OutOfMemoryError,
    StreamProtocolError,
)
from repro.hw import v100_nvlink_node
from repro.sim import (
    ContentionModel,
    CudaEvent,
    Engine,
    Kernel,
    KernelKind,
    Machine,
    Trace,
)


def k(name, dur=10.0, kind=KernelKind.COMPUTE, occ=0.4):
    return Kernel(name=name, kind=kind, duration=dur, occupancy=occ)


class AcceleratingContention(ContentionModel):
    """A buggy model claiming overlapped kernels run FASTER than solo."""

    def slowdowns(self, resident):
        return {kern.uid: 0.25 for kern in resident}


class TestRogueContentionModel:
    def test_sub_unity_slowdowns_clamped(self):
        m = Machine(
            v100_nvlink_node(1), Engine(),
            contention=AcceleratingContention(), trace=Trace(),
        )
        m.launch(m.gpu(0).stream("a"), k("x", 100.0), available_at=0.0)
        m.launch(m.gpu(0).stream("b"), k("y", 100.0), available_at=0.0)
        m.run()
        # Kernels may never finish faster than their no-load duration.
        for r in m.trace.rows:
            assert r.duration >= 100.0 - 1e-6


class TestDependencyFaults:
    def test_event_wait_cycle_detected_as_deadlock(self):
        m = Machine(v100_nvlink_node(1), Engine(), trace=Trace())
        s0 = m.gpu(0).stream("s0")
        s1 = m.gpu(0).stream("s1")
        e0, e1 = CudaEvent("e0"), CudaEvent("e1")
        # s0 waits e1 before recording e0; s1 waits e0 before recording e1.
        m.wait_event(s0, e1, available_at=0.0)
        m.record_event(s0, e0, available_at=0.0)
        m.wait_event(s1, e0, available_at=0.0)
        m.record_event(s1, e1, available_at=0.0)
        with pytest.raises(DeadlockError):
            m.run()

    def test_partial_collective_membership_rejected_up_front(self):
        from repro.sim.interconnect import CollectiveCostModel

        node = v100_nvlink_node(4)
        ccm = CollectiveCostModel(node.topology)
        coll = ccm.make_allreduce(1e6, [0, 1, 2, 3])
        m = Machine(node, Engine(), trace=Trace())
        # Ranks 2 and 3 never launch: rendezvous can't complete.
        m.launch(m.gpu(0).stream("c"), coll.members[0], available_at=0.0)
        m.launch(m.gpu(1).stream("c"), coll.members[1], available_at=0.0)
        with pytest.raises(DeadlockError):
            m.run()

    def test_double_event_record_flagged(self):
        m = Machine(v100_nvlink_node(1), Engine(), trace=Trace())
        s = m.gpu(0).stream("s")
        ev = CudaEvent("dup")
        m.record_event(s, ev, available_at=0.0)
        m.record_event(s, ev, available_at=0.0)
        with pytest.raises(StreamProtocolError):
            m.run()


class TestServingFaults:
    def test_double_batch_submission_rejected(self):
        from repro.models import OPT_30B
        from repro.parallel import IntraOpStrategy
        from repro.serving import Server
        from repro.serving.workload import general_trace

        model = OPT_30B.scaled_layers(4)
        node = v100_nvlink_node(4)
        strat = IntraOpStrategy(model, node)
        Server(model, node, strat, check_memory=False)
        batch = general_trace(2, 10.0, 2, seed=0)[0]
        strat.submit_batch(batch)
        with pytest.raises(ConfigError):
            strat.submit_batch(batch)  # still open: double submission

    def test_memory_exhaustion_raises_typed_error(self):
        from repro.models import ModelSpec
        from repro.parallel import IntraOpStrategy
        from repro.serving import Server
        from repro.serving.request import Batch, Request
        from repro.units import GB

        # A model whose weights almost fill the device: one huge batch OOMs.
        model = ModelSpec(
            name="tight", num_layers=2, num_heads=8, hidden_size=4096,
            weight_bytes=GB(62.0),
        )
        node = v100_nvlink_node(4)  # 15.5 GB weights in 16 GB devices
        strat = IntraOpStrategy(model, node)
        server = Server(model, node, strat, check_memory=False)
        huge = Batch(
            requests=[
                Request(rid=i, arrival=1.0, seq_len=4096) for i in range(64)
            ]
        )
        with pytest.raises(OutOfMemoryError):
            server.run([huge])
