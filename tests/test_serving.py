"""Tests for the serving layer: requests, arrivals, workloads, metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, IncompleteRequestError
from repro.serving import (
    Batch,
    BurstyProcess,
    ConstantRate,
    LatencyStats,
    Phase,
    PoissonProcess,
    Request,
    ServingMetrics,
    TraceReplay,
    general_trace,
    generative_trace,
    pack_batches,
)
from repro.units import seconds


class TestRequestBatch:
    def test_latency_requires_completion(self):
        r = Request(rid=0, arrival=10.0, seq_len=8)
        with pytest.raises(IncompleteRequestError):
            _ = r.latency
        r.mark_completed(30.0)
        assert r.latency == 20.0

    def test_batch_padding_and_arrival(self):
        reqs = [
            Request(rid=0, arrival=5.0, seq_len=16),
            Request(rid=1, arrival=9.0, seq_len=100),
        ]
        b = Batch(requests=reqs)
        assert b.seq_len == 100
        assert b.arrival == 9.0
        assert b.size == 2

    def test_batch_complete_stamps_all(self):
        b = Batch(requests=[Request(rid=i, arrival=0.0, seq_len=8) for i in range(3)])
        b.complete(77.0)
        assert all(r.completion == 77.0 for r in b.requests)

    def test_mixed_phase_batch_rejected(self):
        with pytest.raises(ConfigError):
            Batch(
                requests=[
                    Request(rid=0, arrival=0.0, seq_len=8, phase=Phase.PREFILL),
                    Request(rid=1, arrival=0.0, seq_len=1, phase=Phase.DECODE),
                ]
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError):
            Batch(requests=[])


class TestArrivals:
    def test_constant_rate_spacing(self):
        times = ConstantRate(10.0).arrivals(3)
        assert times == pytest.approx([1e5, 2e5, 3e5])

    def test_poisson_mean_rate(self):
        times = PoissonProcess(100.0, seed=1).arrivals(2000)
        mean_gap = times[-1] / 2000
        assert mean_gap == pytest.approx(seconds(1.0) / 100.0, rel=0.1)

    def test_poisson_deterministic_by_seed(self):
        a = PoissonProcess(10.0, seed=7).arrivals(50)
        b = PoissonProcess(10.0, seed=7).arrivals(50)
        assert a == b

    def test_trace_replay_validation(self):
        with pytest.raises(ConfigError):
            TraceReplay([3.0, 1.0])
        with pytest.raises(ConfigError):
            TraceReplay([-1.0])
        tr = TraceReplay([1.0, 2.0])
        assert tr.arrivals(2) == [1.0, 2.0]
        with pytest.raises(ConfigError):
            tr.arrivals(3)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigError):
            ConstantRate(0.0)
        with pytest.raises(ConfigError):
            PoissonProcess(-1.0)

    def test_bursty_mean_rate_preserved(self):
        proc = BurstyProcess(50.0, burstiness=4.0, phase_requests=10)
        times = proc.arrivals(1000)
        measured = 1000 / (times[-1] / 1e6)
        assert measured == pytest.approx(50.0, rel=0.05)

    def test_bursty_alternates_phases(self):
        proc = BurstyProcess(10.0, burstiness=4.0, phase_requests=4)
        times = proc.arrivals(8)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # First phase is the burst (small gaps), second the lull.
        assert max(gaps[:3]) < min(gaps[4:])

    def test_bursty_validation(self):
        with pytest.raises(ConfigError):
            BurstyProcess(0.0)
        with pytest.raises(ConfigError):
            BurstyProcess(10.0, burstiness=1.0)
        with pytest.raises(ConfigError):
            BurstyProcess(10.0, phase_requests=0)

    def test_bursty_monotone_sorted(self):
        times = BurstyProcess(20.0, burstiness=3.0, phase_requests=5).arrivals(50)
        assert times == sorted(times)


class TestWorkloads:
    def test_general_trace_shape(self):
        batches = general_trace(20, 10.0, 4, seq_range=(16, 128), seed=3)
        assert len(batches) == 5
        assert all(b.size == 4 for b in batches)
        for b in batches:
            for r in b.requests:
                assert 16 <= r.seq_len <= 128
                assert r.phase is Phase.PREFILL

    def test_general_trace_partial_tail_kept(self):
        batches = general_trace(10, 10.0, 4)
        assert [b.size for b in batches] == [4, 4, 2]

    def test_general_trace_seeded(self):
        a = general_trace(16, 5.0, 2, seed=9)
        b = general_trace(16, 5.0, 2, seed=9)
        assert [r.seq_len for x in a for r in x.requests] == [
            r.seq_len for x in b for r in x.requests
        ]

    def test_generative_trace_shape(self):
        batches = generative_trace(64, 100.0, batch_size=32, context_len=16)
        assert len(batches) == 2
        for b in batches:
            assert b.phase is Phase.DECODE
            assert b.context_len == 16
            assert b.seq_len == 1

    def test_bucketed_packing_groups_similar_lengths(self):
        from repro.serving.workload import pack_batches_bucketed

        reqs = [
            Request(rid=i, arrival=float(i), seq_len=seq)
            for i, seq in enumerate([16, 20, 120, 18, 124, 17])
        ]
        batches = pack_batches_bucketed(reqs, 3, bucket_width=32)
        # Every request is served exactly once.
        served = sorted(r.rid for b in batches for r in b.requests)
        assert served == list(range(6))
        # Padded work is lower than arrival-order packing.
        plain = pack_batches(reqs, 3)
        padded = lambda bs: sum(b.size * b.seq_len for b in bs)
        assert padded(batches) < padded(plain)

    def test_bucketed_packing_starvation_guard(self):
        from repro.serving.workload import pack_batches_bucketed

        # One lone long request followed by many short ones: the guard must
        # flush it before the end.
        reqs = [Request(rid=0, arrival=0.0, seq_len=128)] + [
            Request(rid=i, arrival=float(i), seq_len=16) for i in range(1, 12)
        ]
        batches = pack_batches_bucketed(
            reqs, 4, bucket_width=32, max_wait_requests=4
        )
        long_batch_index = next(
            i for i, b in enumerate(batches) if any(r.rid == 0 for r in b.requests)
        )
        assert long_batch_index < len(batches) - 1

    def test_bucketed_packing_validation(self):
        from repro.serving.workload import pack_batches_bucketed

        with pytest.raises(ConfigError):
            pack_batches_bucketed([], 0)
        with pytest.raises(ConfigError):
            pack_batches_bucketed([], 2, bucket_width=0)

    def test_pack_batches_orders_by_arrival(self):
        reqs = [
            Request(rid=0, arrival=30.0, seq_len=8),
            Request(rid=1, arrival=10.0, seq_len=8),
            Request(rid=2, arrival=20.0, seq_len=8),
        ]
        batches = pack_batches(reqs, 2)
        assert [r.rid for r in batches[0].requests] == [1, 2]

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            general_trace(0, 1.0, 2)
        with pytest.raises(ConfigError):
            general_trace(4, 1.0, 0)
        with pytest.raises(ConfigError):
            general_trace(4, 1.0, 2, seq_range=(0, 10))
        with pytest.raises(ConfigError):
            generative_trace(4, 1.0, context_len=0)


class TestMetrics:
    def _completed(self, latencies_us, start=0.0, gap=1e4):
        reqs = []
        for i, lat in enumerate(latencies_us):
            r = Request(rid=i, arrival=start + i * gap, seq_len=8)
            r.mark_completed(r.arrival + lat)
            reqs.append(r)
        return reqs

    def test_latency_stats(self):
        m = ServingMetrics()
        m.record(self._completed([1e4, 2e4, 3e4]))  # 10, 20, 30 ms
        stats = m.latency_stats()
        assert stats.mean == pytest.approx(20.0)
        assert stats.p50 == pytest.approx(20.0)
        assert stats.max == pytest.approx(30.0)

    def test_throughput_span(self):
        m = ServingMetrics()
        reqs = self._completed([5e4] * 10, gap=1e5)  # one per 0.1s
        m.record(reqs)
        # span = last completion − first arrival = 9·0.1s + 0.05s
        assert m.throughput() == pytest.approx(10 / 0.95, rel=1e-6)

    def test_incomplete_request_rejected(self):
        m = ServingMetrics()
        with pytest.raises(IncompleteRequestError):
            m.record([Request(rid=0, arrival=0.0, seq_len=8)])

    def test_empty_metrics(self):
        # A run that completed nothing (everything shed/timed out) must
        # still summarize cleanly: all-zero stats, not an exception.
        m = ServingMetrics()
        assert m.throughput() == 0.0
        stats = m.latency_stats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p99 == 0.0
        assert stats.max == 0.0
        assert m.avg_latency_ms == 0.0
        assert m.pending_time_ms() == 0.0

    def test_latency_stats_count(self):
        m = ServingMetrics()
        m.record(self._completed([1e4, 2e4, 3e4]))
        assert m.latency_stats().count == 3

    def test_pending_time_exact(self):
        # Pending time is dispatched_at − arrival, not a latency heuristic.
        m = ServingMetrics()
        reqs = self._completed([5e4, 5e4])
        reqs[0].dispatched_at = reqs[0].arrival + 2e3  # 2 ms queued
        reqs[1].dispatched_at = reqs[1].arrival + 4e3  # 4 ms queued
        m.record(reqs)
        assert m.pending_time_ms() == pytest.approx(3.0)


@given(
    lat=st.lists(st.floats(min_value=1.0, max_value=1e7), min_size=1, max_size=60)
)
@settings(max_examples=50, deadline=None)
def test_latency_stats_ordering_invariants(lat):
    stats = LatencyStats.from_latencies_us(lat)
    assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max
    eps = 1e-12  # float summation slack in the mean
    assert min(lat) / 1e3 - eps <= stats.mean <= stats.max + eps
