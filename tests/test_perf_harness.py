"""Perf-harness plumbing: regression gate, baseline merge, scenario registry.

Measurement itself is exercised by the CI ``perf`` job (and its timing is
noise-prone by nature); these tests pin the deterministic logic around it.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.perf.harness import check_regression, merge_into_baseline
from repro.perf.scenarios import SCENARIOS, ablation_config, bench_scale


def _doc(scale: str, rates: dict) -> dict:
    return {
        "schema": 1,
        "scale": scale,
        "scenarios": {
            name: (
                {
                    "cache_on": {"events_per_sec": rate, "wall_s": 1.0},
                    "cache_off": {"events_per_sec": rate / 2, "wall_s": 2.0},
                    "speedup": 2.0,
                }
                if name == "steady_decode"
                else {"events_per_sec": rate, "wall_s": 1.0}
            )
            for name, rate in rates.items()
        },
    }


def _baseline_file(tmp_path, scale: str, rates: dict) -> str:
    path = tmp_path / "BENCH_5.json"
    doc = merge_into_baseline(_doc(scale, rates), str(path))
    path.write_text(json.dumps(doc))
    return str(path)


class TestCheckRegression:
    def test_clean_run_passes(self, tmp_path):
        base = _baseline_file(
            tmp_path, "smoke", {"steady_decode": 1000.0, "a/b": 500.0}
        )
        current = _doc("smoke", {"steady_decode": 990.0, "a/b": 520.0})
        assert check_regression(current, base) == []

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        base = _baseline_file(tmp_path, "smoke", {"a/b": 1000.0})
        current = _doc("smoke", {"a/b": 700.0})  # -30% < -20% floor
        failures = check_regression(current, base)
        assert len(failures) == 1
        assert "a/b" in failures[0] and "below baseline" in failures[0]

    def test_ablation_cells_guard_the_cache_on_arm(self, tmp_path):
        base = _baseline_file(tmp_path, "smoke", {"steady_decode": 1000.0})
        current = _doc("smoke", {"steady_decode": 500.0})
        assert len(check_regression(current, base)) == 1

    def test_missing_cell_fails(self, tmp_path):
        base = _baseline_file(
            tmp_path, "smoke", {"a/b": 1000.0, "c/d": 1000.0}
        )
        current = _doc("smoke", {"a/b": 1000.0})
        failures = check_regression(current, base)
        assert failures == ["c/d: missing from current run"]

    def test_scale_sections_never_cross(self, tmp_path):
        """A smoke run must not be judged against full-scale numbers."""
        base = _baseline_file(tmp_path, "full", {"a/b": 1000.0})
        current = _doc("smoke", {"a/b": 10.0})
        failures = check_regression(current, base)
        assert len(failures) == 1
        assert "no scale='smoke' section" in failures[0]

    def test_tolerance_override(self, tmp_path):
        base = _baseline_file(tmp_path, "smoke", {"a/b": 1000.0})
        current = _doc("smoke", {"a/b": 900.0})  # -10%
        assert check_regression(current, base) == []
        assert len(check_regression(current, base, tolerance=0.05)) == 1
        with pytest.raises(ConfigError):
            check_regression(current, base, tolerance=1.5)


class TestMergeIntoBaseline:
    def test_merge_preserves_other_scales(self, tmp_path):
        path = str(tmp_path / "BENCH_5.json")
        first = merge_into_baseline(_doc("full", {"a/b": 1000.0}), path)
        (tmp_path / "BENCH_5.json").write_text(json.dumps(first))
        second = merge_into_baseline(_doc("smoke", {"a/b": 100.0}), path)
        assert set(second["scales"]) == {"smoke", "full"}
        full = second["scales"]["full"]["scenarios"]["a/b"]
        assert full["events_per_sec"] == 1000.0

    def test_same_scale_overwrites(self, tmp_path):
        path = str(tmp_path / "BENCH_5.json")
        first = merge_into_baseline(_doc("smoke", {"a/b": 1.0}), path)
        (tmp_path / "BENCH_5.json").write_text(json.dumps(first))
        second = merge_into_baseline(_doc("smoke", {"a/b": 2.0}), path)
        assert (
            second["scales"]["smoke"]["scenarios"]["a/b"]["events_per_sec"]
            == 2.0
        )


class TestRegistry:
    def test_expected_scenarios_present(self):
        assert "steady_decode" in SCENARIOS
        assert "bursty_overload" in SCENARIOS
        assert SCENARIOS["steady_decode"].ablate
        # Table-1 matrix: 3 models × 4 servers.
        matrix = [n for n in SCENARIOS if "/" in n]
        assert len(matrix) == 12
        assert not any(SCENARIOS[n].ablate for n in matrix)

    def test_bench_scale_validates(self):
        assert bench_scale("smoke") == "smoke"
        with pytest.raises(ConfigError):
            bench_scale("quick")

    def test_ablation_config_toggles_every_cache(self):
        off = ablation_config(False)
        assert not off.enable_plan_cache
        assert not off.enable_assembly_cache
        assert not off.enable_sim_memos
        on = ablation_config(True, division_factor=16)
        assert on.enable_plan_cache and on.division_factor == 16
