"""Golden-trace scenarios for the serving-session equivalence tests.

Each scenario runs one of the four servers with an *empty* serving
configuration (no faults, no overload, no observability) and fingerprints
the resulting kernel timeline.  The fingerprints in
``tests/golden/serving_traces.json`` were captured from the pre-chassis
servers; ``tests/test_session.py`` asserts the rebased servers reproduce
them bit-for-bit (the zero-cost convention).

Regenerate with ``PYTHONPATH=src python tests/serving_goldens.py`` — but
only from a revision whose timelines are known-good; the whole point of
the file is to pin behaviour across refactors.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "serving_traces.json")

#: (server, strategy) pairs the goldens cover.
SCENARIOS = [
    (server, strategy)
    for server in ("server", "lifecycle", "static", "continuous")
    for strategy in ("liger", "intra")
]


def reset_batch_ids() -> None:
    """Rebase the process-global batch-id counter for a reproducible run."""
    from repro.serving import request as request_mod

    request_mod._batch_ids = itertools.count()


def _model_node():
    from repro.hw import v100_nvlink_node
    from repro.models import OPT_30B

    return OPT_30B.scaled_layers(4), v100_nvlink_node(4)


def _make_scenario_strategy(strategy: str, model, node, cache_off: bool, liger_config=None):
    """Build the scenario strategy, optionally with every hot-path cache off.

    The off arm disables the plan cache, assembly cache, and profiler memos
    (liger config flags) — and, for strategies without a config, the
    profiler memos directly; the machine's slowdown memo is flipped by
    :func:`run_scenario` after the server builds it.  An explicit
    ``liger_config`` takes over entirely — the caller encodes its own
    cache/policy/replay combination there.
    """
    from repro.serving.api import make_strategy

    if liger_config is not None and strategy == "liger":
        return make_strategy(strategy, model, node, config=liger_config)
    if not cache_off:
        return make_strategy(strategy, model, node)
    if strategy == "liger":
        from repro.core import LigerConfig

        return make_strategy(
            strategy, model, node,
            config=LigerConfig(
                enable_plan_cache=False,
                enable_assembly_cache=False,
                enable_sim_memos=False,
            ),
        )
    from repro.profiling.profiler import OpProfiler

    return make_strategy(
        strategy, model, node, profiler=OpProfiler(node, memoize=False)
    )


def run_scenario(
    server: str, strategy: str, cache_off: bool = False, liger_config=None, **extra
):
    """Serve one golden workload; returns (result, trace).

    ``cache_off=True`` runs the same scenario with every hot-path cache
    disabled — the equivalence tests assert both arms fingerprint
    identically to the committed golden.  ``liger_config`` pins an
    explicit :class:`~repro.core.LigerConfig` instead of the cache_off
    presets (the timeline-replay equivalence matrix builds its own);
    ``config`` in ``**extra`` stays the *server's* ServingConfig.
    """
    reset_batch_ids()
    model, node = _model_node()
    strat = _make_scenario_strategy(strategy, model, node, cache_off, liger_config)

    def _run(srv, payload):
        if cache_off:
            srv.session.machine.slowdown_memo = False
        return srv.run(payload)

    if server == "server":
        from repro.serving.server import Server
        from repro.serving.workload import general_trace

        batches = general_trace(12, 40.0, 2, seed=0)
        srv = Server(
            model, node, strat, record_trace=True, check_memory=False, **extra
        )
        result = _run(srv, batches)
        return result, result.trace
    if server == "lifecycle":
        from repro.serving.lifecycle import LifecycleServer, chat_workload

        chats = chat_workload(6, 120.0, seed=0)
        srv = LifecycleServer(
            model, node, strat, prefill_batch=2, max_decode_batch=8,
            record_trace=True, check_memory=False, **extra,
        )
        result = _run(srv, chats)
        return result, srv.trace
    from repro.serving.generation import (
        ContinuousBatchingServer,
        StaticBatchingServer,
        generation_workload,
    )

    jobs = generation_workload(8, 200.0, seed=0)
    if server == "static":
        srv = StaticBatchingServer(
            model, node, strat, batch_size=4, record_trace=True,
            check_memory=False, **extra,
        )
    elif server == "continuous":
        srv = ContinuousBatchingServer(
            model, node, strat, max_batch=8, pipeline_depth=2,
            record_trace=True, check_memory=False, **extra,
        )
    else:
        raise ValueError(f"unknown scenario server {server!r}")
    result = _run(srv, jobs)
    return result, result.trace


def normalized_rows(trace):
    """Trace rows with the process-global batch-id counter rebased to 0."""
    base = min((r.batch_id for r in trace.rows if r.batch_id >= 0), default=0)

    def fix(name: str) -> str:
        return re.sub(
            r"_b(\d+)", lambda m: f"_b{int(m.group(1)) - base}", name
        )

    return [
        (
            r.gpu, r.stream, fix(r.name), r.kind.value,
            r.batch_id - base if r.batch_id >= 0 else r.batch_id,
            r.layer, r.op, repr(r.ready), repr(r.start), repr(r.end),
            repr(r.noload_duration),
        )
        for r in trace.rows
    ]


def fingerprint(trace) -> dict:
    """Bit-exact digest of a timeline plus human-debuggable aggregates."""
    rows = normalized_rows(trace)
    blob = json.dumps(rows, separators=(",", ":")).encode()
    return {
        "sha256": hashlib.sha256(blob).hexdigest(),
        "num_rows": len(rows),
        "last_end_us": repr(max((r.end for r in trace.rows), default=0.0)),
    }


def generate() -> dict:
    goldens = {}
    for server, strategy in SCENARIOS:
        _, trace = run_scenario(server, strategy)
        goldens[f"{server}/{strategy}"] = fingerprint(trace)
    return goldens


if __name__ == "__main__":
    goldens = generate()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(goldens)} fingerprint(s) to {GOLDEN_PATH}")
