"""Property tests for the trace interval math (union / intersection).

The overlap statistics behind Fig. 3's communication share and the
overlap-efficiency metric reduce to interval-set arithmetic; these tests
check it against a brute-force rasterisation oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.tracing import _intersection_length, _union_length

_RES = 0.25  # raster cell (intervals are drawn on a multiple-of-0.25 grid)


def rasterize(intervals, lo, hi):
    cells = set()
    n = int((hi - lo) / _RES) + 1
    for s, e in intervals:
        for i in range(n):
            t = lo + i * _RES
            if s <= t < e:
                cells.add(i)
    return cells


interval = st.tuples(
    st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200)
).map(lambda p: (min(p) * _RES, max(p) * _RES))


@given(st.lists(interval, min_size=0, max_size=12))
@settings(max_examples=80, deadline=None)
def test_union_matches_rasterized_oracle(intervals):
    intervals = sorted(intervals)
    expected = len(rasterize(intervals, 0.0, 50.0)) * _RES
    assert abs(_union_length(intervals) - expected) < 1e-6


@given(
    st.lists(interval, min_size=0, max_size=8),
    st.lists(interval, min_size=0, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_intersection_matches_rasterized_oracle(a, b):
    a, b = sorted(a), sorted(b)
    expected = len(rasterize(a, 0.0, 50.0) & rasterize(b, 0.0, 50.0)) * _RES
    assert abs(_intersection_length(a, b) - expected) < 1e-6


@given(st.lists(interval, min_size=0, max_size=10))
@settings(max_examples=50, deadline=None)
def test_self_intersection_equals_union(intervals):
    intervals = sorted(intervals)
    assert abs(
        _intersection_length(intervals, intervals) - _union_length(intervals)
    ) < 1e-6


@given(
    st.lists(interval, min_size=0, max_size=8),
    st.lists(interval, min_size=0, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_intersection_bounded_by_each_union(a, b):
    a, b = sorted(a), sorted(b)
    inter = _intersection_length(a, b)
    assert inter <= _union_length(a) + 1e-9
    assert inter <= _union_length(b) + 1e-9
