"""Tests for device-memory accounting (weights / activations / KV cache)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, OutOfMemoryError
from repro.hw import GpuSpec, NodeSpec, a100_pcie_node, v100_nvlink_node
from repro.hw.topology import nvlink_mesh
from repro.models import GLM_130B, OPT_30B
from repro.parallel import IntraOpStrategy
from repro.serving import Server
from repro.serving.workload import general_trace
from repro.sim.memory import DeviceMemory, NodeMemoryModel, activation_bytes
from repro.units import GB, GBps, TFLOPS


class TestDeviceMemory:
    def test_reserve_and_release(self):
        mem = DeviceMemory(GB(16))
        mem.reserve("weights", GB(15))
        assert mem.available == pytest.approx(GB(1))
        assert mem.utilization() == pytest.approx(15 / 16)
        freed = mem.release("weights")
        assert freed == GB(15)
        assert mem.used == 0

    def test_oom_raises(self):
        mem = DeviceMemory(GB(16))
        mem.reserve("weights", GB(15))
        with pytest.raises(OutOfMemoryError):
            mem.reserve("batch0", GB(2))

    def test_duplicate_tag_rejected(self):
        mem = DeviceMemory(GB(16))
        mem.reserve("a", 1.0)
        with pytest.raises(ConfigError):
            mem.reserve("a", 1.0)

    def test_release_unknown_tag_rejected(self):
        with pytest.raises(ConfigError):
            DeviceMemory(GB(1)).release("ghost")

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            DeviceMemory(0)


class TestActivationBytes:
    def test_scales_with_batch_and_seq(self):
        small = activation_bytes(OPT_30B, 2, 16, 4)
        big = activation_bytes(OPT_30B, 8, 128, 4)
        assert big > 10 * small

    def test_tp_shrinks_per_device_workspace(self):
        full = activation_bytes(OPT_30B, 2, 64, 1)
        quarter = activation_bytes(OPT_30B, 2, 64, 4)
        assert quarter < full

    def test_magnitude_sane(self):
        # batch 2 × seq 64 on OPT-30B / tp 4: tens of MB, not GB.
        b = activation_bytes(OPT_30B, 2, 64, 4)
        assert 1e6 < b < 5e8


class TestNodeMemoryModel:
    def test_weights_reserved_at_init(self):
        mm = NodeMemoryModel(OPT_30B, v100_nvlink_node(4))
        for dev in mm.devices:
            assert dev.holds("weights")
            assert dev.used == pytest.approx(GB(15))

    def test_batch_cycle(self):
        mm = NodeMemoryModel(OPT_30B, a100_pcie_node(4))
        base = mm.devices[0].used
        mm.reserve_batch(7, batch=2, seq=64)
        assert mm.devices[0].used > base
        mm.release_batch(7)
        assert mm.devices[0].used == pytest.approx(base)

    def test_kv_cache_added_for_decode(self):
        mm = NodeMemoryModel(GLM_130B, a100_pcie_node(4))
        mm.reserve_batch(1, batch=32, seq=1, context=16)
        with_kv = mm.devices[0].used
        mm.release_batch(1)
        mm.reserve_batch(2, batch=32, seq=1)
        without_kv = mm.devices[0].used
        assert with_kv > without_kv

    def test_peak_utilization_tracked(self):
        mm = NodeMemoryModel(OPT_30B, a100_pcie_node(4))
        mm.reserve_batch(1, batch=8, seq=128)
        peak_with = mm.peak_utilization
        mm.release_batch(1)
        assert mm.peak_utilization == peak_with  # peak is sticky

    def test_oom_rolls_back_partial_reservations(self):
        tiny_gpu = GpuSpec(
            name="tiny", fp16_flops=TFLOPS(10), memory_bandwidth=GBps(100),
            memory_capacity=GB(0.2), num_sms=10,
        )
        node = NodeSpec(name="tiny-node", gpu=tiny_gpu, topology=nvlink_mesh(2))
        model = OPT_30B.scaled_layers(1)
        small = type(model)(
            name="mini", num_layers=1, num_heads=8, hidden_size=1024,
            weight_bytes=GB(0.1),
        )
        mm = NodeMemoryModel(small, node)
        with pytest.raises(OutOfMemoryError):
            mm.reserve_batch(1, batch=256, seq=2048)
        # Nothing should remain reserved for the failed batch.
        assert not any(d.holds("batch1") for d in mm.devices)


class TestMemoryShare:
    def test_share_scales_reservation(self):
        full = NodeMemoryModel(OPT_30B, a100_pcie_node(4))
        quarter = NodeMemoryModel(OPT_30B, a100_pcie_node(4))
        full.reserve_batch(1, batch=32, seq=1, context=16)
        quarter.reserve_batch(1, batch=32, seq=1, context=16, share=0.25)
        weights = OPT_30B.weight_bytes_per_device(4)
        full_extra = full.devices[0].used - weights
        quarter_extra = quarter.devices[0].used - weights
        assert quarter_extra == pytest.approx(full_extra / 4)

    def test_invalid_share_rejected(self):
        mm = NodeMemoryModel(OPT_30B, a100_pcie_node(4))
        with pytest.raises(ConfigError):
            mm.reserve_batch(1, batch=2, seq=8, share=0.0)
        with pytest.raises(ConfigError):
            mm.reserve_batch(1, batch=2, seq=8, share=1.5)

    def test_pipeline_strategy_uses_stage_share(self):
        from repro.parallel import InterOpStrategy, IntraOpStrategy

        model = OPT_30B.scaled_layers(8)
        node = v100_nvlink_node(4)
        assert IntraOpStrategy(model, node).memory_share == 1.0
        assert InterOpStrategy(model, node).memory_share == pytest.approx(0.25)


class TestStrategyIntegration:
    def test_serving_tracks_and_frees_memory(self):
        model = OPT_30B.scaled_layers(6)
        node = v100_nvlink_node(4)
        strat = IntraOpStrategy(model, node)
        server = Server(model, node, strat, check_memory=False)
        server.run(general_trace(8, 20.0, 2, seed=0))
        assert strat.memory is not None
        # All batch workspaces were released; only weights remain.
        for dev in strat.memory.devices:
            assert dev.used == pytest.approx(
                model.weight_bytes_per_device(4)
            )
        assert strat.memory.peak_used > model.weight_bytes_per_device(4)

    def test_memory_tracking_optional(self):
        model = OPT_30B.scaled_layers(6)
        node = v100_nvlink_node(4)
        strat = IntraOpStrategy(model, node, track_memory=False)
        server = Server(model, node, strat, check_memory=False)
        server.run(general_trace(4, 20.0, 2, seed=0))
        assert strat.memory is None
