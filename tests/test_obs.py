"""Tests for repro.obs: event bus, registry, spans, and the exporters."""

from __future__ import annotations

import json
import logging
import os
import re

import pytest

from repro.errors import ConfigError
from repro.hw import v100_nvlink_node
from repro.models.specs import OPT_30B
from repro.obs import (
    BatchCompleted,
    BatchDispatched,
    BreakerClosed,
    BreakerOpened,
    EventBus,
    Observability,
    RequestsAdmitted,
    RequestsShed,
    merged_chrome_trace,
    validate_merged_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.api import serve
from repro.serving.overload import OverloadConfig
from repro.sim.kernel import KernelKind
from repro.sim.tracing import Trace, TraceRow

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_publish_retains_in_order(self):
        bus = EventBus()
        bus.publish(BreakerOpened(time_us=1.0, reason="a"))
        bus.publish(BreakerClosed(time_us=2.0, reason="b"))
        assert [e.kind for e in bus.events] == ["breaker-open", "breaker-closed"]
        assert len(bus) == 2
        assert [e.time_us for e in bus.of_kind("breaker-open")] == [1.0]

    def test_typed_subscription_filters(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, types=[BreakerOpened])
        bus.publish(BreakerClosed(time_us=0.0, reason=""))
        bus.publish(BreakerOpened(time_us=1.0, reason=""))
        assert [e.kind for e in seen] == ["breaker-open"]

    def test_no_retain(self):
        bus = EventBus(retain=False)
        seen = []
        bus.subscribe(seen.append)
        bus.publish(BreakerOpened(time_us=0.0, reason=""))
        assert bus.events == [] and len(seen) == 1

    def test_to_dict_is_flat_json(self):
        ev = RequestsShed(
            time_us=5.0, batch_id=3, rids=(1, 2), where="breaker", slo_tracked=1
        )
        d = ev.to_dict()
        assert d["kind"] == "shed" and d["rids"] == [1, 2]
        json.dumps(d)  # must be JSON-serializable


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class TestMetricPrimitives:
    def test_counter_labels_and_total(self):
        c = Counter("x_total", "help")
        c.inc(2, state="a")
        c.inc(3, state="b")
        c.inc(1, state="a")
        assert c.value(state="a") == 3
        assert c.total() == 6
        exposed = "\n".join(c.expose())
        assert '# TYPE x_total counter' in exposed
        assert 'x_total{state="a"} 3' in exposed

    def test_counter_rejects_decrease(self):
        with pytest.raises(ConfigError):
            Counter("x", "h").inc(-1)

    def test_gauge_callback(self):
        box = {"v": 1.0}
        g = Gauge("g", "h", fn=lambda: box["v"])
        assert g.value() == 1.0
        box["v"] = 7.0
        assert g.value() == 7.0

    def test_histogram_cumulative_buckets(self):
        h = Histogram("lat_ms", "h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        text = "\n".join(h.expose())
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="100"} 3' in text
        assert 'lat_ms_bucket{le="+Inf"} 4' in text
        assert "lat_ms_count 4" in text
        assert h.sum == pytest.approx(555.5)

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ConfigError):
            Histogram("h", "h", buckets=(10.0, 1.0))

    def test_registry_rejects_type_collision(self):
        reg = MetricsRegistry()
        reg.counter("name", "h")
        with pytest.raises(ConfigError):
            reg.gauge("name", "h")

    def test_label_values_are_escaped(self):
        c = Counter("x_total", "help")
        c.inc(1, path='C:\\tmp\n"quoted"')
        exposed = "\n".join(c.expose())
        assert 'x_total{path="C:\\\\tmp\\n\\"quoted\\""} 1' in exposed
        # The exposition must stay one record per line.
        assert "\n" not in exposed.split("x_total{", 1)[1]


# ----------------------------------------------------------------------
# The golden hand-built scenario (pure events, no simulation)
# ----------------------------------------------------------------------
def _golden_scenario() -> Observability:
    """A fixed event sequence covering all three exporter event classes."""
    obs = Observability()

    class _Window:
        start, end = 400.0, 900.0

        @staticmethod
        def describe() -> str:
            return "straggler(gpu=1, x4)[400..900us]"

    class _Plan:
        faults = [_Window]

    obs.note_fault_plan(_Plan)
    bus = obs.bus
    bus.publish(
        RequestsAdmitted(
            time_us=0.0, batch_id=0, rids=(0, 1), arrivals_us=(0.0, 10.0)
        )
    )
    bus.publish(
        BatchDispatched(
            time_us=100.0,
            batch_id=0,
            rids=(0, 1),
            phase="prefill",
            queue_waits_us=(100.0, 90.0),
        )
    )
    bus.publish(
        RequestsAdmitted(time_us=200.0, batch_id=1, rids=(2,), arrivals_us=(200.0,))
    )
    bus.publish(
        RequestsShed(
            time_us=300.0, batch_id=1, rids=(2,), where="admission", slo_tracked=1
        )
    )
    bus.publish(BreakerOpened(time_us=400.0, reason="queue depth 9 > 6"))
    bus.publish(
        BatchCompleted(
            time_us=5100.0,
            batch_id=0,
            rids=(0, 1),
            completed_rids=(0, 1),
            latencies_us=(5100.0, 5090.0),
            slo_tracked=1,
            slo_met=1,
            deadline_misses=0,
        )
    )
    bus.publish(BreakerClosed(time_us=5200.0, reason="queue drained to 1 <= 2"))
    obs.registry.sample_gauges(5200.0)
    return obs


class TestGoldenExports:
    def test_prometheus_matches_golden(self):
        got = _golden_scenario().to_prometheus()
        with open(os.path.join(GOLDEN_DIR, "scenario_metrics.prom")) as fh:
            assert got == fh.read()

    def test_prometheus_histogram_conformance(self):
        """Every histogram family: monotone buckets, +Inf == _count, _sum."""
        text = _golden_scenario().to_prometheus()
        families = re.findall(r"# TYPE (\S+) histogram", text)
        assert "repro_request_latency_ms" in families
        for family in families:
            buckets = [
                (m.group(1), float(m.group(2)))
                for m in re.finditer(
                    rf'^{family}_bucket{{le="([^"]+)"}} (\S+)$', text, re.M
                )
            ]
            assert buckets, f"{family}: no buckets exposed"
            assert buckets[-1][0] == "+Inf", f"{family}: +Inf bucket missing"
            counts = [v for _, v in buckets]
            assert counts == sorted(counts), f"{family}: non-monotone buckets"
            count_m = re.search(rf"^{family}_count (\S+)$", text, re.M)
            assert count_m, f"{family}: _count missing"
            assert buckets[-1][1] == float(count_m.group(1))
            assert re.search(rf"^{family}_sum (\S+)$", text, re.M), (
                f"{family}: _sum missing"
            )

    def test_merged_trace_matches_golden(self):
        got = json.dumps(_golden_scenario().merged_chrome_trace(), indent=2)
        with open(os.path.join(GOLDEN_DIR, "scenario_trace.json")) as fh:
            assert got == fh.read().rstrip("\n")

    def test_merged_trace_validates(self):
        obj = _golden_scenario().merged_chrome_trace()
        counts = validate_merged_trace(obj)
        # queued+prefill for rids 0/1, queued for shed rid 2 -> 5 segments;
        # shed + two breaker transitions -> 3 instants; one fault window.
        assert counts == {"kernel": 0, "span": 5, "instant": 3, "fault": 1}
        # Accepts the serialized form too.
        assert validate_merged_trace(json.dumps(obj)) == counts

    def test_validate_rejects_malformed(self):
        with pytest.raises(ConfigError):
            validate_merged_trace({"no": "traceEvents"})
        with pytest.raises(ConfigError):
            validate_merged_trace({"traceEvents": [{"name": "x", "ph": "i"}]})


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_scenario_spans(self):
        obs = _golden_scenario()
        spans = {s.rid: s for s in obs.spans()}
        assert set(spans) == {0, 1, 2}
        s0 = spans[0]
        assert s0.state == "completed"
        assert s0.admitted_us == 0.0
        assert [seg.name for seg in s0.segments] == ["queued", "prefill"]
        assert s0.queue_wait_us == pytest.approx(100.0)
        assert s0.latency_us == pytest.approx(5100.0)
        # Member 1's queued segment starts at its own arrival, not batch 0's.
        assert spans[1].segments[0].start_us == pytest.approx(10.0)
        # The shed request never dispatched: one queued segment, shed state.
        s2 = spans[2]
        assert s2.state == "shed" and s2.latency_us is None
        assert [seg.name for seg in s2.segments] == ["queued"]
        assert s2.end_us == pytest.approx(300.0)

    def test_registry_derives_scenario_counters(self):
        reg = _golden_scenario().registry
        c = reg._counters
        assert c["repro_requests_admitted_total"].total() == 3
        assert c["repro_requests_terminal_total"].value(state="completed") == 2
        assert c["repro_requests_terminal_total"].value(state="shed") == 1
        assert c["repro_requests_shed_total"].value(where="admission") == 1
        assert c["repro_breaker_transitions_total"].value(state="open") == 1
        assert c["repro_breaker_transitions_total"].value(state="closed") == 1
        hist = reg._histograms["repro_request_latency_ms"]
        assert hist.count == 2 and hist.sum == pytest.approx(10.19)


# ----------------------------------------------------------------------
# End-to-end: served runs
# ----------------------------------------------------------------------
def _serve(observability=None, overload=None, record_trace=False):
    return serve(
        MODEL,
        NODE,
        strategy="liger",
        arrival_rate=400.0,
        num_requests=24,
        batch_size=2,
        seed=0,
        record_trace=record_trace,
        overload=overload,
        observability=observability,
    )


def _serve_overloaded(observability=None, record_trace=False):
    """Decode-heavy traffic at ~2x the sustainable rate: really sheds."""
    cfg = OverloadConfig(
        max_pending_requests=32,
        policy="shed-oldest",
        default_deadline_us=100_000.0,
    )
    return serve(
        MODEL,
        NODE,
        strategy="intra",
        workload="generative",
        arrival_rate=4000.0,
        num_requests=512,
        batch_size=8,
        context_len=256,
        seed=0,
        check_memory=False,
        record_trace=record_trace,
        overload=cfg,
        observability=observability,
    )


def _normalized_rows(trace):
    """Trace rows with the process-global batch-id counter rebased to 0."""
    base = min(r.batch_id for r in trace.rows)
    fix = lambda name: re.sub(
        r"_b(\d+)", lambda m: f"_b{int(m.group(1)) - base}", name
    )
    return [
        (
            r.gpu, r.stream, fix(r.name), r.kind, r.batch_id - base,
            r.layer, r.op, r.ready, r.start, r.end, r.noload_duration,
        )
        for r in trace.rows
    ]


class TestServedRuns:
    def test_disabled_observability_is_bit_identical(self):
        plain = _serve(record_trace=True)
        observed = _serve(observability=Observability(), record_trace=True)
        key = lambda r: r.rid
        assert [
            (r.rid, r.completion) for r in sorted(plain.metrics.completed, key=key)
        ] == [
            (r.rid, r.completion)
            for r in sorted(observed.metrics.completed, key=key)
        ]
        # Batch ids come from a process-global counter, so rebase before
        # comparing: every kernel must land at the same instant either way.
        assert _normalized_rows(plain.trace) == _normalized_rows(observed.trace)

    def test_registry_agrees_with_serving_metrics(self):
        obs = Observability()
        result = _serve_overloaded(observability=obs)
        m = result.metrics
        c = obs.registry._counters
        assert c["repro_requests_terminal_total"].value(state="completed") == (
            m.num_completed
        )
        assert c["repro_requests_terminal_total"].value(state="shed") == (
            m.shed_requests
        )
        assert c["repro_requests_terminal_total"].value(state="timed_out") == (
            m.timed_out_requests
        )
        assert c["repro_deadline_misses_total"].total() == m.deadline_misses
        assert c["repro_slo_tracked_total"].total() == m.slo_tracked
        assert c["repro_slo_met_total"].total() == m.slo_met
        assert c["repro_batches_preempted_total"].total() == m.preemptions
        assert c["repro_retries_total"].total() == m.retries
        # The overloaded run must actually have dropped something, or this
        # test is vacuous.
        assert m.shed_requests + m.timed_out_requests > 0
        hist = obs.registry._histograms["repro_request_latency_ms"]
        assert hist.count == m.num_completed

    def test_spans_cover_every_terminal_request(self):
        obs = Observability()
        result = _serve_overloaded(observability=obs)
        states = {"completed": 0, "shed": 0, "timed_out": 0}
        for span in obs.spans():
            assert span.state in states
            states[span.state] += 1
        m = result.metrics
        assert states["completed"] == m.num_completed
        assert states["shed"] == m.shed_requests
        assert states["timed_out"] == m.timed_out_requests

    def test_heartbeat_samples_gauges(self):
        obs = Observability(sample_period_us=5_000.0)
        cfg = OverloadConfig(max_pending_requests=32)
        _serve(observability=obs, overload=cfg)
        samples = obs.registry.samples
        assert len(samples) >= 2
        times = [s["time_us"] for s in samples]
        assert times == sorted(times)
        assert all("repro_pending_queue_requests" in s for s in samples)

    def test_merged_trace_export_roundtrip(self, tmp_path):
        obs = Observability()
        result = _serve_overloaded(observability=obs, record_trace=True)
        path = tmp_path / "merged.json"
        counts = obs.save_merged_trace(str(path), trace=result.trace)
        assert counts["kernel"] > 0
        assert counts["span"] > 0
        assert counts["instant"] > 0  # sheds/timeouts under this pressure
        reread = json.loads(path.read_text())
        assert validate_merged_trace(reread) == counts
        ts = [row["ts"] for row in reread["traceEvents"]]
        assert ts == sorted(ts)

    def test_snapshot_is_json(self, tmp_path):
        obs = Observability()
        _serve(observability=obs)
        path = tmp_path / "snap.json"
        obs.save_snapshot(str(path))
        snap = json.loads(path.read_text())
        assert snap["counters"]["repro_requests_admitted_total"] == {"": 24.0}
        assert len(snap["spans"]) == 24
        assert snap["num_events"] == len(obs.events)


# ----------------------------------------------------------------------
# Trace edge cases (empty / single kernel) and its Chrome export
# ----------------------------------------------------------------------
class TestTraceEdgeCases:
    def _row(self, *, kind=KernelKind.COMPUTE, ready=0.0, start=10.0, end=25.0):
        return TraceRow(
            gpu=0, stream="s0", name="gemm_b0@g0", kind=kind, batch_id=0,
            layer=3, op="gemm", ready=ready, start=start, end=end,
            noload_duration=end - start,
        )

    def test_empty_trace_aggregates_are_zero(self):
        t = Trace()
        assert t.makespan() == 0.0
        assert t.busy_time(0) == 0.0
        assert t.comm_fraction(0) == 0.0
        assert t.overlap_time(0) == 0.0
        assert t.overlap_efficiency(0) == 0.0
        assert t.mean_queueing_delay() == 0.0
        assert t.kernel_durations() == {}

    def test_empty_trace_chrome_export(self):
        t = Trace()
        assert t.chrome_events() == []
        assert json.loads(t.to_chrome_trace()) == {"traceEvents": []}

    def test_single_kernel_aggregates(self):
        t = Trace()
        t.rows.append(self._row(ready=0.0, start=10.0, end=25.0))
        assert t.makespan() == 15.0
        assert t.busy_time(0) == 15.0
        assert t.summed_time(0) == 15.0
        assert t.comm_fraction(0) == 0.0  # compute only
        assert t.overlap_time(0) == 0.0  # nothing to overlap with
        assert t.overlap_efficiency(0) == 0.0
        assert t.mean_queueing_delay() == 10.0

    def test_single_comm_kernel_comm_fraction_is_one(self):
        t = Trace()
        t.rows.append(self._row(kind=KernelKind.COMM))
        assert t.comm_fraction(0) == 1.0
        # All-comm trace: nothing hides it, efficiency stays zero.
        assert t.overlap_efficiency(0) == 0.0

    def test_single_kernel_chrome_event_shape(self):
        t = Trace()
        t.rows.append(self._row(ready=0.0, start=10.0, end=25.0))
        (event,) = t.chrome_events()
        assert event["ph"] == "X"
        assert event["ts"] == 10.0 and event["dur"] == 15.0
        assert event["pid"] == "gpu0" and event["tid"] == "s0"
        assert event["args"]["queueing_delay_us"] == 10.0
        assert event["args"]["slowdown"] == 1.0
        assert json.loads(t.to_chrome_trace())["traceEvents"] == [event]
        # And the merged exporter accepts a kernels-only trace.
        assert validate_merged_trace(merged_chrome_trace(trace=t)) == {
            "kernel": 1, "span": 0, "instant": 0, "fault": 0,
        }


# ----------------------------------------------------------------------
# Logging hierarchy
# ----------------------------------------------------------------------
class TestLogging:
    def test_root_logger_is_silenced_by_nullhandler(self):
        import repro  # noqa: F401  (import installs the handler)

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_downgrade_logs_warning_with_sim_time(self, caplog):
        from repro.faults.plan import FaultPlan, GpuStraggler

        plan = FaultPlan(
            [GpuStraggler(gpu=1, factor=6.0, start=0.0, end=150_000.0)]
        )
        with caplog.at_level(logging.WARNING, logger="repro"):
            result = serve(
                MODEL,
                NODE,
                strategy="liger",
                arrival_rate=150.0,
                num_requests=16,
                batch_size=2,
                seed=0,
                fault_plan=plan,
            )
        assert result.resilience.downgrades >= 1
        records = [
            r for r in caplog.records if r.name == "repro.faults.resilience"
        ]
        assert any(
            r.levelno == logging.WARNING
            and "downgraded" in r.getMessage()
            and "t=" in r.getMessage()
            for r in records
        )


# ----------------------------------------------------------------------
# Observability config validation
# ----------------------------------------------------------------------
class TestObservabilityConfig:
    def test_rejects_nonpositive_sample_period(self):
        with pytest.raises(ConfigError):
            Observability(sample_period_us=0.0)

    def test_arm_is_idempotent(self):
        from repro.sim.engine import Engine

        obs = Observability()
        engine = Engine()
        obs.arm(engine)
        obs.arm(engine)
        assert len(obs.registry.samples) == 1  # sampled once on first arm

    def test_fault_window_export_rejects_empty_window(self):
        from repro.obs.export import fault_window_chrome_events

        with pytest.raises(ConfigError):
            fault_window_chrome_events([("w", 5.0, 5.0)])
