"""Property tests for the engine's O(1) liveness bookkeeping.

The engine tracks ``_live`` (entries on the heap whose handle can still
fire) and ``_tombstones`` (cancelled entries not yet swallowed by a pop)
incrementally, because ``pending`` is consulted on hot paths — heartbeat
liveness, the timeline fast path's batched splices — where an O(heap)
recount would be felt.  Incremental counters are exactly the kind of
state that drifts under adversarial interleavings of schedule / cancel /
step / compaction, so these tests drive randomized interleavings and
compare against a brute-force recount of the real heap after every
operation.

The second property pins compaction's observable contract: filtering
tombstones and re-heapifying must never change the order in which the
surviving events fire.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine_mod
from repro.sim.engine import Engine

# An op is one of:
#   ("schedule", delay, priority)      — schedule a new event
#   ("cancel", index)                  — cancel the index-th handle (mod len)
#   ("step",)                          — pop-and-run one event
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=0, max_value=9),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("step")),
    ),
    min_size=1,
    max_size=120,
)


def _recount(eng: Engine):
    """Brute-force ground truth straight off the heap entries."""
    live = sum(1 for e in eng._heap if not e[3].cancelled)
    dead = len(eng._heap) - live
    return live, dead


@given(_OPS)
@settings(max_examples=120, deadline=None)
def test_live_and_tombstone_counters_never_desync(ops):
    eng = Engine()
    handles = []
    for op in ops:
        if op[0] == "schedule":
            handles.append(eng.schedule(op[1], lambda: None, priority=op[2]))
        elif op[0] == "cancel" and handles:
            handles[op[1] % len(handles)].cancel()
        elif op[0] == "step":
            eng.step()
        live, dead = _recount(eng)
        assert eng._live == live, (op, eng._live, live)
        assert eng._tombstones == dead, (op, eng._tombstones, dead)
        assert eng.pending == live


@given(_OPS)
@settings(max_examples=100, deadline=None)
def test_callbacks_scheduling_and_cancelling_keep_counters_exact(ops):
    """Same invariant when the mutations happen *inside* callbacks."""
    eng = Engine()
    handles = []

    def make_cb(op):
        def cb():
            if op[0] == "schedule":
                handles.append(
                    eng.schedule(op[1], lambda: None, priority=op[2])
                )
            elif op[0] == "cancel" and handles:
                handles[op[1] % len(handles)].cancel()

        return cb

    for i, op in enumerate(ops):
        handles.append(eng.schedule(float(i % 5), make_cb(op)))
    eng.run()
    live, dead = _recount(eng)
    assert eng._live == live == 0
    assert eng._tombstones == dead


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0),
            st.integers(min_value=0, max_value=3),
            st.booleans(),
        ),
        min_size=1,
        max_size=150,
    )
)
@settings(max_examples=100, deadline=None)
def test_compaction_preserves_pop_order(entries):
    """Aggressive compaction must not reorder the surviving events.

    One engine runs with compaction forced after every cancel (threshold
    0), the model engine with compaction effectively off; both must fire
    the surviving events in the identical sequence.  The threshold is a
    module global read at cancel time, so each arm runs fully under its
    own setting.
    """

    def _run_with_threshold(threshold):
        saved = engine_mod._COMPACT_MIN_TOMBSTONES
        engine_mod._COMPACT_MIN_TOMBSTONES = threshold
        try:
            eng = Engine()
            fired = []
            handles = []
            for i, (delay, priority, cancel) in enumerate(entries):
                handles.append(
                    eng.schedule(
                        delay, lambda i=i: fired.append(i), priority=priority
                    )
                )
            for h, (_, _, cancel) in zip(handles, entries):
                if cancel:
                    h.cancel()
            eng.run()
            return fired
        finally:
            engine_mod._COMPACT_MIN_TOMBSTONES = saved

    assert _run_with_threshold(0) == _run_with_threshold(1 << 60)


def test_forced_compaction_drops_only_tombstones():
    """Direct check: compaction removes exactly the cancelled entries."""
    eng = Engine()
    handles = [eng.schedule(float(i), lambda: None) for i in range(100)]
    for h in handles[::2]:
        h.cancel()
    # A burst of schedule+cancel pairs pushes tombstones past the majority
    # condition, forcing at least one compaction pass.
    for _ in range(200):
        eng.schedule(1.0, lambda: None).cancel()
    live, dead = _recount(eng)
    assert eng._live == live == 50
    assert eng._tombstones == dead
    assert dead < 200  # compaction actually ran and swept tombstones
    # The compacted heap still pops in correct order.
    assert eng._heap[0] == min(eng._heap)
