"""Tests for post-run serving analysis."""

from __future__ import annotations

import pytest

from repro.core import LigerConfig
from repro.errors import ConfigError
from repro.experiments.analysis import (
    comm_lag_events,
    latency_breakdown,
    serving_report,
    utilization_report,
)
from repro.hw import v100_nvlink_node
from repro.models import OPT_30B
from repro.parallel import InterleavedStrategy, IntraOpStrategy
from repro.profiling.contention_profiler import ContentionFactors
from repro.serving import Server
from repro.serving.workload import general_trace

MODEL = OPT_30B.scaled_layers(6)
NODE = v100_nvlink_node(4)
FACTORS = ContentionFactors(compute=1.05, comm=1.10)


@pytest.fixture(scope="module")
def liger_result():
    strat = InterleavedStrategy(MODEL, NODE, config=LigerConfig(contention_factors=FACTORS))
    server = Server(MODEL, NODE, strat, record_trace=True, check_memory=False)
    return server.run(general_trace(24, 300.0, 2, seed=9))


@pytest.fixture(scope="module")
def intra_result():
    strat = IntraOpStrategy(MODEL, NODE)
    server = Server(MODEL, NODE, strat, record_trace=True, check_memory=False)
    return server.run(general_trace(24, 300.0, 2, seed=9))


class TestUtilization:
    def test_per_gpu_rows(self, liger_result):
        util = utilization_report(liger_result, 4)
        assert len(util) == 4
        for u in util:
            assert 0 < u.busy_fraction <= 1.0
            assert 0 <= u.comm_fraction <= 1.0
            assert 0 <= u.comm_hidden_fraction <= 1.0

    def test_liger_hides_more_comm_than_intra(self, liger_result, intra_result):
        liger_hidden = utilization_report(liger_result, 4)[0].comm_hidden_fraction
        intra_hidden = utilization_report(intra_result, 4)[0].comm_hidden_fraction
        assert liger_hidden > intra_hidden + 0.2

    def test_requires_trace(self):
        strat = IntraOpStrategy(MODEL, NODE)
        server = Server(MODEL, NODE, strat, record_trace=False, check_memory=False)
        result = server.run(general_trace(4, 50.0, 2, seed=9))
        with pytest.raises(ConfigError):
            utilization_report(result, 4)


class TestBreakdown:
    def test_pending_plus_execution_equals_total(self, liger_result):
        rows = latency_breakdown(liger_result)
        assert rows
        for b in rows:
            assert b.pending >= -1e-6
            assert b.execution > 0
            assert b.total == pytest.approx(b.pending + b.execution)

    def test_overloaded_run_accumulates_pending(self, intra_result):
        rows = latency_breakdown(intra_result)
        # At 300 req/s this little node queues: later batches pend longer.
        assert rows[-1].pending > rows[0].pending

    def test_batch_ids_match_requests(self, liger_result):
        ids_in_trace = {b.batch_id for b in latency_breakdown(liger_result)}
        ids_in_metrics = {r.batch_id for r in liger_result.metrics.completed}
        assert ids_in_trace == ids_in_metrics


class TestLagAndReport:
    def test_comm_lag_events_bounded(self, liger_result):
        events = comm_lag_events(liger_result, threshold_us=20.0)
        comm_total = sum(
            1 for r in liger_result.trace.rows if r.kind.value == "comm"
        )
        # Hybrid sync keeps lag rare: well under half of comm kernels.
        assert len(events) < comm_total / 2

    def test_serving_report_renders(self, liger_result):
        text = serving_report(liger_result, 4)
        assert "busy(%)" in text
        assert "pending" in text
        assert "start lag" in text
