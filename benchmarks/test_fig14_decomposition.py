"""Fig. 14: decomposition-factor sensitivity (§4.6).

Paper: larger division factors give better latency and throughput because
the scheduler matches subset durations more precisely; the benefit
diminishes because tiny kernels stop saturating the GPU.  (A factor-``2d``
decomposition can express every factor-``d`` split, so quality is monotone.)
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import fig14


def test_fig14_division_factor(benchmark, scale):
    result = run_figure(benchmark, fig14, scale)
    s = result.summary
    # Larger factor helps: 8 is no worse than 2 (with small tolerance).
    assert s["lat_d8"] <= s["lat_d2"] * 1.01
    # Diminishing returns: 8 → 16 changes far less than 2 → 8.
    gain_2_to_8 = s["lat_d2"] - s["lat_d8"]
    gain_8_to_16 = abs(s["lat_d8"] - s["lat_d16"])
    assert gain_8_to_16 <= max(gain_2_to_8, 0.3)


def test_fig14_fine_division_profiles_monotone(benchmark):
    """The offline division table: piece duration grows with piece size,
    and the per-piece overhead makes the sum exceed the whole kernel."""
    from repro.core import DecompositionPlanner
    from repro.core.assembly import KernelFunc
    from repro.hw import v100_nvlink_node
    from repro.models.ops import gemm_op
    from repro.profiling import OpProfiler
    from repro.sim.kernel import KernelKind

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    prof = OpProfiler(v100_nvlink_node(4))
    op = gemm_op("mlp", 0, 144, 7168, 28672)
    func = KernelFunc(
        op=op, duration=prof.duration(op), kind=KernelKind.COMPUTE,
        batch_id=0, batch_size=2, seq_len=72, decomposable=True,
    )
    for d in (2, 4, 8, 16):
        table = DecompositionPlanner(prof, d).profile_divisions(func)
        durs = [t for _, t in table]
        assert durs == sorted(durs)
        # 1/d piece is cheaper than the whole kernel but more than 1/d of it.
        assert durs[0] < func.duration
        assert durs[0] > func.duration / d * 0.999
