"""Component ablations (ours, motivated by §3.4–§3.6).

Each Liger mechanism is disabled in turn at a saturating arrival rate:

* no-decomposition (§3.6) — coarse kernels leave overlap windows unfilled;
* no-anticipation (§3.5) — secondary subsets sized with no-load durations
  may outlive the primary window (graceful in the simulator's mild
  contention regime, so the asserted band is wide);
* full-nccl-channels (§3.5 mitigation off) — fat collectives rarely fit
  beside a GEMM under the left-over policy, killing most overlap;
* cpu-gpu-sync (§3.4) — exposed multi-GPU launch gaps every round.
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import ablations


def test_ablations(benchmark, scale):
    result = run_figure(benchmark, ablations, scale)
    s = result.summary

    # Decomposition earns real latency (the Fig. 14 mechanism).
    assert s["no-decomposition:lat_vs_default"] > 1.03
    # The NCCL footprint mitigation is load-bearing for overlap.
    assert s["full-nccl-channels:lat_vs_default"] > 1.05
    # CPU-GPU sync pays the exposed launch gap (the Fig. 13 mechanism).
    assert s["cpu-gpu-sync:lat_vs_default"] > 1.03
    # Anticipation is a safety property; its latency cost/benefit is small.
    assert 0.9 <= s["no-anticipation:lat_vs_default"] <= 1.2
    # Best-fit window packing (extension) is at most a minor win over the
    # paper's first-fit: Algorithm 1's simple policy is already sufficient
    # once runtime decomposition can trim kernels to the residual window.
    assert 0.85 <= s["best-fit-packing:lat_vs_default"] <= 1.1
