"""Extension: Orca-style continuous batching vs static batching.

The paper evaluates single decode iterations (§4.3) and cites
iteration-level scheduling (Orca) as orthogonal related work.  This bench
composes both: multi-token generation jobs with varied output lengths are
served under static and continuous batching, each driven by Intra-Op and by
Liger.  Asserted shapes: continuous batching cuts latency (no padding to the
longest sequence, no full-batch release), static batching wastes a
measurable token budget on padding, and Liger improves latency under both
disciplines — interleaved parallelism is orthogonal to the batching policy.
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import continuous_batching


def test_continuous_batching(benchmark, scale):
    result = run_figure(benchmark, continuous_batching, scale)
    s = result.summary
    # Continuous batching beats static under both strategies.
    assert s["continuous_vs_static_intra"] < 1.0
    assert s["continuous_vs_static_liger"] < 1.0
    # Liger composes with continuous batching.
    assert s["liger_vs_intra_continuous"] < 1.0
    # Static padding burns real tokens (uniform 4–16 → ~1.3–1.7×).
    assert s["static_padding_overhead_tokens"] > 1.15
