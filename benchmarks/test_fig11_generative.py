"""Fig. 11: generative-task (incremental sampling) serving (§4.3).

Paper shapes: Liger still improves both latency and throughput (up to
1.08–1.29× throughput vs Intra-Op), but the effect is weaker than on
general tasks because decode steps have low computational intensity —
less communication time to hide.
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import fig10, fig11


def test_fig11_generative_serving(benchmark, scale):
    result = run_figure(benchmark, fig11, scale)
    s = result.summary
    # Liger still wins, but modestly (paper: 1.08–1.29×).
    assert 1.0 <= s["mean_thr_gain_vs_intra"] <= 1.5
    # Latency still beats the pipelines pre-saturation.
    assert s["mean_lat_reduction_vs_inter"] > 0.0


def test_fig11_weaker_than_general(benchmark, scale):
    """The paper's comparison across §4.2/§4.3: generative gains < general
    gains on the same panels."""
    gen = benchmark.pedantic(lambda: fig11(scale=scale), rounds=1, iterations=1).summary["mean_thr_gain_vs_intra"]
    general = fig10(scale=scale).summary["mean_thr_gain_vs_intra"]
    assert gen <= general + 0.05
