"""Fig. 13: the benefit of hybrid synchronization (§4.5).

Paper: Liger with only CPU-GPU synchronization shows an obvious drop in
both latency and throughput versus the hybrid approach, because the exposed
multi-GPU launch gap exceeds 20 µs per round (vs ~5 µs for a null kernel on
one GPU).  We additionally check pure inter-stream sync (the §3.4 lag
failure mode the hybrid design replaces).
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import fig13


def test_fig13_hybrid_vs_cpu_gpu(benchmark, scale):
    result = run_figure(benchmark, fig13, scale)
    s = result.summary
    # Hybrid strictly dominates CPU-GPU sync on latency...
    assert s["sync=hybrid_lat_vs_sync=cpu_gpu"] < 0.98
    # ...and matches or beats it on throughput.
    assert s["sync=hybrid_thr_vs_sync=cpu_gpu"] >= 0.99

    # Pure inter-stream never beats hybrid (comm launch lag).
    records = result.records
    hybrid = [r for r in records if r.panel == "sync=hybrid"]
    inter = [r for r in records if r.panel == "sync=inter_stream"]
    pairs = [(h, i) for h in hybrid for i in inter if abs(h.rate - i.rate) < 1e-9]
    assert pairs
    assert all(h.avg_latency_ms <= i.avg_latency_ms * 1.02 for h, i in pairs)


def test_multi_gpu_launch_gap_exceeds_single_gpu(benchmark, scale):
    """§4.5's microbenchmark: ~5 µs null-kernel launch on one GPU, >20 µs
    when the CPU must confirm completion across all GPUs."""
    del scale
    from repro.hw import v100_nvlink_node

    from repro.sim import Engine, Host, Machine

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    node = v100_nvlink_node(4)
    host = Host(Machine(node, Engine()))
    single = node.gpu.kernel_launch_overhead
    # The exposed CPU-GPU sync path: event visibility + multi-GPU
    # completion confirmation + the relaunch itself.
    multi = host.sync_visibility_latency + host.multi_gpu_launch_penalty + single
    assert single <= 6.0
    assert multi > 20.0
