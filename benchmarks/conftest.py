"""Benchmark configuration.

Each benchmark module regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md) and asserts its qualitative shape.  The
experiment scale comes from ``LIGER_BENCH_SCALE``:

* ``smoke`` — layer-reduced models, seconds per figure (CI);
* ``quick`` — full models, headline panels (default);
* ``full``  — every panel of the paper, wide rate grids (minutes).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    scale = os.environ.get("LIGER_BENCH_SCALE", "quick")
    if scale not in ("smoke", "quick", "full"):
        raise ValueError(f"LIGER_BENCH_SCALE must be smoke/quick/full, got {scale}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def run_figure(benchmark, fig_fn, scale: str):
    """Run one figure regeneration under pytest-benchmark (single round)."""
    result = benchmark.pedantic(lambda: fig_fn(scale=scale), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in result.summary.items()}
    )
    benchmark.extra_info["scale"] = scale
    print(f"\n=== {result.figure}: {result.title} [scale={scale}] ===")
    print(result.text)
    return result
