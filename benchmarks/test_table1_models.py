"""Table 1: model specifications (OPT-30B, OPT-66B, GLM-130B)."""

from __future__ import annotations

from repro.experiments import table1
from repro.models import GLM_130B, OPT_30B, OPT_66B
from repro.units import GB


def test_table1(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    print(f"\n{result.text}")
    # The rows must match the paper exactly.
    assert "OPT-30B" in result.text and "GLM-130B" in result.text
    assert OPT_30B.weight_bytes == GB(60) and OPT_30B.num_layers == 48
    assert OPT_66B.weight_bytes == GB(132) and OPT_66B.num_heads == 72
    assert GLM_130B.hidden_size == 12288 and GLM_130B.num_layers == 70
