"""Fig. 3: strong scaling of the intra-op approach.

Paper: OPT-30B/V100 gains 2.58× from 1→4 GPUs with communication at 20.7%
of total time; GLM-130B/A100 (weaker interconnect) gains only 1.91× with
communication at 47.1%.  The shape asserted here: a useful-but-sublinear
speedup on both nodes, a materially larger communication share on the PCIe
node, and the V100 node scaling better than the A100 node.
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import fig3


def test_fig3_strong_scaling(benchmark, scale):
    result = run_figure(benchmark, fig3, scale)
    s = result.summary
    # Sublinear but real speedups at 4 GPUs.
    assert 1.8 <= s["v100_speedup_4gpu"] <= 3.5
    assert 1.5 <= s["a100_speedup_4gpu"] <= 3.0
    assert s["v100_speedup_4gpu"] > s["a100_speedup_4gpu"]
    # Communication shares: V100 ≈ 20%, A100 ≈ 47% in the paper.
    assert 10 <= s["v100_comm_pct"] <= 35
    assert 35 <= s["a100_comm_pct"] <= 65
    assert s["a100_comm_pct"] > s["v100_comm_pct"] + 10
