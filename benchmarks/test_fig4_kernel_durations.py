"""Fig. 4: widely-varied kernel durations across models and input sizes.

Paper: (a) as model size grows 8B→175B, duration variance grows and a few
kernels dominate; (b) durations vary with input size, so no static overlap
pairing works — the motivation for runtime decomposition (§3.6).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_figure
from repro.experiments import fig4
from repro.hw import v100_nvlink_node
from repro.models import OPT_8B, OPT_175B, prefill_ops
from repro.profiling import OpProfiler


def test_fig4_variance(benchmark, scale):
    result = run_figure(benchmark, fig4, scale)
    # (a) the duration spread must widen monotonically with model size.
    assert result.summary["cv_monotone"] == 1.0


def test_fig4_dominance_grows_with_model_size(benchmark):
    """max/min duration ratio grows sharply from 8B to 175B."""
    prof = OpProfiler(v100_nvlink_node(4))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratios = {}
    for model in (OPT_8B, OPT_175B):
        durs = np.array(
            [prof.duration(o) for o in prefill_ops(model, 2, 64, 1) if not o.is_comm]
        )
        ratios[model.name] = durs.max() / durs.min()
    assert ratios["OPT-175B"] > 2 * ratios["OPT-8B"]


def test_fig4_input_size_changes_relative_durations(benchmark):
    """(b): kernels scale differently with seq — relative order shifts."""
    prof = OpProfiler(v100_nvlink_node(4))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def durations(seq):
        return {
            o.name: prof.duration(o)
            for o in prefill_ops(OPT_8B, 2, seq, 1, layers=[0])
            if not o.is_comm
        }

    d16, d128 = durations(16), durations(128)
    growth = {name: d128[name] / d16[name] for name in d16}
    # Attention (quadratic in seq) grows faster than the QKV GEMM
    # (linear-and-efficiency-bound): the relative mix shifts with input.
    assert growth["attention_L0"] > 1.15 * growth["qkv_gemm_L0"]
