"""Extension: bursty vs constant arrivals at the same mean rate.

The paper's §4.2 sweep uses constant rates only and notes the resulting
advantage window is narrow.  This bench compares Liger and Intra-Op under a
bursty process (4× burst/lull ratio) at the same mean rate near the intra-op
saturation knee.  Findings (see EXPERIMENTS.md): Liger's latency advantage
holds under both arrival patterns, and is largest under sustained constant
load — burst lulls give intra-op recovery windows, narrowing but never
closing the gap.
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import fluctuating


def test_fluctuating_arrivals(benchmark, scale):
    result = run_figure(benchmark, fluctuating, scale)
    s = result.summary
    # Liger beats intra-op under both arrival patterns...
    assert s["liger_better_under_both"] == 1.0
    # ...and constant knee-rate load is the adversarial case for intra-op.
    assert s["constant_liger_lat_vs_intra"] <= s["bursty_liger_lat_vs_intra"] + 0.05
