"""Fig. 10: the headline serving comparison on random traces (§4.2).

Paper shapes asserted:
* Liger's peak throughput exceeds Intra-Op's (paper: 1.15× V100, 1.52× A100
  on average; more on the weaker interconnect);
* pre-saturation, Liger's average latency undercuts Inter-Op's and
  Inter-Th's (paper: −45.4%/−59.1% V100, −35.8%/−42.2% A100);
* at the lowest rate Liger's latency matches Intra-Op's (interleaved
  parallelism degenerates to intra-op when batches don't overlap).
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import fig10


def test_fig10_general_serving(benchmark, scale):
    result = run_figure(benchmark, fig10, scale)
    s = result.summary

    # Liger out-throughputs Intra-Op on average across panels.
    assert s["mean_thr_gain_vs_intra"] > 1.05
    # Liger undercuts both pipelines' latency before saturation.
    assert s["mean_lat_reduction_vs_inter"] > 0.10
    assert s["mean_lat_reduction_vs_inter_th"] > 0.10

    # Low-rate degeneration to intra-op, per panel.
    records = result.records
    for panel in {r.panel for r in records}:
        sub = [r for r in records if r.panel == panel]
        lowest = min(r.rate for r in sub)
        liger = next(r for r in sub if r.strategy == "liger" and r.rate == lowest)
        intra = next(r for r in sub if r.strategy == "intra" and r.rate == lowest)
        assert liger.avg_latency_ms <= intra.avg_latency_ms * 1.08, panel

    # The weaker interconnect benefits more (§4.2): A100 gain ≥ V100 gain.
    v100 = [v for k, v in s.items() if "v100" in k and "thr_vs_intra" in k]
    a100 = [v for k, v in s.items() if "a100" in k and "thr_vs_intra" in k]
    if v100 and a100:
        assert max(a100) >= max(v100) * 0.95


def test_fig10_inter_th_beats_inter_on_largest_models(benchmark, scale):
    """The Fig. 10(j)(k) anomaly — only visible when the large-model panels
    run (scale=full); at smaller scales assert the cost-model mechanism."""
    if scale == "full":
        result = benchmark.pedantic(lambda: fig10(scale="full"), rounds=1, iterations=1)
        big = [
            r
            for r in result.records
            if ("OPT-66B" in r.panel or "GLM-130B" in r.panel)
        ]
        th = max(r.throughput for r in big if r.strategy == "inter_th")
        op = max(r.throughput for r in big if r.strategy == "inter")
        assert th >= op * 0.98
    else:
        from repro.hw import A100_80GB_PCIE
        from repro.models import GLM_130B, KernelCostModel

        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        cm = KernelCostModel(A100_80GB_PCIE)
        m = 144
        whole = cm.gemm_time(m, GLM_130B.ffn_size, GLM_130B.hidden_size)
        parts = 4 * cm.gemm_time(m, GLM_130B.ffn_size // 4, GLM_130B.hidden_size)
        assert parts < whole  # four partitioned kernels beat the giant one
