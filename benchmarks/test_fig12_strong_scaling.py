"""Fig. 12: strong scaling of serving OPT-30B on 1/2/4 A100 GPUs (§4.4).

Paper shapes: latency and throughput both improve with device count; Liger
out-throughputs Intra-Op and undercuts Inter-Op latency; the 2-GPU effect
is weaker than the 4-GPU one (lower communication ratio).
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import fig12


def test_fig12_strong_scaling(benchmark, scale):
    result = run_figure(benchmark, fig12, scale)
    records = result.records

    def best(panel_suffix, strategy, metric):
        sub = [
            r
            for r in records
            if r.panel.endswith(panel_suffix) and r.strategy == strategy
        ]
        vals = [getattr(r, metric) for r in sub]
        return min(vals) if metric == "avg_latency_ms" else max(vals)

    # Throughput grows with device count for Liger.
    thr = {p: best(f"x{p}", "liger", "throughput") for p in (1, 2, 4)}
    assert thr[2] > thr[1]
    assert thr[4] > thr[1]
    # Latency improves with device count for Liger.
    lat = {p: best(f"x{p}", "liger", "avg_latency_ms") for p in (1, 2, 4)}
    assert lat[4] < lat[1]
    # Liger vs the baselines at 4 GPUs.
    assert result.summary["thr_gain_x4"] > 1.02
    assert best("x4", "liger", "avg_latency_ms") <= best(
        "x4", "inter", "avg_latency_ms"
    )
