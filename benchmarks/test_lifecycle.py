"""Extension: full chat lifecycle (prefill + decode through one runtime).

The paper evaluates prefill (§4.2) and decode (§4.3) in isolation; real chat
serving runs both per request.  With both phases in flight, Liger overlaps
one request's prefill GEMMs with other requests' decode all-reduces — the
largest end-to-end gain measured in this reproduction.  Asserted shapes:
Liger improves TTFT, full latency, and token throughput over Intra-Op on
the mixed workload, with a TTFT gain at least as large as the pure-phase
latency gains.
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import lifecycle


def test_lifecycle_serving(benchmark, scale):
    result = run_figure(benchmark, lifecycle, scale)
    s = result.summary
    # Liger improves every lifecycle metric.
    assert s["liger_ttft_vs_intra"] < 0.95
    assert s["liger_lat_vs_intra"] < 0.95
    assert s["liger_tokens_vs_intra"] > 1.02
    # The mixed workload benefits at least as much as decode-only serving
    # (more heterogeneous kernels → more overlap opportunities).
    assert s["liger_ttft_vs_intra"] <= s["liger_lat_vs_intra"] + 0.1
