"""The abstract's headline 4-device claims.

Paper: "Liger reduces the average latency by 36.0% while maintaining the
same throughput compared to the inter-operator approach.  Meanwhile, it
improves the throughput by 1.34× with improved average latency compared to
the intra-operator approach."

Absolute factors depend on the testbed; the asserted band is generous but
the direction and rough magnitude must hold on the simulated A100 node.
"""

from __future__ import annotations

from benchmarks.conftest import run_figure
from repro.experiments import headline


def test_headline_claims(benchmark, scale):
    result = run_figure(benchmark, headline, scale)
    s = result.summary
    panel = "GLM-130B/a100"

    # 1.34× throughput vs Intra-Op (band: ≥ 1.08).
    thr_gain = s[f"{panel}:liger_thr_vs_intra"]
    assert thr_gain >= 1.08, f"throughput gain {thr_gain:.3f}"

    # −36.0% latency vs Inter-Op at sustained throughput (band: ≥ 10%).
    lat_red = s[f"{panel}:liger_lat_red_vs_inter"]
    assert lat_red >= 0.10, f"latency reduction {lat_red:.3f}"

    # "with improved average latency compared to the intra-operator
    # approach": at every common pre-saturation rate Liger's latency is
    # no worse than Intra-Op's.
    records = result.records
    for rate in sorted({r.rate for r in records}):
        liger = next(
            (r for r in records if r.strategy == "liger" and r.rate == rate), None
        )
        intra = next(
            (r for r in records if r.strategy == "intra" and r.rate == rate), None
        )
        if liger is None or intra is None:
            continue
        if liger.throughput >= rate * 0.9:  # Liger still sustaining
            assert liger.avg_latency_ms <= intra.avg_latency_ms * 1.05, rate
