"""Benchmark package: one module per paper table/figure.

Packaged (rather than a loose directory) so ``from benchmarks.conftest
import run_figure`` resolves under both ``pytest`` and ``python -m pytest``.
"""
