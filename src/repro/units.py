"""Unit conventions and conversion helpers.

The whole library uses one internal convention so quantities can be combined
without bookkeeping:

========== ===========================
quantity   internal unit
========== ===========================
time       microseconds (``float``)
data size  bytes (``float``)
compute    FLOPs (``float``)
bandwidth  bytes / second
FLOP rate  FLOPs / second
rates      requests / second
========== ===========================

The helpers below convert human-friendly figures (``ms``, ``GB/s``,
``TFLOPS``) into the internal units.  They are trivial on purpose: making the
unit explicit at every literal is what prevents the classic
microseconds-vs-milliseconds bug in a cost model.
"""

from __future__ import annotations

__all__ = [
    "us",
    "ms",
    "seconds",
    "us_to_s",
    "s_to_us",
    "KB",
    "MB",
    "GB",
    "GBps",
    "TFLOPS",
    "GFLOPS",
    "FP16_BYTES",
    "FP32_BYTES",
]

# Bytes per element for the precisions that appear in the paper (Table 1 uses
# FP16 everywhere; FP32 shows up only in accumulation which the cost model
# folds into efficiency).
FP16_BYTES = 2
FP32_BYTES = 4


def us(value: float) -> float:
    """Microseconds — identity, for call-site documentation."""
    return float(value)


def ms(value: float) -> float:
    """Milliseconds → microseconds."""
    return float(value) * 1e3


def seconds(value: float) -> float:
    """Seconds → microseconds."""
    return float(value) * 1e6


def us_to_s(value: float) -> float:
    """Microseconds → seconds."""
    return float(value) * 1e-6


def s_to_us(value: float) -> float:
    """Seconds → microseconds (alias of :func:`seconds`)."""
    return float(value) * 1e6


def KB(value: float) -> float:
    """Kilobytes (10^3) → bytes."""
    return float(value) * 1e3


def MB(value: float) -> float:
    """Megabytes (10^6) → bytes."""
    return float(value) * 1e6


def GB(value: float) -> float:
    """Gigabytes (10^9) → bytes."""
    return float(value) * 1e9


def GBps(value: float) -> float:
    """GB/s → bytes/s."""
    return float(value) * 1e9


def TFLOPS(value: float) -> float:
    """TFLOPS → FLOPs/s."""
    return float(value) * 1e12


def GFLOPS(value: float) -> float:
    """GFLOPS → FLOPs/s."""
    return float(value) * 1e9
