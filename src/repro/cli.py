"""Shared CLI building blocks for the ``repro`` entry points.

The three entry points (``python -m repro``, ``python -m repro faults``,
``python -m repro trace``) serve the same kind of workload and accept the
same model/node/workload and overload flags; this module defines them once
as argparse *parent parsers* so each subcommand only declares what is
unique to it (its defaults and its own flags).

Usage::

    parser = argparse.ArgumentParser(
        prog="python -m repro ...",
        parents=[workload_parent(), overload_parent(kv_frac=True)],
    )
    args = parser.parse_args(argv)
    model, node = resolve_model_node(args)
    overload = overload_config_from_args(args)
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional

from repro.core.policy import policy_names
from repro.hw.devices import TESTBEDS
from repro.models.specs import MODELS
from repro.serving.api import STRATEGIES

__all__ = [
    "workload_parent",
    "overload_parent",
    "resolve_model_node",
    "overload_config_from_args",
    "install_log_handler",
]


def workload_parent(
    *,
    model_default: str = "OPT-30B",
    rate_default: float = 20.0,
    requests_default: int = 64,
    batch_default: int = 2,
    seed_default: int = 0,
) -> argparse.ArgumentParser:
    """The model/node/strategy/workload flags every subcommand shares.

    Defaults differ per subcommand (e.g. the faults CLI serves a smaller
    model at a higher rate), so each caller passes its own.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--model", default=model_default, choices=sorted(MODELS))
    parent.add_argument("--node", default="v100", choices=sorted(TESTBEDS))
    parent.add_argument("--gpus", type=int, default=4)
    parent.add_argument("--strategy", default="liger", choices=STRATEGIES)
    parent.add_argument(
        "--policy", default=None, choices=policy_names(),
        help="operator scheduling policy (liger strategy only; "
        "default: dichotomy)")
    parent.add_argument("--workload", default="general",
                        choices=("general", "generative"))
    parent.add_argument("--rate", type=float, default=rate_default,
                        help="arrival rate (requests/second)")
    parent.add_argument("--requests", type=int, default=requests_default)
    parent.add_argument("--batch", type=int, default=batch_default)
    parent.add_argument("--seed", type=int, default=seed_default)
    return parent


def overload_parent(*, kv_frac: bool = False) -> argparse.ArgumentParser:
    """The admission-control flags (``--max-pending``/``--admission``/
    ``--deadline-ms``, plus ``--kv-frac`` where KV accounting applies)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("overload protection")
    group.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="enable admission control with a pending queue of N requests")
    group.add_argument(
        "--admission", default="reject",
        choices=("reject", "shed-oldest", "shed-by-deadline"),
        help="policy when the pending queue is full (with --max-pending)")
    group.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline in milliseconds after arrival")
    if kv_frac:
        group.add_argument(
            "--kv-frac", type=float, default=0.9, metavar="F",
            help="fraction of free HBM the KV accountant may use (default 0.9)")
    return parent


def resolve_model_node(args: argparse.Namespace):
    """Turn the parsed ``--model``/``--node``/``--gpus`` flags into specs."""
    return MODELS[args.model], TESTBEDS[args.node](args.gpus)


def overload_config_from_args(args: argparse.Namespace):
    """Build the :class:`~repro.serving.overload.OverloadConfig` the parsed
    overload flags describe, or ``None`` when none were given."""
    if args.max_pending is None and args.deadline_ms is None:
        return None
    from repro.serving.overload import OverloadConfig

    kwargs = {}
    if getattr(args, "kv_frac", None) is not None:
        kwargs["kv_capacity_frac"] = args.kv_frac
    return OverloadConfig(
        max_pending_requests=(
            args.max_pending if args.max_pending is not None else 64
        ),
        policy=args.admission,
        default_deadline_us=(
            args.deadline_ms * 1000.0 if args.deadline_ms is not None else None
        ),
        **kwargs,
    )


def install_log_handler(
    level_name: Optional[str], parser: argparse.ArgumentParser
) -> None:
    """Attach a stderr handler to the ``repro.*`` logger hierarchy."""
    if level_name is None:
        return
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        parser.error(f"unknown log level {level_name!r}")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s %(levelname)s %(message)s"))
    repro_logger = logging.getLogger("repro")
    repro_logger.addHandler(handler)
    repro_logger.setLevel(level)
