"""Chaos harness: randomized node-failure schedules with hard invariants.

The harness drives trace-driven traffic through a replicated cluster under
a *seeded* random failure schedule and asserts the liveness/goodput
invariants a fault-tolerant serving tier must keep:

1. **Terminal** — every admitted request reaches exactly one terminal
   state (completed / shed / timed-out); nothing is lost.  Exactly-once is
   enforced structurally by the request state machine (a second terminal
   transition raises) and by the router's completion-ownership gate.
2. **No unhealthy dispatch** — the router never hands work to a node it
   has marked unhealthy (``unhealthy_dispatches == 0``).
3. **Goodput floor** — killing a minority of replicas degrades goodput
   proportionally; it must not collapse below the configured floor.

Determinism: one master seed derives, in a fixed documented order, the
failure-schedule seed, the arrival-jitter seed, the router tie-break seed,
and the sequence-length seed.  The same master seed therefore replays the
same chaos run **bit-for-bit** — the report carries a fingerprint over
every request outcome so replays can be compared exactly, and the report
prints the seed first so any run can be reproduced from its output alone.
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster, ClusterResult
from repro.cluster.interconnect import CrossNodeInterconnect
from repro.errors import ConfigError
from repro.faults.plan import (
    Fault,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
    NodeDegradation,
)
from repro.faults.resilience import ReplicaRecoveryConfig
from repro.hw.devices import TESTBEDS
from repro.models.specs import MODELS
from repro.serving.arrival import BurstyProcess
from repro.serving.workload import general_trace

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "check_single_replica_identity",
]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos scenario: cluster shape, traffic, and failure mix."""

    replicas: int = 3
    strategy: str = "liger"
    model: str = "OPT-30B"
    node: str = "v100"
    gpus: int = 2
    #: Scale the model to this many layers (0 keeps the full model).
    layers: int = 4
    num_requests: int = 36
    rate: float = 60.0
    batch_size: int = 2
    #: Multiplicative jitter on arrival gaps (satellite: seeded end to end).
    jitter_frac: float = 0.1
    #: How many of each node-level fault the schedule draws.
    crashes: int = 1
    partitions: int = 0
    degradations: int = 0
    #: Master seed; everything stochastic in the run derives from it.
    seed: int = 0
    #: Invariant floor on completed/admitted.
    min_goodput: float = 0.5
    record_trace: bool = False
    recovery: Optional[ReplicaRecoveryConfig] = None
    interconnect: Optional[CrossNodeInterconnect] = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError("replicas must be >= 1")
        if self.crashes and self.replicas < 2:
            raise ConfigError(
                "crash scenarios need >= 2 replicas (node 0 hosts the "
                "router and is never crashed, so one replica must survive)"
            )
        if not 0.0 <= self.min_goodput <= 1.0:
            raise ConfigError("min_goodput must be in [0, 1]")


@dataclass
class ChaosReport:
    """Everything needed to judge — and exactly replay — one chaos run."""

    seed: int
    derived_seeds: dict
    schedule: List[str]
    result: ClusterResult
    #: (invariant name, held?, detail) triples.
    invariants: List[Tuple[str, bool, str]] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return all(held for _, held, _ in self.invariants)

    def describe(self) -> str:
        """Human-readable report; the seed leads so any run is replayable."""
        lines = [
            f"chaos run: seed={self.seed}",
            "  derived seeds: "
            + ", ".join(f"{k}={v}" for k, v in self.derived_seeds.items()),
            "  failure schedule:"
            if self.schedule
            else "  failure schedule: (none)",
        ]
        for entry in self.schedule:
            lines.append(f"    {entry}")
        lines.append(f"  outcome: {self.result.summary()}")
        lines.append("  invariants:")
        for name, held, detail in self.invariants:
            lines.append(f"    [{'PASS' if held else 'FAIL'}] {name}: {detail}")
        lines.append(f"  fingerprint: {self.fingerprint}")
        for extra in self.result.resilience.describe().splitlines():
            lines.append(f"  {extra}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Schedule drawing
# ----------------------------------------------------------------------
def _draw_window(
    rng: random.Random, horizon: float, existing: List[Fault], target_check
) -> Optional[Tuple[float, float]]:
    """Draw a fault window inside ~[0.15, 1.2]·horizon avoiding overlaps.

    ``target_check(fault)`` says whether an existing fault shares a target
    with the one being placed; colliding draws are retried a bounded
    number of times, then the fault is skipped (the plan would reject the
    overlap at construction).
    """
    for _ in range(64):
        start = rng.uniform(0.15, 0.9) * horizon
        duration = rng.uniform(0.1, 0.3) * horizon
        end = start + duration
        if not any(
            target_check(f) and start < f.end and f.start < end
            for f in existing
        ):
            return start, end
    return None


def draw_fault_plan(
    config: ChaosConfig, schedule_seed: int, horizon: float
) -> FaultPlan:
    """Draw the randomized node-failure schedule for one chaos run.

    Crashes and partitions never target node 0 — the router is colocated
    there, and keeping one guaranteed-healthy replica is what makes the
    liveness invariant meaningful rather than vacuously shed-everything.
    """
    rng = random.Random(schedule_seed)
    faults: List[Fault] = []
    for _ in range(config.crashes):
        node = rng.randrange(1, config.replicas)
        window = _draw_window(
            rng, horizon, faults,
            lambda f, node=node: isinstance(f, NodeCrash) and f.node == node,
        )
        if window is not None:
            faults.append(NodeCrash(start=window[0], end=window[1], node=node))
    for _ in range(config.partitions):
        if config.replicas < 2:
            break
        node = rng.randrange(1, config.replicas)
        window = _draw_window(
            rng, horizon, faults,
            lambda f, node=node: isinstance(f, NetworkPartition)
            and f.covers(node),
        )
        if window is not None:
            faults.append(
                NetworkPartition(start=window[0], end=window[1], nodes=(node,))
            )
    for _ in range(config.degradations):
        node = rng.randrange(0, config.replicas)
        window = _draw_window(
            rng, horizon, faults,
            lambda f, node=node: isinstance(f, NodeDegradation)
            and f.node == node,
        )
        if window is not None:
            faults.append(
                NodeDegradation(
                    start=window[0],
                    end=window[1],
                    node=node,
                    factor=rng.uniform(1.5, 3.0),
                )
            )
    return FaultPlan(faults)


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def _resolve_specs(config: ChaosConfig):
    model = MODELS[config.model]
    if config.layers:
        model = model.scaled_layers(config.layers)
    return model, TESTBEDS[config.node](config.gpus)


def outcome_fingerprint(result: ClusterResult, batches) -> str:
    """Bit-exact digest of a run: every request outcome + router counters.

    Deliberately excludes the engine's end time: an attached observability
    heartbeat adds (outcome-neutral) sampling events that can move it, and
    the per-request completion instants already pin the timing bit-for-bit.
    """
    rows = sorted(
        (r.rid, r.state.value, repr(r.completion))
        for b in batches
        for r in b.requests
    )
    blob = json.dumps(
        {
            "outcomes": rows,
            "dispatched": result.dispatched_batches,
            "failovers": result.resilience.failovers,
            "shed": result.shed_requests,
        },
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def run_chaos(
    config: ChaosConfig, *, observability=None
) -> ChaosReport:
    """Run one seeded chaos scenario and check every invariant.

    The master seed derives the component seeds in this fixed order —
    ``schedule``, ``jitter``, ``router``, ``seqlen`` — so adding a new
    consumer later must append to the list, never reorder it, or replay
    compatibility breaks.
    """
    master = random.Random(config.seed)
    derived = {
        "schedule": master.randrange(2**32),
        "jitter": master.randrange(2**32),
        "router": master.randrange(2**32),
        "seqlen": master.randrange(2**32),
    }
    model, node_spec = _resolve_specs(config)
    batches = general_trace(
        config.num_requests,
        config.rate,
        config.batch_size,
        seed=derived["seqlen"],
        arrival=BurstyProcess(
            config.rate, jitter_frac=config.jitter_frac, seed=derived["jitter"]
        ),
    )
    horizon = max(b.arrival for b in batches)
    plan = draw_fault_plan(config, derived["schedule"], horizon)
    cluster = Cluster(
        model,
        node_spec,
        replicas=config.replicas,
        strategy=config.strategy,
        fault_plan=plan,
        recovery=config.recovery,
        interconnect=config.interconnect,
        record_trace=config.record_trace,
        check_memory=False,
        observability=observability,
        seed=derived["router"],
    )
    result = cluster.run(batches)

    total = result.num_requests
    terminal = (
        result.completed_requests
        + result.shed_requests
        + result.timed_out_requests
    )
    invariants = [
        (
            "all-terminal",
            terminal == total,
            f"{terminal}/{total} requests reached a terminal state",
        ),
        (
            "exactly-once",
            result.router_completed_requests == result.completed_requests,
            f"gate accepted {result.router_completed_requests} completions "
            f"for {result.completed_requests} completed requests "
            f"({result.rejected_completions} duplicate(s) rejected)",
        ),
        (
            "no-unhealthy-dispatch",
            result.unhealthy_dispatches == 0,
            f"{result.unhealthy_dispatches} dispatch(es) to unhealthy nodes",
        ),
        (
            "goodput-floor",
            result.goodput >= config.min_goodput,
            f"goodput {result.goodput:.1%} vs floor {config.min_goodput:.1%}",
        ),
    ]
    return ChaosReport(
        seed=config.seed,
        derived_seeds=derived,
        schedule=[f.describe() for f in plan.faults],
        result=result,
        invariants=invariants,
        fingerprint=outcome_fingerprint(result, batches),
    )


# ----------------------------------------------------------------------
# Single-replica bit-identity check (the zero-cost contract, runnable)
# ----------------------------------------------------------------------
def _normalized_trace_rows(trace) -> List[tuple]:
    """Trace rows with batch ids rebased (process-global counter neutral)."""
    base = min((r.batch_id for r in trace.rows if r.batch_id >= 0), default=0)

    def fix(name: str) -> str:
        return re.sub(r"_b(\d+)", lambda m: f"_b{int(m.group(1)) - base}", name)

    return [
        (
            r.gpu, r.stream, fix(r.name), r.kind.value,
            r.batch_id - base if r.batch_id >= 0 else r.batch_id,
            r.layer, r.op, repr(r.ready), repr(r.start), repr(r.end),
            repr(r.noload_duration),
        )
        for r in trace.rows
    ]


def trace_fingerprint(trace) -> str:
    """sha256 over the normalized kernel timeline."""
    blob = json.dumps(
        _normalized_trace_rows(trace), separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def check_single_replica_identity(
    config: Optional[ChaosConfig] = None,
) -> Tuple[bool, str, str]:
    """Assert a 1-replica, fault-free cluster equals the plain server.

    Serves the same workload through a plain
    :class:`~repro.serving.server.Server` and through a one-replica
    :class:`Cluster` with an empty fault plan, and compares normalized
    kernel-timeline fingerprints.  Returns ``(identical, fp_server,
    fp_cluster)``.
    """
    from repro.serving.api import make_strategy
    from repro.serving.server import Server

    config = config or ChaosConfig()
    model, node_spec = _resolve_specs(config)
    workload = lambda: general_trace(  # noqa: E731 - two fresh, equal copies
        config.num_requests, config.rate, config.batch_size, seed=config.seed
    )

    server = Server(
        model,
        node_spec,
        make_strategy(config.strategy, model, node_spec),
        record_trace=True,
        check_memory=False,
    )
    fp_server = trace_fingerprint(server.run(workload()).trace)

    cluster = Cluster(
        model,
        node_spec,
        replicas=1,
        strategy=config.strategy,
        record_trace=True,
        check_memory=False,
        seed=config.seed,
    )
    cluster_result = cluster.run(workload())
    fp_cluster = trace_fingerprint(cluster_result.traces[0][1])
    return fp_server == fp_cluster, fp_server, fp_cluster
