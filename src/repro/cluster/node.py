"""One cluster node: a full serving replica with crash/recover semantics.

A :class:`ClusterNode` wraps a complete single-node serving stack — model
replica, :class:`~repro.sim.gpu.Machine`, strategy, and a
:class:`~repro.serving.server.Server` — built on the cluster's *shared*
engine so every replica advances on one simulated clock.  On top of the
plain server it adds the whole-node fault surface:

* :meth:`crash` halts the machine (in-flight kernels never finish, later
  submissions are dropped) and marks the node dead;
* :meth:`recover` builds a **fresh incarnation** — new machine, new
  strategy, new server — because a rebooted node keeps no device state;
* node-level :class:`~repro.faults.plan.NodeDegradation` windows are
  translated into per-GPU stragglers and armed on every incarnation, so a
  degraded node stays degraded across a reboot that lands inside the
  window.

Completions flow through a *gate* before they count: the router owns each
batch and confirms this node is still the batch's owner, which keeps
requests exactly-once even when failover duplicates work onto two nodes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, GpuStraggler, NodeDegradation
from repro.obs.events import NodeCrashed, NodeRecovered
from repro.serving.api import make_strategy
from repro.serving.request import Batch
from repro.serving.server import Server

__all__ = ["ClusterNode"]


class _ReplicaServer(Server):
    """A :class:`Server` whose completions are gated by the router.

    ``completion_gate(node_index, batch, time)`` returns whether this node
    still owns the batch; a rejected completion (the batch completed or was
    shed elsewhere first) only flows the pipeline bookkeeping — no request
    transitions, no metrics, no events.
    """

    def __init__(
        self,
        *args,
        node_index: int,
        completion_gate: Optional[Callable[[int, Batch, float], bool]],
        **kwargs,
    ) -> None:
        self._node_index = node_index
        self._completion_gate = completion_gate
        super().__init__(*args, **kwargs)

    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        gate = self._completion_gate
        if gate is not None and not gate(self._node_index, batch, time):
            self.session.notify_complete(batch, time)
            return
        super()._on_batch_complete(batch, time)


class ClusterNode:
    """One replica slot in the cluster: index, liveness, and incarnations."""

    def __init__(
        self,
        index: int,
        model,
        node_spec,
        strategy_name: str,
        *,
        engine,
        completion_gate: Optional[Callable[[int, Batch, float], bool]] = None,
        degradations: Sequence[NodeDegradation] = (),
        record_trace: bool = False,
        check_memory: bool = True,
        contention=None,
        observability=None,
        strategy_kwargs: Optional[dict] = None,
    ) -> None:
        self.index = index
        self.model = model
        self.node_spec = node_spec
        self.strategy_name = strategy_name
        self.engine = engine
        self.alive = True
        #: Bumped on every :meth:`recover`; the router keys batch ownership
        #: on ``(index, incarnation)`` so a reborn node is a new host.
        self.incarnation = 0
        self._completion_gate = completion_gate
        self._degradations = list(degradations)
        self._record_trace = record_trace
        self._check_memory = check_memory
        self._contention = contention
        self._observability = observability
        self._strategy_kwargs = strategy_kwargs or {}
        #: Labelled kernel timelines, one per incarnation that recorded one.
        self.traces: List[Tuple[str, object]] = []
        self.server: _ReplicaServer = None  # type: ignore[assignment]
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Construct this incarnation's serving stack on the shared engine."""
        strategy = make_strategy(
            self.strategy_name,
            self.model,
            self.node_spec,
            **self._strategy_kwargs,
        )
        self.server = _ReplicaServer(
            self.model,
            self.node_spec,
            strategy,
            node_index=self.index,
            completion_gate=self._completion_gate,
            engine=self.engine,
            record_trace=self._record_trace,
            check_memory=self._check_memory,
            contention=self._contention,
            observability=self._observability,
        )
        if self.server.trace is not None:
            label = (
                f"node{self.index}"
                if self.incarnation == 0
                else f"node{self.index}r{self.incarnation}"
            )
            self.traces.append((label, self.server.trace))
        if self._degradations:
            # A whole-node straggler is every GPU throttled by the same
            # factor; the translated plan is overlap-free because the
            # cluster plan already rejected overlapping same-node windows.
            stragglers = [
                GpuStraggler(start=d.start, end=d.end, gpu=g, factor=d.factor)
                for d in self._degradations
                for g in range(len(self.server.machine.gpus))
            ]
            FaultInjector(FaultPlan(stragglers)).arm(self.server.machine)
        # Arms recovery/overload/observability for this incarnation; with
        # none configured (and obs arming idempotent) this is nearly free.
        self.server.session.arm()

    # ------------------------------------------------------------------
    def submit(self, batch: Batch) -> None:
        """Hand one batch to this replica's serving pipeline."""
        self.server._on_arrival(batch)

    def inflight_kernels(self) -> int:
        """Resident kernels across the replica's GPUs (liveness probe aid)."""
        return sum(len(g.resident) for g in self.server.machine.gpus)

    # ------------------------------------------------------------------
    # Whole-node faults
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the node: halt the machine and mark it dead (idempotent)."""
        if not self.alive:
            return
        self.alive = False
        inflight = self.inflight_kernels()
        self.server.machine.halt()
        self._crashed_at = self.engine.now
        obs = self._observability
        if obs is not None:
            obs.bus.publish(
                NodeCrashed(
                    time_us=self.engine.now,
                    node=self.index,
                    incarnation=self.incarnation,
                    inflight=inflight,
                )
            )

    def recover(self) -> None:
        """Reboot into a fresh incarnation (no-op when already alive)."""
        if self.alive:
            return
        self.incarnation += 1
        self._build()
        self.alive = True
        obs = self._observability
        if obs is not None:
            down = self.engine.now - getattr(self, "_crashed_at", self.engine.now)
            obs.bus.publish(
                NodeRecovered(
                    time_us=self.engine.now,
                    node=self.index,
                    incarnation=self.incarnation,
                    down_us=down,
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return (
            f"ClusterNode({self.index}, {state}, "
            f"incarnation={self.incarnation})"
        )
