"""The replicated cluster: N serving nodes, one clock, one router.

A :class:`Cluster` builds N full serving replicas (see
:mod:`repro.cluster.node`) on **one shared**
:class:`~repro.sim.engine.Engine` — the whole cluster advances on a single
simulated clock — and fronts them with the health-checked
:class:`~repro.cluster.router.Router`.  Node-level faults come from the
same declarative :class:`~repro.faults.plan.FaultPlan` machinery as the
single-node faults: :class:`~repro.faults.plan.NodeCrash` halts a
machine, :class:`~repro.faults.plan.NetworkPartition` makes probes fail
while the node keeps executing, and
:class:`~repro.faults.plan.NodeDegradation` throttles every GPU of one
node (translated to per-GPU stragglers on each incarnation).

Zero-cost convention, cluster edition: a one-replica cluster with an
empty fault plan produces the **bit-identical** kernel timeline of a
plain :class:`~repro.serving.server.Server` run — no health sweeps, no
RNG draws, no cross-node transfers, the same arrival events in the same
order.  The golden-trace tests pin this.

Determinism: every stochastic choice (router tie-breaks) draws from one
seeded ``random.Random`` owned by the run, so the same seed replays the
same cluster history bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro.cluster.interconnect import CrossNodeInterconnect
from repro.cluster.node import ClusterNode
from repro.cluster.router import Router
from repro.errors import ConfigError, DeadlockError
from repro.faults.plan import FaultPlan
from repro.faults.resilience import (
    ClusterResilienceReport,
    ReplicaRecovery,
    ReplicaRecoveryConfig,
)
from repro.serving.request import Batch, RequestState
from repro.sim.engine import Engine

__all__ = ["Cluster", "ClusterResult"]


@dataclass
class ClusterResult:
    """Outcome of one replicated serving run."""

    num_nodes: int
    strategy: str
    num_requests: int
    completed_requests: int
    shed_requests: int
    timed_out_requests: int
    #: Batches the router dispatched (initial dispatches, not failovers).
    dispatched_batches: int
    #: Completions rejected by the ownership gate (duplicated work).
    rejected_completions: int
    #: Requests the router's gate accepted as completed; must equal
    #: ``completed_requests`` (counted from request states) — a mismatch
    #: means a completion bypassed the exactly-once gate.
    router_completed_requests: int
    #: Router dispatches to unhealthy nodes — an invariant breach if != 0.
    unhealthy_dispatches: int
    resilience: ClusterResilienceReport
    #: Mean latency over completed requests (ms); 0 when none completed.
    avg_latency_ms: float
    #: Simulated end-to-end makespan (µs).
    makespan_us: float
    wall_events: int
    #: Labelled per-replica kernel timelines (one per traced incarnation).
    traces: List[Tuple[str, object]] = field(default_factory=list)
    observability: Optional[object] = None

    @property
    def goodput(self) -> float:
        """Fraction of admitted requests that completed."""
        if self.num_requests == 0:
            return 0.0
        return self.completed_requests / self.num_requests

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"cluster[{self.num_nodes}x {self.strategy}]: "
            f"{self.completed_requests}/{self.num_requests} completed "
            f"({self.goodput:.1%} goodput), {self.shed_requests} shed, "
            f"{self.resilience.failovers} failover(s), "
            f"avg latency {self.avg_latency_ms:.1f} ms"
        )


class Cluster:
    """N replicated serving nodes behind a health-checked router."""

    def __init__(
        self,
        model,
        node_spec,
        *,
        replicas: int = 1,
        strategy: str = "liger",
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[ReplicaRecoveryConfig] = None,
        interconnect: Optional[CrossNodeInterconnect] = None,
        record_trace: bool = False,
        check_memory: bool = True,
        contention=None,
        observability=None,
        seed: int = 0,
        affinity: Optional[Callable[[Batch], Hashable]] = None,
        strategy_kwargs: Optional[dict] = None,
    ) -> None:
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.plan = fault_plan or FaultPlan()
        for fault in self.plan.crashes + self.plan.degradations:
            if fault.node >= replicas:
                raise ConfigError(
                    f"{fault.describe()} targets node {fault.node} but the "
                    f"cluster has {replicas} replica(s) (0..{replicas - 1})"
                )
        for partition in self.plan.partitions:
            for n in partition.nodes:
                if n >= replicas:
                    raise ConfigError(
                        f"{partition.describe()} targets node {n} but the "
                        f"cluster has {replicas} replica(s)"
                    )
        self.model = model
        self.node_spec = node_spec
        self.strategy = strategy
        self.engine = Engine()
        self.rng = random.Random(seed)
        self.obs = observability
        self.bus = observability.bus if observability is not None else None
        self.nodes: List[ClusterNode] = [
            ClusterNode(
                i,
                model,
                node_spec,
                strategy,
                engine=self.engine,
                completion_gate=self._accept_completion,
                degradations=[
                    d for d in self.plan.degradations if d.node == i
                ],
                record_trace=record_trace,
                check_memory=check_memory,
                contention=contention,
                observability=observability,
                strategy_kwargs=strategy_kwargs,
            )
            for i in range(replicas)
        ]
        self.recovery = ReplicaRecovery(replicas, recovery)
        self.router = Router(
            self.nodes,
            fault_plan=self.plan,
            recovery=self.recovery,
            interconnect=interconnect,
            rng=self.rng,
            bus=self.bus,
            affinity=affinity,
        )
        if self.obs is not None:
            self.obs.note_fault_plan(self.plan)
            self._register_gauges()
            advisor = self.obs.fast_burn_advisor()
            if advisor is not None:
                self.router.attach_advisor(advisor)

    # ------------------------------------------------------------------
    def _accept_completion(self, node_index: int, batch: Batch, time: float) -> bool:
        return self.router.accept_completion(node_index, batch, time)

    def _register_gauges(self) -> None:
        obs = self.obs
        obs.register_gauge(
            "repro_cluster_healthy_replicas",
            "Replicas the router currently considers dispatchable.",
            lambda: float(self.recovery.healthy_count),
        )
        for i in range(len(self.nodes)):
            obs.register_gauge(
                f"repro_cluster_node{i}_inflight_requests",
                f"Requests the router attributes to replica {i}.",
                lambda i=i: float(self.router.node_inflight_requests(i)),
            )
            # Per-replica federation: one series family per reading, keyed
            # by a replica label, so the fleet rolls up in the store
            # (no-ops when the telemetry store is off).
            obs.register_source(
                "repro_cluster_inflight_requests",
                lambda i=i: float(self.router.node_inflight_requests(i)),
                replica=str(i),
            )
            obs.register_source(
                "repro_cluster_node_alive",
                lambda i=i: float(self.nodes[i].alive),
                replica=str(i),
            )
            obs.register_source(
                "repro_cluster_node_load_batches",
                lambda i=i: float(self.router.node_load(i)),
                replica=str(i),
            )

    # ------------------------------------------------------------------
    def run(self, batches: Sequence[Batch]) -> ClusterResult:
        """Serve ``batches`` across the replicas and return the outcome."""
        if not batches:
            raise ConfigError("no batches to serve")
        ordered = sorted(batches, key=lambda b: b.arrival)
        last_arrival = ordered[-1].arrival
        self.router.watch_until = last_arrival

        # Crash windows become explicit engine events; partitions need none
        # (the health probe consults the plan), and degradations were armed
        # on each node's injector at construction.
        for crash in self.plan.crashes:
            node = self.nodes[crash.node]
            self.engine.schedule_at(crash.start, node.crash, priority=3)
            if crash.end != float("inf"):
                self.engine.schedule_at(crash.end, node.recover, priority=3)

        self.router.arm()
        for batch in ordered:
            self.engine.schedule_at(
                batch.arrival,
                lambda b=batch: self.router.dispatch(b),
                priority=10,  # arrivals fire after same-time device events
            )
        end = self.engine.run()

        # Cluster-level drain check: every admitted request must be
        # terminal.  The per-request exactly-once property is enforced by
        # the Request state machine itself (terminal transitions raise).
        requests = [r for b in ordered for r in b.requests]
        completed = sum(
            1 for r in requests if r.state is RequestState.COMPLETED
        )
        shed = sum(1 for r in requests if r.state is RequestState.SHED)
        timed_out = sum(
            1 for r in requests if r.state is RequestState.TIMED_OUT
        )
        if completed + shed + timed_out != len(requests):
            open_ids = self.router.open_batch_ids()
            raise DeadlockError(
                f"cluster resolved {completed + shed + timed_out} of "
                f"{len(requests)} requests — batches never terminal: "
                f"{open_ids if open_ids else 'none open (lost)'}"
            )

        latencies = [
            r.completion - r.arrival
            for r in requests
            if r.state is RequestState.COMPLETED
        ]
        traces: List[Tuple[str, object]] = []
        for node in self.nodes:
            traces.extend(node.traces)
        return ClusterResult(
            num_nodes=len(self.nodes),
            strategy=self.strategy,
            num_requests=len(requests),
            completed_requests=completed,
            shed_requests=shed,
            timed_out_requests=timed_out,
            dispatched_batches=self.router.dispatched_batches,
            rejected_completions=self.router.rejected_completions,
            router_completed_requests=self.router.completed_requests,
            unhealthy_dispatches=self.router.unhealthy_dispatches,
            resilience=self.recovery.report,
            avg_latency_ms=(
                sum(latencies) / len(latencies) / 1e3 if latencies else 0.0
            ),
            makespan_us=end,
            wall_events=self.engine.events_processed,
            traces=traces,
            observability=self.obs,
        )
