"""The cluster router: health-checked dispatch with failover.

The router fronts N replicated serving nodes.  Its state machine is small
and explicit:

* **Dispatch** — each arriving batch goes to its *affinity* node when one
  is recorded and healthy, otherwise to the least-loaded healthy node
  (load = in-flight batches this router sent there), random tie-break from
  the run's seeded RNG.  The router is colocated with node 0, so sends to
  node 0 are synchronous; sends to any other node pay the cross-node
  interconnect cost before the replica sees the batch.
* **Health sweep** — a periodic probe per node: a crashed node fails its
  probe, as does one inside a :class:`~repro.faults.plan.NetworkPartition`
  window.  ``unhealthy_after`` consecutive failures mark the node
  unhealthy (no new dispatches); ``readmit_after`` consecutive successes
  re-admit it.  Detection is therefore *late* by up to one sweep period —
  exactly the honest failure-detector latency a real deployment pays.
  Sweeps are armed only when the fault plan carries node-level faults; a
  fault-free cluster never probes (zero-cost convention) because health
  cannot change.
* **Failover** — when a probe flips a node unhealthy, its in-flight
  batches are handled by cause: a *crashed* node's work is re-dispatched
  to a healthy peer (charged one cross-node transfer and one unit of the
  batch's ``max_failovers`` budget); an *unreachable* (partitioned) node
  keeps executing, so by default its work is left to **drain** in place —
  its completions still count.  A batch whose budget is spent, or with no
  healthy peer available, is shed terminally.
* **Exactly-once** — the router owns every in-flight batch.  Replicas ask
  :meth:`accept_completion` before counting a completion; only the current
  owner's completion is accepted, so duplicated work after a failover can
  never double-complete a request.

Invariant the property tests pin: :attr:`unhealthy_dispatches` stays 0 —
the router never hands work to a node it has marked unhealthy.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.cluster.interconnect import CrossNodeInterconnect
from repro.cluster.node import ClusterNode
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ReplicaRecovery
from repro.obs.events import (
    NodeHealthChanged,
    RequestsFailedOver,
    RequestsShed,
)
from repro.serving.request import Batch

__all__ = ["Router"]


class _InFlight:
    """Router-side record of one dispatched, not-yet-terminal batch."""

    __slots__ = ("batch", "node", "generation", "hosted")

    def __init__(self, batch: Batch, node: int, incarnation: int) -> None:
        self.batch = batch
        self.node = node
        #: Bumped on every re-route; in-transfer deliveries carry a
        #: snapshot and abort when stale (the batch moved again mid-wire).
        self.generation = 0
        #: ``(node, incarnation)`` pairs that have hosted this batch — a
        #: still-alive partitioned host keeps executing, so failover must
        #: never bounce the batch back onto it.
        self.hosted: Set[Tuple[int, int]] = {(node, incarnation)}


class Router:
    """Health-checked dispatcher over a set of :class:`ClusterNode`\\ s."""

    #: Node the router is colocated with (dispatches there are free).
    home = 0

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        *,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[ReplicaRecovery] = None,
        interconnect: Optional[CrossNodeInterconnect] = None,
        rng: Optional[random.Random] = None,
        bus=None,
        affinity: Optional[Callable[[Batch], Hashable]] = None,
    ) -> None:
        if not nodes:
            raise ConfigError("router needs at least one node")
        self.nodes = list(nodes)
        self.engine = self.nodes[0].engine
        self.plan = fault_plan or FaultPlan()
        self.recovery = recovery or ReplicaRecovery(len(self.nodes))
        if self.recovery.num_nodes != len(self.nodes):
            raise ConfigError(
                f"recovery tracks {self.recovery.num_nodes} replicas but the "
                f"router has {len(self.nodes)}"
            )
        self.interconnect = interconnect or CrossNodeInterconnect()
        self.rng = rng or random.Random(0)
        self.bus = bus
        self.affinity = affinity
        self._affinity_map: Dict[Hashable, int] = {}
        self._inflight: Dict[int, _InFlight] = {}
        #: Keep sweeping at least until this simulated instant (the last
        #: arrival), so later dispatches see up-to-date health state.
        self.watch_until = 0.0
        #: Counters the invariants and reports read.
        self.dispatched_batches = 0
        self.completed_requests = 0
        self.shed_requests = 0
        self.rejected_completions = 0
        #: Must stay 0: dispatches sent to a node marked unhealthy.
        self.unhealthy_dispatches = 0
        #: Optional SLO fast-burn advisory (wired by the cluster when
        #: burn-rate policies are configured): while it returns True,
        #: dispatch skips affinity stickiness in favour of least-loaded
        #: spread, so a burning fleet rebalances instead of piling onto
        #: the sticky home.
        self.advisor: Optional[Callable[[], bool]] = None
        #: Dispatches where the advisory overrode an affinity hit.
        self.advisory_spreads = 0

    # ------------------------------------------------------------------
    # Introspection (gauges, reports)
    # ------------------------------------------------------------------
    def node_load(self, index: int) -> int:
        """In-flight batches this router currently attributes to ``index``."""
        return sum(1 for e in self._inflight.values() if e.node == index)

    def node_inflight_requests(self, index: int) -> int:
        """In-flight *requests* attributed to ``index`` (gauge reading)."""
        return sum(
            e.batch.size for e in self._inflight.values() if e.node == index
        )

    def open_batch_ids(self) -> List[int]:
        """Batches dispatched but not yet terminal (drain diagnostics)."""
        return sorted(self._inflight)

    def attach_advisor(self, advisor: Callable[[], bool]) -> None:
        """Wire the SLO fast-burn advisory into target selection."""
        self.advisor = advisor

    @property
    def healthy_count(self) -> int:
        return self.recovery.healthy_count

    # ------------------------------------------------------------------
    # Health sweep
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start the periodic health sweep when the plan can change health.

        With no node-level faults a replica can never fail a probe, so the
        sweep would be pure event traffic — it is skipped entirely, which
        is what keeps a fault-free cluster's event stream identical to the
        plain servers' (zero-cost convention).
        """
        if self.plan.node_faults:
            self._schedule_sweep()

    def _schedule_sweep(self) -> None:
        self.engine.schedule(
            self.recovery.config.health_check_period_us, self._sweep, priority=9
        )

    def _sweep(self) -> None:
        """Probe every node once; handle transitions; maybe reschedule."""
        now = self.engine.now
        for index, node in enumerate(self.nodes):
            if not node.alive:
                ok, reason = False, "crashed"
            elif self.plan.node_partitioned(index, now):
                ok, reason = False, "partitioned"
            else:
                ok, reason = True, "probe ok"
            transition = self.recovery.note_probe(index, ok, now, reason)
            if transition is None:
                continue
            if self.bus is not None:
                self.bus.publish(
                    NodeHealthChanged(
                        time_us=now,
                        node=index,
                        healthy=(transition == "readmit"),
                        reason=reason,
                    )
                )
            if transition == "mark-unhealthy":
                self._handle_unhealthy(index, now, crashed=not node.alive)
        # Keep probing while work is in flight or arrivals are still due;
        # once both are exhausted the run's outcome is sealed and further
        # sweeps would only keep an otherwise-idle engine alive.
        if self._inflight or now < self.watch_until:
            self._schedule_sweep()

    def _handle_unhealthy(self, index: int, now: float, *, crashed: bool) -> None:
        """Apply the replica-level recovery action to the node's in-flight work."""
        entries = [e for e in self._inflight.values() if e.node == index]
        if not entries:
            return
        if crashed or self.recovery.config.failover_on_unreachable:
            for entry in entries:
                self._failover(entry, now)
        else:
            # Unreachable but executing: drain in place.  The completion
            # gate accepts the partitioned owner's completions, so the
            # work is not lost — only new dispatches avoid the node.
            self.recovery.note_drain(
                index, now, [e.batch.batch_id for e in entries]
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, batch: Batch) -> None:
        """Route one arriving batch to a healthy replica (or shed it)."""
        now = self.engine.now
        target = self._pick_target(batch, exclude=frozenset())
        if target is None:
            self._shed(batch, now, where="no-healthy-replica")
            return
        entry = _InFlight(batch, target, self.nodes[target].incarnation)
        self._inflight[batch.batch_id] = entry
        self.dispatched_batches += 1
        self._send(entry, now, from_node=None)

    def _pick_target(
        self, batch: Batch, exclude: frozenset
    ) -> Optional[int]:
        """Affinity-preferred, else least-loaded healthy node (seeded ties)."""
        candidates = [
            i
            for i in range(len(self.nodes))
            if self.recovery.healthy(i) and i not in exclude
        ]
        if not candidates:
            return None
        key = None
        if self.affinity is not None:
            key = self.affinity(batch)
            home = self._affinity_map.get(key)
            if home in candidates:
                if not (self.advisor is not None and self.advisor()):
                    return home
                # Fast burn: ignore stickiness, fall through to spread.
                self.advisory_spreads += 1
        if len(candidates) == 1:
            # Skip the RNG draw entirely: a one-replica cluster must
            # consume no randomness (bit-identity with the plain server).
            target = candidates[0]
        else:
            loads = {i: self.node_load(i) for i in candidates}
            floor = min(loads.values())
            best = [i for i in candidates if loads[i] == floor]
            target = best[0] if len(best) == 1 else self.rng.choice(best)
        if key is not None:
            self._affinity_map[key] = target
        return target

    def _send(
        self, entry: _InFlight, now: float, *, from_node: Optional[int]
    ) -> None:
        """Deliver the entry's batch to its node, pricing cross-node hops."""
        target = entry.node
        if not self.recovery.healthy(target):  # pragma: no cover - invariant
            self.unhealthy_dispatches += 1
        source = self.home if from_node is None else from_node
        if source == target:
            self.nodes[target].submit(entry.batch)
            return
        delay = self.interconnect.batch_transfer_us(entry.batch)
        generation = entry.generation
        batch_id = entry.batch.batch_id

        def _deliver() -> None:
            live = self._inflight.get(batch_id)
            # Stale wire copy: the batch was re-routed or went terminal
            # while in transfer.  Drop it — the new owner has its own copy.
            if live is not entry or entry.generation != generation:
                return
            self.nodes[entry.node].submit(entry.batch)

        self.engine.schedule(delay, _deliver, priority=10)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _failover(self, entry: _InFlight, now: float) -> None:
        """Move one batch off its failed node, within its retry budget."""
        batch = entry.batch
        failed = entry.node
        if not self.recovery.allow_failover(batch.batch_id):
            self._shed(batch, now, where="failover-exhausted")
            self.recovery.note_shed(
                failed, now, batch.batch_id,
                f"failover budget ({self.recovery.config.max_failovers}) "
                "exhausted",
                batch.size,
            )
            return
        exclude = frozenset(
            node
            for node, incarnation in entry.hosted
            if self.nodes[node].incarnation == incarnation
        )
        target = self._pick_target(batch, exclude=exclude)
        if target is None:
            self._shed(batch, now, where="no-healthy-replica")
            self.recovery.note_shed(
                failed, now, batch.batch_id,
                "no healthy replica to fail over to", batch.size,
            )
            return
        entry.node = target
        entry.generation += 1
        entry.hosted.add((target, self.nodes[target].incarnation))
        attempt = self.recovery.failover_attempts(batch.batch_id)
        self.recovery.note_failover(failed, now, batch.batch_id, target)
        if self.bus is not None:
            self.bus.publish(
                RequestsFailedOver(
                    time_us=now,
                    batch_id=batch.batch_id,
                    rids=tuple(r.rid for r in batch.requests),
                    from_node=failed,
                    to_node=target,
                    attempt=attempt,
                )
            )
        self._send(entry, now, from_node=failed)

    # ------------------------------------------------------------------
    # Terminal paths
    # ------------------------------------------------------------------
    def _shed(self, batch: Batch, now: float, *, where: str) -> None:
        """Terminally drop a batch (liveness over completeness)."""
        self._inflight.pop(batch.batch_id, None)
        batch.shed()
        self.shed_requests += batch.size
        if self.bus is not None:
            self.bus.publish(
                RequestsShed.from_requests(
                    batch.requests, now, batch_id=batch.batch_id, where=where
                )
            )

    def accept_completion(self, node_index: int, batch: Batch, time: float) -> bool:
        """Completion gate: only the batch's current owner may complete it."""
        entry = self._inflight.get(batch.batch_id)
        if entry is None or entry.node != node_index:
            self.rejected_completions += 1
            return False
        del self._inflight[batch.batch_id]
        self.completed_requests += batch.size
        return True
