"""CLI: ``python -m repro chaos`` — seeded chaos runs against the cluster.

Examples::

    # 3 replicas, one random mid-run crash, seeded schedule:
    python -m repro chaos --replicas 3 --crashes 1 --seed 7

    # Bit-for-bit replay check (runs the scenario twice, compares
    # fingerprints) plus the merged Perfetto timeline artifact:
    python -m repro chaos --verify-replay --timeline chaos_timeline.json

    # The zero-cost contract, runnable: a one-replica cluster must equal
    # the plain server bit-for-bit:
    python -m repro chaos --check-identity

Exit status is non-zero when an invariant fails, a replay diverges, or
the identity check finds a difference — which is what the CI job keys on.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.cli import install_log_handler, workload_parent

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Chaos-test a replicated serving cluster.",
        parents=[
            workload_parent(
                model_default="OPT-30B",
                rate_default=60.0,
                requests_default=36,
                batch_default=2,
                seed_default=0,
            )
        ],
    )
    cluster = parser.add_argument_group("cluster")
    cluster.add_argument("--replicas", type=int, default=3,
                         help="replicated serving nodes (default 3)")
    cluster.add_argument("--layers", type=int, default=4, metavar="N",
                         help="scale the model to N layers (0 = full model)")
    faults = parser.add_argument_group("failure schedule")
    faults.add_argument("--crashes", type=int, default=1,
                        help="node crashes to draw (default 1)")
    faults.add_argument("--partitions", type=int, default=0,
                        help="network partitions to draw")
    faults.add_argument("--degradations", type=int, default=0,
                        help="whole-node stragglers to draw")
    checks = parser.add_argument_group("invariants and artifacts")
    checks.add_argument("--min-goodput", type=float, default=0.5,
                        help="completed/admitted floor (default 0.5)")
    checks.add_argument("--verify-replay", action="store_true",
                        help="run the scenario twice and require "
                             "bit-identical fingerprints")
    checks.add_argument("--check-identity", action="store_true",
                        help="check the 1-replica cluster reproduces the "
                             "plain server bit-for-bit, then exit")
    checks.add_argument("--timeline", metavar="PATH", default=None,
                        help="write the merged Perfetto timeline JSON")
    checks.add_argument("--metrics", metavar="PATH", default=None,
                        help="write the Prometheus text exposition")
    parser.add_argument("--log-level", default=None,
                        help="stderr logging for repro.* (e.g. INFO)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro chaos``; returns the exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    install_log_handler(args.log_level, parser)

    from repro.cluster.chaos import (
        ChaosConfig,
        check_single_replica_identity,
        run_chaos,
    )

    config = ChaosConfig(
        replicas=args.replicas,
        strategy=args.strategy,
        model=args.model,
        node=args.node,
        gpus=args.gpus,
        layers=args.layers,
        num_requests=args.requests,
        rate=args.rate,
        batch_size=args.batch,
        crashes=args.crashes,
        partitions=args.partitions,
        degradations=args.degradations,
        seed=args.seed,
        min_goodput=args.min_goodput,
        record_trace=args.timeline is not None,
    )

    if args.check_identity:
        identical, fp_server, fp_cluster = check_single_replica_identity(
            dataclasses.replace(
                config, replicas=1, crashes=0, partitions=0, degradations=0
            )
        )
        print(f"server  fingerprint: {fp_server}")
        print(f"cluster fingerprint: {fp_cluster}")
        print(
            "single-replica identity: "
            + ("bit-identical" if identical else "DIVERGED")
        )
        return 0 if identical else 1

    observability = None
    if args.timeline is not None or args.metrics is not None:
        from repro.obs.observability import Observability

        observability = Observability()

    report = run_chaos(config, observability=observability)
    print(report.describe())

    status = 0 if report.ok else 1
    if args.verify_replay:
        replay = run_chaos(config)
        identical = replay.fingerprint == report.fingerprint
        print(
            f"replay (seed={config.seed}): "
            + ("bit-identical" if identical else "DIVERGED")
        )
        if not identical:
            status = 1

    if observability is not None:
        if args.metrics is not None:
            observability.save_prometheus(args.metrics)
            print(f"wrote metrics to {args.metrics}")
        if args.timeline is not None:
            counts = observability.save_merged_trace(
                args.timeline, traces=report.result.traces
            )
            print(
                f"wrote merged timeline to {args.timeline} "
                f"({counts['kernel']} kernels, {counts['span']} span rows, "
                f"{counts['instant']} instants)"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    sys.exit(main())
