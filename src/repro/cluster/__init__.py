"""Fault-tolerant replicated serving: cluster nodes, router, chaos.

Production serving replicates the single-node stack: N identical model
replicas behind a router that health-checks them, balances new work onto
the least-loaded healthy replica, and fails in-flight work over when a
node dies.  This package builds that tier on the existing simulator —
every replica is a full :class:`~repro.serving.server.Server` on a
**shared** engine (one simulated clock for the whole cluster):

* :mod:`repro.cluster.interconnect` — the cross-node network, priced
  alpha-beta (:class:`CrossNodeInterconnect`);
* :mod:`repro.cluster.node` — :class:`ClusterNode`: one replica with
  crash/recover (fresh-incarnation) semantics;
* :mod:`repro.cluster.router` — :class:`Router`: health sweeps,
  affinity + least-loaded dispatch, failover with a retry budget, and the
  exactly-once completion gate;
* :mod:`repro.cluster.cluster` — :class:`Cluster`: construction, fault
  scheduling, the run loop, and :class:`ClusterResult`;
* :mod:`repro.cluster.chaos` — the seeded chaos harness
  (:func:`run_chaos`) and the runnable zero-cost identity check, also
  reachable as ``python -m repro chaos``.

Quickstart::

    from repro.cluster import Cluster
    from repro.faults import FaultPlan, NodeCrash
    from repro.hw import v100_nvlink_node
    from repro.models import OPT_30B
    from repro.serving.workload import general_trace

    cluster = Cluster(
        OPT_30B.scaled_layers(4), v100_nvlink_node(4), replicas=3,
        fault_plan=FaultPlan([NodeCrash(start=50_000, end=400_000, node=1)]),
        check_memory=False,
    )
    result = cluster.run(general_trace(24, 40.0, 2, seed=0))
    print(result.summary())
    print(result.resilience.describe())
"""

from repro.cluster.chaos import (
    ChaosConfig,
    ChaosReport,
    check_single_replica_identity,
    run_chaos,
)
from repro.cluster.cluster import Cluster, ClusterResult
from repro.cluster.interconnect import CrossNodeInterconnect, batch_payload_bytes
from repro.cluster.node import ClusterNode
from repro.cluster.router import Router

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "Cluster",
    "ClusterNode",
    "ClusterResult",
    "CrossNodeInterconnect",
    "Router",
    "batch_payload_bytes",
    "check_single_replica_identity",
    "run_chaos",
]
