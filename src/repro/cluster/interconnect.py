"""Cross-node interconnect: pricing the network between cluster nodes.

Intra-node communication is priced by the NVLink/PCIe alpha-beta model in
:mod:`repro.sim.interconnect`.  Between *nodes* the router moves request
payloads (dispatch and failover re-dispatch), and that network is a
different beast: commodity Ethernet/InfiniBand with per-message latencies
two orders of magnitude above an NVLink hop and bandwidth an order below
the all-reduce bus.  Following the communication-characterization
treatment (alpha-beta with an explicit per-message software overhead —
the dominant term for the small control-plane payloads a router moves),
the cost of shipping ``S`` bytes carrying ``n`` requests is::

    alpha + n * per_request_us + S / bandwidth

Defaults model a 100 GbE datacenter fabric: 25 µs base latency (kernel
bypass is not assumed), 12.5 GB/s line rate, and ~1 µs of serialization
per request.  The router charges this cost only on *cross*-node sends; a
dispatch to the router's own colocated node is free, which is what makes
the one-replica cluster bit-identical to a plain server run (the
zero-cost convention).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["CrossNodeInterconnect", "batch_payload_bytes"]

#: Wire bytes per request beyond its token payload: framing, routing
#: metadata, sampling parameters.
_REQUEST_HEADER_BYTES = 256
#: Bytes per prompt token on the wire (int32 token ids).
_BYTES_PER_TOKEN = 4


def batch_payload_bytes(batch) -> int:
    """Wire size of one batch: token ids plus a fixed header per request."""
    return sum(
        r.seq_len * _BYTES_PER_TOKEN + _REQUEST_HEADER_BYTES
        for r in batch.requests
    )


@dataclass(frozen=True)
class CrossNodeInterconnect:
    """Alpha-beta cost model for the network between cluster nodes."""

    #: Per-message base latency (µs): NIC traversal, switching, the
    #: receive-side wakeup.
    latency_us: float = 25.0
    #: Line-rate bandwidth in GB/s (12.5 GB/s = 100 GbE).
    bandwidth_gbps: float = 12.5
    #: Per-request serialization/deserialization overhead (µs).
    per_request_us: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_us < 0:
            raise ConfigError(f"latency_us must be >= 0, got {self.latency_us}")
        if self.bandwidth_gbps <= 0:
            raise ConfigError(
                f"bandwidth_gbps must be > 0, got {self.bandwidth_gbps}"
            )
        if self.per_request_us < 0:
            raise ConfigError(
                f"per_request_us must be >= 0, got {self.per_request_us}"
            )

    def transfer_us(self, nbytes: float, num_requests: int = 1) -> float:
        """Time (µs) to move ``nbytes`` carrying ``num_requests`` requests."""
        if nbytes < 0:
            raise ConfigError(f"transfer size must be >= 0, got {nbytes}")
        if num_requests < 0:
            raise ConfigError("num_requests must be >= 0")
        return (
            self.latency_us
            + num_requests * self.per_request_us
            + nbytes / (self.bandwidth_gbps * 1e9) * 1e6
        )

    def batch_transfer_us(self, batch) -> float:
        """Cost of shipping one batch between nodes."""
        return self.transfer_us(batch_payload_bytes(batch), batch.size)
