"""The multi-GPU multi-stream scheduler — Algorithm 1 (§3.3–§3.4).

The scheduler manages a *waiting queue* of assembled batches and a
fixed-size *processing list* of batches currently being interleaved.  Each
planning step produces one :class:`Round`:

1. **Primary subset** (``SubSet0``): pop kernels from the primary batch
   (the oldest in the processing list) until the kernel type switches from
   computation to communication or vice versa — a maximal same-type run,
   whose accumulated no-load duration defines the overlap window.
2. **Secondary subset** (``SubSet1``): walk the *subsequent* batches in
   arrival order and pop kernels of the *opposite* type while their
   contention-anticipated durations (§3.5) fit in the remaining window.  A
   kernel too long for the residual window is split by runtime kernel
   decomposition (§3.6) and its remainder pushed back.

The two subsets are launched onto two streams per GPU and run concurrently;
design Principles 1–3 (§3.3) map to: the primary batch's kernels are never
delayed by same-type interlopers (1), any mix of input sizes schedules
because fitting is by measured duration (2), and the window is packed as
full as anticipation allows (3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.core.assembly import FuncVec, KernelFunc
from repro.core.contention import ContentionAnticipator
from repro.core.decomposition import DecompositionPlanner
from repro.core.policy import LigerDichotomyPolicy, SchedulingPolicy
from repro.errors import ConfigError, SchedulingError
from repro.sim.kernel import KernelKind

__all__ = ["Round", "LigerScheduler"]


@dataclass
class Round:
    """One scheduling step: two duration-matched kernel subsets."""

    index: int
    primary_kind: KernelKind
    subset0: List[KernelFunc]
    subset1: List[KernelFunc]
    window: float              # accumulated no-load duration of subset0
    secondary_fill: float      # anticipated duration packed into subset1
    primary_class: str = ""    # policy resource class of the primary run

    def __post_init__(self) -> None:
        if not self.subset0:
            # A scheduling invariant, not a configuration mistake: Algorithm 1
            # only produces a round after popping at least one primary kernel.
            raise SchedulingError("a round requires a non-empty primary subset")

    @property
    def fill_fraction(self) -> float:
        """How much of the window the secondary subset occupies (≤ 1)."""
        return self.secondary_fill / self.window if self.window > 0 else 0.0

    def validate_principle1(self) -> None:
        """Assert the secondary subset cannot outlive the primary window."""
        if self.secondary_fill > self.window * (1 + 1e-9):
            raise SchedulingError(
                f"round {self.index}: secondary fill {self.secondary_fill:.1f}us "
                f"exceeds primary window {self.window:.1f}us"
            )


class LigerScheduler:
    """Waiting queue + processing list + Algorithm 1."""

    def __init__(
        self,
        *,
        anticipator: ContentionAnticipator,
        decomposer: Optional[DecompositionPlanner] = None,
        max_inflight: int = 4,
        packing: str = "first_fit",
        policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        #: The programmable half of Algorithm 1 (repro.core.policy): owns
        #: resource classification, primary delimitation, and secondary
        #: packing.  Defaults to the paper's dichotomy.
        self.policy = policy or LigerDichotomyPolicy(packing=packing)
        self.anticipator = anticipator
        self.decomposer = decomposer
        if decomposer is not None:
            self.policy.configure_decomposer(decomposer)
        self.max_inflight = max_inflight
        self.packing = self.policy.packing
        #: Optional memory-aware admission gate: called with a FuncVec before
        #: it moves from the waiting queue to the processing list; returning
        #: False keeps it (and everything behind it) waiting.  Lets the
        #: runtime bound interleaving depth by *available HBM*, not just the
        #: configured processing-list size.
        self.admission_check = lambda fv: True
        self.waiting: Deque[FuncVec] = deque()
        self.processing: List[FuncVec] = []
        self.rounds_planned = 0
        #: FuncVecs fully consumed in the last planning call (batch drained
        #: from the scheduler's perspective; kernels may still be running).
        self.drained: List[FuncVec] = []

    # ------------------------------------------------------------------
    # Queue management (§3.3: "As tasks are completed and removed from the
    # processing list, a new task is fetched from the waiting queue").
    # ------------------------------------------------------------------
    def enqueue(self, funcvec: FuncVec) -> None:
        """Add an assembled batch to the waiting queue (refills processing)."""
        self.waiting.append(funcvec)
        self._refill()

    def _refill(self) -> None:
        while self.waiting and len(self.processing) < self.max_inflight:
            if not self.admission_check(self.waiting[0]):
                if not self.processing:
                    # Nothing is draining, so the resource can never free:
                    # admit anyway and let the resource owner raise.
                    self.processing.append(self.waiting.popleft())
                    continue
                break  # wait for an in-flight batch to release resources
            self.processing.append(self.waiting.popleft())

    def _sweep_drained(self) -> None:
        kept: List[FuncVec] = []
        for fv in self.processing:
            if fv.empty:
                self.drained.append(fv)
            else:
                kept.append(fv)
        self.processing = kept
        self._refill()

    @property
    def has_work(self) -> bool:
        return bool(self.processing) or bool(self.waiting)

    def take_drained(self) -> List[FuncVec]:
        """Pop-and-clear the list of fully-consumed FuncVecs."""
        out, self.drained = self.drained, []
        return out

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def plan_round(self, record: Optional[List] = None) -> Optional[Round]:
        """Produce the next round, or None when no work is available."""
        self._sweep_drained()
        return self.plan_swept(record)

    def plan_swept(self, record: Optional[List] = None) -> Optional[Round]:
        """Algorithm 1 proper, assuming :meth:`_sweep_drained` already ran.

        The split from :meth:`plan_round` exists for the schedule-plan cache
        (:mod:`repro.core.plan_cache`): the sweep mutates the processing list,
        so the cache fingerprints *after* it and replays *instead of* the rest.
        When ``record`` is a list it receives the secondary-subset packing
        actions — ``(processing_index, None)`` for a whole-kernel pop and
        ``(processing_index, (piece, rest))`` for a decomposition — enough to
        replay this round's decisions without re-running the algorithm.
        """
        if not self.processing:
            return None
        primary = self.processing[0]

        # --- collect kernels from the primary batch (lines 3–9) ---------
        # Decision (b): the policy delimits the run and sizes the window.
        subset0, window, kind = self.policy.collect_primary(primary)
        primary_class = self.policy.resource_class(subset0[0])

        # --- collect eligible kernels from subsequent batches -----------
        # (lines 10–20, plus §3.5 anticipation and §3.6 decomposition;
        # decision (c): eligibility and packing belong to the policy)
        subset1, fill = self.policy.pack_secondary(
            self, primary_class, kind, window, record
        )

        round_ = Round(
            index=self.rounds_planned,
            primary_kind=kind,
            subset0=subset0,
            subset1=subset1,
            window=window,
            secondary_fill=fill,
            primary_class=primary_class,
        )
        self.policy.validate_round(round_)
        self.rounds_planned += 1
        self._sweep_drained()
        return round_
