"""The multi-GPU multi-stream scheduler — Algorithm 1 (§3.3–§3.4).

The scheduler manages a *waiting queue* of assembled batches and a
fixed-size *processing list* of batches currently being interleaved.  Each
planning step produces one :class:`Round`:

1. **Primary subset** (``SubSet0``): pop kernels from the primary batch
   (the oldest in the processing list) until the kernel type switches from
   computation to communication or vice versa — a maximal same-type run,
   whose accumulated no-load duration defines the overlap window.
2. **Secondary subset** (``SubSet1``): walk the *subsequent* batches in
   arrival order and pop kernels of the *opposite* type while their
   contention-anticipated durations (§3.5) fit in the remaining window.  A
   kernel too long for the residual window is split by runtime kernel
   decomposition (§3.6) and its remainder pushed back.

The two subsets are launched onto two streams per GPU and run concurrently;
design Principles 1–3 (§3.3) map to: the primary batch's kernels are never
delayed by same-type interlopers (1), any mix of input sizes schedules
because fitting is by measured duration (2), and the window is packed as
full as anticipation allows (3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.core.assembly import FuncVec, KernelFunc
from repro.core.contention import ContentionAnticipator
from repro.core.decomposition import DecompositionPlanner
from repro.errors import ConfigError, SchedulingError
from repro.sim.kernel import KernelKind

__all__ = ["Round", "LigerScheduler"]


@dataclass
class Round:
    """One scheduling step: two duration-matched kernel subsets."""

    index: int
    primary_kind: KernelKind
    subset0: List[KernelFunc]
    subset1: List[KernelFunc]
    window: float              # accumulated no-load duration of subset0
    secondary_fill: float      # anticipated duration packed into subset1

    def __post_init__(self) -> None:
        if not self.subset0:
            # A scheduling invariant, not a configuration mistake: Algorithm 1
            # only produces a round after popping at least one primary kernel.
            raise SchedulingError("a round requires a non-empty primary subset")

    @property
    def fill_fraction(self) -> float:
        """How much of the window the secondary subset occupies (≤ 1)."""
        return self.secondary_fill / self.window if self.window > 0 else 0.0

    def validate_principle1(self) -> None:
        """Assert the secondary subset cannot outlive the primary window."""
        if self.secondary_fill > self.window * (1 + 1e-9):
            raise SchedulingError(
                f"round {self.index}: secondary fill {self.secondary_fill:.1f}us "
                f"exceeds primary window {self.window:.1f}us"
            )


class LigerScheduler:
    """Waiting queue + processing list + Algorithm 1."""

    def __init__(
        self,
        *,
        anticipator: ContentionAnticipator,
        decomposer: Optional[DecompositionPlanner] = None,
        max_inflight: int = 4,
        packing: str = "first_fit",
    ) -> None:
        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if packing not in ("first_fit", "best_fit"):
            raise ConfigError(
                f"packing must be 'first_fit' or 'best_fit', got {packing!r}"
            )
        self.anticipator = anticipator
        self.decomposer = decomposer
        self.max_inflight = max_inflight
        self.packing = packing
        #: Optional memory-aware admission gate: called with a FuncVec before
        #: it moves from the waiting queue to the processing list; returning
        #: False keeps it (and everything behind it) waiting.  Lets the
        #: runtime bound interleaving depth by *available HBM*, not just the
        #: configured processing-list size.
        self.admission_check = lambda fv: True
        self.waiting: Deque[FuncVec] = deque()
        self.processing: List[FuncVec] = []
        self.rounds_planned = 0
        #: FuncVecs fully consumed in the last planning call (batch drained
        #: from the scheduler's perspective; kernels may still be running).
        self.drained: List[FuncVec] = []

    # ------------------------------------------------------------------
    # Queue management (§3.3: "As tasks are completed and removed from the
    # processing list, a new task is fetched from the waiting queue").
    # ------------------------------------------------------------------
    def enqueue(self, funcvec: FuncVec) -> None:
        """Add an assembled batch to the waiting queue (refills processing)."""
        self.waiting.append(funcvec)
        self._refill()

    def _refill(self) -> None:
        while self.waiting and len(self.processing) < self.max_inflight:
            if not self.admission_check(self.waiting[0]):
                if not self.processing:
                    # Nothing is draining, so the resource can never free:
                    # admit anyway and let the resource owner raise.
                    self.processing.append(self.waiting.popleft())
                    continue
                break  # wait for an in-flight batch to release resources
            self.processing.append(self.waiting.popleft())

    def _sweep_drained(self) -> None:
        kept: List[FuncVec] = []
        for fv in self.processing:
            if fv.empty:
                self.drained.append(fv)
            else:
                kept.append(fv)
        self.processing = kept
        self._refill()

    @property
    def has_work(self) -> bool:
        return bool(self.processing) or bool(self.waiting)

    def take_drained(self) -> List[FuncVec]:
        """Pop-and-clear the list of fully-consumed FuncVecs."""
        out, self.drained = self.drained, []
        return out

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def plan_round(self, record: Optional[List] = None) -> Optional[Round]:
        """Produce the next round, or None when no work is available."""
        self._sweep_drained()
        return self.plan_swept(record)

    def plan_swept(self, record: Optional[List] = None) -> Optional[Round]:
        """Algorithm 1 proper, assuming :meth:`_sweep_drained` already ran.

        The split from :meth:`plan_round` exists for the schedule-plan cache
        (:mod:`repro.core.plan_cache`): the sweep mutates the processing list,
        so the cache fingerprints *after* it and replays *instead of* the rest.
        When ``record`` is a list it receives the secondary-subset packing
        actions — ``(processing_index, None)`` for a whole-kernel pop and
        ``(processing_index, (piece, rest))`` for a decomposition — enough to
        replay this round's decisions without re-running the algorithm.
        """
        if not self.processing:
            return None
        primary = self.processing[0]

        # --- collect kernels from the primary batch (lines 3–9) ---------
        subset0: List[KernelFunc] = []
        window = 0.0
        kind = primary.head_kind()
        while not primary.empty:
            switches = primary.next_switches()
            func = primary.pop()
            window += func.duration
            subset0.append(func)
            if switches:
                kind = func.kind
                break

        # --- collect opposite-type kernels from subsequent batches ------
        # (lines 10–20, plus §3.5 anticipation and §3.6 decomposition)
        if self.packing == "best_fit":
            subset1, fill = self._pack_best_fit(kind, window, record)
        else:
            subset1, fill = self._pack_first_fit(kind, window, record)

        round_ = Round(
            index=self.rounds_planned,
            primary_kind=kind,
            subset0=subset0,
            subset1=subset1,
            window=window,
            secondary_fill=fill,
        )
        round_.validate_principle1()
        self.rounds_planned += 1
        self._sweep_drained()
        return round_

    # ------------------------------------------------------------------
    # Secondary-subset packing policies
    # ------------------------------------------------------------------
    def _pack_first_fit(self, kind, window: float, record: Optional[List] = None):
        """The paper's policy: walk subsequent batches in arrival order."""
        subset1: List[KernelFunc] = []
        fill = 0.0
        remaining = window
        for idx, fv in enumerate(self.processing[1:], start=1):
            while remaining > 0 and not fv.empty:
                nxt = fv.peek()
                if nxt.same_type_as(kind):
                    # Principle 1: same-type kernels must not interfere with
                    # the primary batch; this batch is stuck until a later
                    # round of the opposite kind.
                    break
                anticipated = self.anticipator.anticipated(nxt.duration, nxt.kind)
                if anticipated <= remaining:
                    fv.pop()
                    subset1.append(nxt)
                    if record is not None:
                        record.append((idx, None))
                    fill += anticipated
                    remaining -= anticipated
                    continue
                # Too long: try runtime decomposition (§3.6).
                split = None
                if self.decomposer is not None:
                    split = self.decomposer.split_to_fit(
                        nxt,
                        remaining,
                        scale=self.anticipator.scale(nxt.kind),
                    )
                if split is None:
                    remaining = 0.0  # window effectively unusable (line 15)
                    break
                piece, rest = split
                fv.pop()
                fv.push_front(rest)
                subset1.append(piece)
                if record is not None:
                    record.append((idx, (piece, rest)))
                anticipated_piece = self.anticipator.anticipated(
                    piece.duration, piece.kind
                )
                fill += anticipated_piece
                remaining -= anticipated_piece
                break  # residual window is below the smallest division
        return subset1, fill

    def _pack_best_fit(self, kind, window: float, record: Optional[List] = None):
        """Extension: greedy best-fit over eligible batch heads.

        Only the *head* kernel of each subsequent batch is eligible (batch
        order is a data dependency), so this is an online greedy: at each
        step take the largest opposite-type head whose anticipated duration
        fits the residual window; fall back to decomposing the largest head
        when nothing fits whole.  Trades the paper's arrival-order fairness
        for higher window fill.
        """
        subset1: List[KernelFunc] = []
        fill = 0.0
        remaining = window
        while remaining > 0:
            eligible = [
                fv
                for fv in self.processing[1:]
                if not fv.empty and not fv.peek().same_type_as(kind)
            ]
            if not eligible:
                break
            fitting = [
                fv
                for fv in eligible
                if self.anticipator.anticipated(
                    fv.peek().duration, fv.peek().kind
                )
                <= remaining
            ]
            if fitting:
                fv = max(
                    fitting,
                    key=lambda v: self.anticipator.anticipated(
                        v.peek().duration, v.peek().kind
                    ),
                )
                if record is not None:
                    record.append((self.processing.index(fv), None))
                func = fv.pop()
                anticipated = self.anticipator.anticipated(func.duration, func.kind)
                subset1.append(func)
                fill += anticipated
                remaining -= anticipated
                continue
            # Nothing fits whole: decompose the largest eligible head.
            if self.decomposer is None:
                break
            best_split = None
            best_fv = None
            for fv in eligible:
                split = self.decomposer.split_to_fit(
                    fv.peek(), remaining, scale=self.anticipator.scale(fv.peek().kind)
                )
                if split is None:
                    continue
                if best_split is None or split[0].duration > best_split[0].duration:
                    best_split = split
                    best_fv = fv
            if best_split is None:
                break
            piece, rest = best_split
            assert best_fv is not None
            if record is not None:
                record.append((self.processing.index(best_fv), (piece, rest)))
            best_fv.pop()
            best_fv.push_front(rest)
            subset1.append(piece)
            anticipated_piece = self.anticipator.anticipated(piece.duration, piece.kind)
            fill += anticipated_piece
            remaining -= anticipated_piece
            break  # residual window is below the smallest division
        return subset1, fill
