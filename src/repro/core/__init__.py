"""Liger's core: function assembly, Algorithm-1 scheduling, hybrid
synchronization, contention anticipation, and runtime kernel decomposition.

This subpackage is the paper's primary contribution; the hardware it drives
lives in :mod:`repro.sim` and the strategy adapter the serving layer uses is
:class:`repro.parallel.interleaved.InterleavedStrategy`.
"""

from repro.core.assembly import FuncVec, FunctionAssembler, KernelFunc
from repro.core.config import LigerConfig, SyncMode
from repro.core.contention import (
    NO_ANTICIPATION,
    AdaptiveAnticipator,
    ContentionAnticipator,
)
from repro.core.decomposition import (
    DecompositionPlanner,
    split_all_to_all,
    split_allreduce,
    split_gemm_horizontal,
    split_gemm_vertical,
)
from repro.core.plan_cache import SchedulePlanCache
from repro.core.policy import (
    POLICIES,
    ExpertOverlapPolicy,
    LigerDichotomyPolicy,
    SchedulingPolicy,
    default_resource_class,
    make_policy,
    policy_names,
)
from repro.core.runtime import LigerRuntime, RuntimeStats
from repro.core.scheduler import LigerScheduler, Round

__all__ = [
    "KernelFunc",
    "FuncVec",
    "FunctionAssembler",
    "LigerConfig",
    "SyncMode",
    "ContentionAnticipator",
    "AdaptiveAnticipator",
    "NO_ANTICIPATION",
    "DecompositionPlanner",
    "split_gemm_vertical",
    "split_gemm_horizontal",
    "split_allreduce",
    "split_all_to_all",
    "SchedulingPolicy",
    "LigerDichotomyPolicy",
    "ExpertOverlapPolicy",
    "POLICIES",
    "make_policy",
    "policy_names",
    "default_resource_class",
    "LigerScheduler",
    "Round",
    "SchedulePlanCache",
    "LigerRuntime",
    "RuntimeStats",
]
