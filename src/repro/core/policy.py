"""Pluggable scheduling policies — programmable Algorithm 1.

Historically :class:`~repro.core.scheduler.LigerScheduler` hard-coded the
paper's compute/communication dichotomy: the primary subset was a maximal
same-:class:`~repro.sim.kernel.KernelKind` run and the secondary subset was
packed from the *opposite* kind.  That bakes one workload family into the
core — any new kernel mix (all-to-all expert dispatch, draft/verify decode)
would have to fork the scheduler.

This module extracts the three decisions Algorithm 1 makes into a
:class:`SchedulingPolicy`:

(a) **resource classification** — map each :class:`KernelFunc` onto a
    *resource class* (compute / NVLink collective / all-to-all / p2p),
    generalizing the binary ``is_comm`` check;
(b) **primary delimitation** — where the primary run ends and how large the
    overlap window is;
(c) **secondary selection + packing** — which kernels are eligible for the
    window and how they are packed (first-fit / best-fit live here now).

The stock behavior is rebased verbatim as :class:`LigerDichotomyPolicy` and
is pinned bit-identical against the golden traces.  The first new policy is
:class:`ExpertOverlapPolicy`, which interleaves MoE expert GEMMs against
all-to-all dispatch/combine by blocking only the *same resource class* as
the primary run (Principle 1 per resource class instead of per kind).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.assembly import FuncVec, KernelFunc
from repro.errors import ConfigError
from repro.sim.kernel import KernelKind

__all__ = [
    "RC_COMPUTE",
    "RC_NVLINK",
    "RC_ALL_TO_ALL",
    "RC_P2P",
    "RESOURCE_CLASSES",
    "default_resource_class",
    "SchedulingPolicy",
    "LigerDichotomyPolicy",
    "ExpertOverlapPolicy",
    "POLICIES",
    "make_policy",
    "policy_names",
]

# ----------------------------------------------------------------------
# Resource classes
# ----------------------------------------------------------------------
#: Compute-like kernels (GEMMs, attention, elementwise, memory traffic).
RC_COMPUTE = "compute"
#: Ring collectives over NVLink (all-reduce / all-gather / reduce-scatter).
RC_NVLINK = "nvlink_collective"
#: All-to-all personalized exchange (MoE expert dispatch/combine).
RC_ALL_TO_ALL = "all_to_all"
#: Point-to-point transfers (pipeline activation handoff).
RC_P2P = "p2p"

RESOURCE_CLASSES = (RC_COMPUTE, RC_NVLINK, RC_ALL_TO_ALL, RC_P2P)


def default_resource_class(func: KernelFunc) -> str:
    """Classify a kernel function onto the resource it contends for."""
    flavour = func.op.op
    if flavour == "all_to_all":
        return RC_ALL_TO_ALL
    if flavour == "p2p":
        return RC_P2P
    if func.is_comm:
        return RC_NVLINK
    return RC_COMPUTE


# ----------------------------------------------------------------------
# The policy protocol
# ----------------------------------------------------------------------
class SchedulingPolicy:
    """Owns the three programmable decisions of Algorithm 1.

    Subclasses override :meth:`collect_primary` (decision b) and
    :meth:`blocks` (the eligibility half of decision c); resource
    classification (decision a) defaults to :func:`default_resource_class`.
    The packing machinery itself — first-fit in arrival order or greedy
    best-fit over batch heads, with §3.6 decomposition fallback — is shared
    on the base class so every policy gets both packers and the plan-cache
    ``record`` protocol for free.
    """

    #: Registry / cache-key identity.  Subclasses must override.
    name = "abstract"

    def __init__(self, *, packing: str = "first_fit") -> None:
        if packing not in ("first_fit", "best_fit"):
            raise ConfigError(
                f"packing must be 'first_fit' or 'best_fit', got {packing!r}"
            )
        self.packing = packing

    # -- identity -------------------------------------------------------
    def fingerprint(self) -> Tuple[str, str]:
        """Identity tuple joined into the schedule-plan cache key.

        Two schedulers whose policies fingerprint differently must never
        share a memoized plan — the policy decides the plan's shape.
        """
        return (self.name, self.packing)

    # -- decision (a): resource classification --------------------------
    def resource_class(self, func: KernelFunc) -> str:
        """Name the contended resource ``func`` occupies (RESOURCE_CLASSES)."""
        return default_resource_class(func)

    # -- decision (b): primary run + window ------------------------------
    def collect_primary(
        self, primary: FuncVec
    ) -> Tuple[List[KernelFunc], float, KernelKind]:
        """Pop the primary run off ``primary``; return (subset0, window, kind).

        The window is the run's summed no-load duration — the overlap
        budget ``pack_secondary`` may fill.
        """
        raise NotImplementedError

    # -- decision (c): secondary eligibility + packing -------------------
    def blocks(
        self, func: KernelFunc, primary_class: str, kind: KernelKind
    ) -> bool:
        """True when ``func`` must NOT share the window (Principle 1)."""
        raise NotImplementedError

    def pack_secondary(
        self,
        scheduler,
        primary_class: str,
        kind: KernelKind,
        window: float,
        record: Optional[List] = None,
    ) -> Tuple[List[KernelFunc], float]:
        """Select and pack secondary kernels into the window.

        Walks subsequent batches for heads ``blocks`` does not veto,
        packing by the configured discipline (first-fit pops greedily in
        arrival order; best-fit takes the largest fitting head each
        pass).  Returns ``(subset1, fill)`` with ``fill`` in anticipated
        (contention-scaled) time; ``record``, when given, captures the
        pop/split actions for plan-cache replay.
        """
        if self.packing == "best_fit":
            return self._pack_best_fit(
                scheduler, primary_class, kind, window, record
            )
        return self._pack_first_fit(
            scheduler, primary_class, kind, window, record
        )

    # -- validation ------------------------------------------------------
    def validate_round(self, round_) -> None:
        """Per-round invariant check; default is Principle 1."""
        round_.validate_principle1()

    # -- decomposition hooks ---------------------------------------------
    def configure_decomposer(self, planner) -> None:
        """Register policy-specific split rules on a DecompositionPlanner."""

    # ------------------------------------------------------------------
    # Shared packing machinery (moved verbatim from LigerScheduler; the
    # only change is that eligibility goes through :meth:`blocks`).
    # ------------------------------------------------------------------
    def _take_whole(self, scheduler, fv, idx, subset1, record) -> float:
        """Pop an eligible head whole; returns its anticipated duration.

        The shared half of both packers' accept path: pop, collect, record
        the replayable ``(index, None)`` action.
        """
        func = fv.pop()
        subset1.append(func)
        if record is not None:
            record.append((idx, None))
        return scheduler.anticipator.anticipated(func.duration, func.kind)

    def _take_split(self, scheduler, fv, idx, split, subset1, record) -> float:
        """Apply a §3.6 decomposition: pop, push the remainder back, collect
        the piece, record the replayable ``(index, (piece, rest))`` action.
        Returns the piece's anticipated duration.
        """
        piece, rest = split
        fv.pop()
        fv.push_front(rest)
        subset1.append(piece)
        if record is not None:
            record.append((idx, (piece, rest)))
        return scheduler.anticipator.anticipated(piece.duration, piece.kind)

    def _pack_first_fit(
        self, scheduler, primary_class, kind, window, record=None
    ):
        """The paper's policy: walk subsequent batches in arrival order."""
        subset1: List[KernelFunc] = []
        fill = 0.0
        remaining = window
        for idx, fv in enumerate(scheduler.processing[1:], start=1):
            while remaining > 0 and not fv.empty:
                nxt = fv.peek()
                if self.blocks(nxt, primary_class, kind):
                    # Principle 1: kernels contending for the primary run's
                    # resource must not interfere with it; this batch is
                    # stuck until a later round of a different class.
                    break
                anticipated = scheduler.anticipator.anticipated(
                    nxt.duration, nxt.kind
                )
                if anticipated <= remaining:
                    taken = self._take_whole(
                        scheduler, fv, idx, subset1, record
                    )
                    fill += taken
                    remaining -= taken
                    continue
                # Too long: try runtime decomposition (§3.6).
                split = None
                if scheduler.decomposer is not None:
                    split = scheduler.decomposer.split_to_fit(
                        nxt,
                        remaining,
                        scale=scheduler.anticipator.scale(nxt.kind),
                    )
                if split is None:
                    remaining = 0.0  # window effectively unusable (line 15)
                    break
                taken = self._take_split(
                    scheduler, fv, idx, split, subset1, record
                )
                fill += taken
                remaining -= taken
                break  # residual window is below the smallest division
        return subset1, fill

    def _pack_best_fit(
        self, scheduler, primary_class, kind, window, record=None
    ):
        """Extension: greedy best-fit over eligible batch heads.

        Only the *head* kernel of each subsequent batch is eligible (batch
        order is a data dependency), so this is an online greedy: at each
        step take the largest eligible head whose anticipated duration fits
        the residual window; fall back to decomposing the largest head when
        nothing fits whole.  Trades the paper's arrival-order fairness for
        higher window fill.
        """
        subset1: List[KernelFunc] = []
        fill = 0.0
        remaining = window
        while remaining > 0:
            eligible = [
                fv
                for fv in scheduler.processing[1:]
                if not fv.empty
                and not self.blocks(fv.peek(), primary_class, kind)
            ]
            if not eligible:
                break
            fitting = [
                fv
                for fv in eligible
                if scheduler.anticipator.anticipated(
                    fv.peek().duration, fv.peek().kind
                )
                <= remaining
            ]
            if fitting:
                fv = max(
                    fitting,
                    key=lambda v: scheduler.anticipator.anticipated(
                        v.peek().duration, v.peek().kind
                    ),
                )
                taken = self._take_whole(
                    scheduler, fv, scheduler.processing.index(fv),
                    subset1, record,
                )
                fill += taken
                remaining -= taken
                continue
            # Nothing fits whole: decompose the largest eligible head.
            if scheduler.decomposer is None:
                break
            best_split = None
            best_fv = None
            for fv in eligible:
                split = scheduler.decomposer.split_to_fit(
                    fv.peek(),
                    remaining,
                    scale=scheduler.anticipator.scale(fv.peek().kind),
                )
                if split is None:
                    continue
                if (
                    best_split is None
                    or split[0].duration > best_split[0].duration
                ):
                    best_split = split
                    best_fv = fv
            if best_split is None:
                break
            assert best_fv is not None
            taken = self._take_split(
                scheduler, best_fv, scheduler.processing.index(best_fv),
                best_split, subset1, record,
            )
            fill += taken
            remaining -= taken
            break  # residual window is below the smallest division
        return subset1, fill


# ----------------------------------------------------------------------
# Built-in policies
# ----------------------------------------------------------------------
class LigerDichotomyPolicy(SchedulingPolicy):
    """The paper's Algorithm 1, verbatim: compute vs communication.

    Primary run = maximal same-``KernelKind`` prefix of the oldest batch;
    the window is its summed no-load duration; secondary candidates are
    blocked exactly when they are the *same* kind as the run.  This policy
    is the default and is pinned bit-identical to the golden traces.
    """

    name = "dichotomy"

    def collect_primary(self, primary):
        # Algorithm 1 lines 3–9: pop until the kernel type switches.
        subset0: List[KernelFunc] = []
        window = 0.0
        kind = primary.head_kind()
        while not primary.empty:
            switches = primary.next_switches()
            func = primary.pop()
            window += func.duration
            subset0.append(func)
            if switches:
                kind = func.kind
                break
        return subset0, window, kind

    def blocks(self, func, primary_class, kind):
        return func.same_type_as(kind)


class ExpertOverlapPolicy(SchedulingPolicy):
    """MoE expert parallelism: overlap expert GEMMs with all-to-all.

    Generalizes the dichotomy to resource classes: the primary run is a
    maximal same-*resource-class* prefix, and a secondary candidate is
    blocked only when it contends for the **same resource class** as the
    run.  Under an all-to-all dispatch/combine window this admits both
    expert GEMMs *and* NVLink collectives; under a compute window it
    admits either collective flavour — the interleaving the MoE
    communication-characterization literature calls for.

    Also registers the all-to-all byte splitter on the decomposition
    planner so oversized dispatch/combine kernels can be window-fitted.
    """

    name = "expert_overlap"

    def collect_primary(self, primary):
        subset0: List[KernelFunc] = []
        window = 0.0
        kind = primary.head_kind()
        while not primary.empty:
            switches = primary.next_switches_class(self.resource_class)
            func = primary.pop()
            window += func.duration
            subset0.append(func)
            if switches:
                kind = func.kind
                break
        return subset0, window, kind

    def blocks(self, func, primary_class, kind):
        return self.resource_class(func) == primary_class

    def configure_decomposer(self, planner) -> None:
        from repro.core.decomposition import split_all_to_all

        planner.register_split_rule("all_to_all", split_all_to_all)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
POLICIES = {
    LigerDichotomyPolicy.name: LigerDichotomyPolicy,
    ExpertOverlapPolicy.name: ExpertOverlapPolicy,
}


def policy_names() -> Tuple[str, ...]:
    """Registered policy names, sorted (the ``--policy`` choice list)."""
    return tuple(sorted(POLICIES))


def make_policy(name: str, *, packing: str = "first_fit") -> SchedulingPolicy:
    """Construct a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduling policy {name!r}; "
            f"available: {', '.join(policy_names())}"
        ) from None
    return cls(packing=packing)
