"""Contention anticipation for the scheduler (§3.5).

A thin adapter between the offline :class:`~repro.profiling.contention_profiler.ContentionFactors`
and Algorithm 1: the scheduler keeps using no-load durations for the
*primary* subset and inflates only *subsequent-batch* kernels by the
profiled maximum factor for their kernel class.  This pessimism guarantees
the secondary subset's estimated time never exceeds the primary window
(Principle 1) at the cost of some overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.profiling.contention_profiler import ContentionFactors
from repro.sim.kernel import KernelKind

__all__ = ["ContentionAnticipator", "NO_ANTICIPATION"]


@dataclass(frozen=True)
class ContentionAnticipator:
    """Scales secondary-subset kernel durations by profiled factors."""

    factors: ContentionFactors

    def scale(self, kind: KernelKind) -> float:
        """Multiplier applied to a subsequent-batch kernel of ``kind``."""
        return self.factors.for_kind(kind)

    def anticipated(self, duration: float, kind: KernelKind) -> float:
        """Pessimistic duration of a secondary kernel under overlap."""
        if duration < 0:
            raise ConfigError("duration must be >= 0")
        return duration * self.scale(kind)

    def fingerprint(self) -> tuple:
        """Hashable identity of the scales this anticipator applies.

        Part of the schedule-plan cache key: two planning calls may share a
        cached round only if every anticipated duration would come out
        identical, i.e. the factors match exactly.
        """
        return ("static", self.factors.compute, self.factors.comm)


#: The ablation: schedule with raw no-load durations (risking scheduling
#: failures — the secondary subset outliving the primary one).
NO_ANTICIPATION = ContentionAnticipator(
    ContentionFactors(compute=1.0, comm=1.0)
)


class AdaptiveAnticipator:
    """Online contention anticipation (extension beyond the paper).

    The paper's factors come from an offline profiling pass on the
    deployment hardware (§3.5).  This variant needs no offline pass: it
    starts at 1.0 and learns per-kind slowdowns from the kernels the runtime
    actually executes, via an exponentially-weighted moving *maximum* —
    a decayed running max rather than a mean, because the factor's job is to
    bound the worst case (Principle 1), not to predict the average.

    Duck-type compatible with :class:`ContentionAnticipator` (``scale`` /
    ``anticipated``); the Liger runtime feeds observations through
    :meth:`observe`.
    """

    def __init__(self, *, decay: float = 0.02, margin: float = 1.02) -> None:
        if not 0.0 < decay < 1.0:
            raise ConfigError("decay must be in (0, 1)")
        if margin < 1.0:
            raise ConfigError("margin must be >= 1")
        self.decay = decay
        self.margin = margin
        self._estimate = {True: 1.0, False: 1.0}  # keyed by is_comm
        self.observations = 0

    def observe(self, kind: KernelKind, noload: float, measured: float) -> None:
        """Feed one executed kernel's (no-load, measured) duration pair."""
        if noload <= 0:
            return
        slowdown = max(1.0, measured / noload)
        key = kind is KernelKind.COMM
        current = self._estimate[key]
        if slowdown >= current:
            self._estimate[key] = slowdown     # jump to new maxima instantly
        else:
            # decay toward the observation, so stale spikes fade
            self._estimate[key] = current + self.decay * (slowdown - current)
        self.observations += 1

    def scale(self, kind: KernelKind) -> float:
        """Current learned multiplier for ``kind`` (margin included)."""
        return self._estimate[kind is KernelKind.COMM] * self.margin

    def anticipated(self, duration: float, kind: KernelKind) -> float:
        """Pessimistic duration of a secondary kernel under overlap."""
        if duration < 0:
            raise ConfigError("duration must be >= 0")
        return duration * self.scale(kind)

    def fingerprint(self) -> tuple:
        """Hashable identity of the *current* learned scales.

        The estimates drift with every observation, so plan-cache entries
        recorded under older estimates simply stop matching — stale replays
        are impossible by construction, no invalidation hook needed.
        """
        return (
            "adaptive",
            self._estimate[False],
            self._estimate[True],
            self.margin,
        )

    @property
    def factors(self) -> ContentionFactors:
        """Snapshot of the learned factors."""
        return ContentionFactors(
            compute=max(1.0, self._estimate[False] * self.margin),
            comm=max(1.0, self._estimate[True] * self.margin),
        )
