"""Schedule-plan memoization: replay Algorithm 1 for recurring inputs.

Under steady-state serving — continuous batching decoding token after token —
the scheduler sees the *same* input over and over: a processing list of
identically-shaped FuncVecs, the same contention scales, the same
decomposition config.  Algorithm 1 is deterministic, so its output is a pure
function of that input.  :class:`SchedulePlanCache` exploits this:

* **Fingerprint** — a hashable key over everything the planner reads: each
  processing-list entry's consumption signature
  (:attr:`~repro.core.assembly.FuncVec.sig` — assembly-cache content key +
  pop count + pushed-back remainder tags), the anticipator's
  ``fingerprint()`` (contention scales, §3.5), the decomposition division
  factor (§3.6), and the packing policy.  Anything unfingerprintable (a
  FuncVec built without a content key, an anticipator without
  ``fingerprint``) makes the call uncacheable — counted, never guessed.
* **Record** — on a miss the scheduler plans normally while recording its
  secondary-subset actions (pops and splits); the entry stores those
  actions, the round's window/fill floats, and one *kernel prototype* per
  subset position snapshotted from the kernels the normal
  :func:`~repro.parallel.base.instantiate_op` path built.
* **Replay** — on a hit the cached actions are applied to the live
  processing list (real pops, so batch draining and accounting are
  untouched) and kernels are rebuilt from the prototypes with fresh uids,
  skipping the planner, the decomposer, and the profiler entirely.

The contract is **bit-identity**: a replayed round launches kernels with the
same names, durations, footprints, and ordering as planning from scratch
would have — the golden-trace suite asserts cache-on and cache-off timelines
hash identically.  Floats are never recomputed on the hit path (window,
fill, durations are stored), so there is no room for ulp drift.

Invalidation is structural, not temporal: contention scales live *in* the
key (an :class:`~repro.core.contention.AdaptiveAnticipator` that learned a
new factor simply stops matching), and fault-injected slowdowns are applied
by the machine at execution time, outside anything this cache stores.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.assembly import KernelFunc, rebind
from repro.core.scheduler import LigerScheduler, Round
from repro.sim.kernel import (
    CollectiveKind,
    CollectiveOp,
    Kernel,
    KernelKind,
    _collective_ids,
    _kernel_ids,
)

__all__ = ["SchedulePlanCache"]


class _PlanEntry:
    """One memoized round: the decisions plus per-position kernel prototypes."""

    __slots__ = (
        "n_primary",
        "primary_kind",
        "primary_class",
        "window",
        "fill",
        "actions",
        "protos0",
        "protos1",
    )

    def __init__(
        self,
        n_primary,
        primary_kind,
        primary_class,
        window,
        fill,
        actions,
        protos0,
        protos1,
    ) -> None:
        self.n_primary = n_primary
        self.primary_kind = primary_kind
        self.primary_class = primary_class
        self.window = window
        self.fill = fill
        self.actions = actions
        self.protos0 = protos0
        self.protos1 = protos1


def _proto(kernels: Dict[int, Kernel]) -> Tuple:
    """Snapshot one instantiated op's profiler-derived floats.

    Everything else a replayed kernel needs (names, kind, layer, batch id)
    comes from the KernelFunc being replayed; only the values that would
    cost a profiler/cost-model call are stored.
    """
    kern = next(iter(kernels.values()))
    coll = kern.collective
    kind = None if coll is None else coll.kind
    return (kind, kern.duration, kern.occupancy, kern.memory_intensity)


class SchedulePlanCache:
    """LRU memo of planned rounds, keyed by the scheduler's full input state."""

    def __init__(
        self,
        gpus: List[int],
        *,
        max_entries: int = 256,
        policy_id: str = "dichotomy",
    ) -> None:
        self.gpus = list(gpus)
        self.max_entries = max_entries
        #: The scheduling-policy id this cache serves; per-policy counter
        #: rows are keyed by it so the cache-key dimension is observable.
        self.policy_id = policy_id
        self._entries: "OrderedDict[Tuple, _PlanEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Planning calls whose input could not be fingerprinted (assembly
        #: cache off, foreign FuncVec, anticipator without a fingerprint).
        self.uncacheable = 0
        #: Wall seconds spent planning + instantiating on misses — the cost
        #: a hit avoids (exported as a perf gauge).
        self.build_seconds = 0.0
        #: Per-policy split of hits/misses/evictions/uncacheable.
        self.per_policy: Dict[str, Dict[str, int]] = {}

    def _bump(self, counter: str) -> None:
        row = self.per_policy.setdefault(
            self.policy_id,
            {"hits": 0, "misses": 0, "evictions": 0, "uncacheable": 0},
        )
        row[counter] += 1

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def fingerprint(self, scheduler: LigerScheduler) -> Optional[Tuple]:
        """Key over everything :meth:`LigerScheduler.plan_swept` reads.

        Call *after* the drain sweep (the sweep mutates the processing
        list).  Returns None when the state is not cacheable.
        """
        processing = scheduler.processing
        if not processing:
            return None  # nothing to plan — not a cacheability failure
        sigs = []
        for fv in processing:
            sig = fv.sig
            if sig is None:
                self.uncacheable += 1
                self._bump("uncacheable")
                return None
            sigs.append(sig)
        anticipator_fp = getattr(scheduler.anticipator, "fingerprint", None)
        if anticipator_fp is None:
            self.uncacheable += 1
            self._bump("uncacheable")
            return None
        decomposer = scheduler.decomposer
        division = None if decomposer is None else decomposer.division_factor
        # The policy fingerprint joins the key so memoized plans never leak
        # across policies (stubs without a policy fall back to the legacy
        # packing string under the default dichotomy id).
        policy = getattr(scheduler, "policy", None)
        policy_fp = (
            policy.fingerprint()
            if policy is not None
            else ("dichotomy", scheduler.packing)
        )
        return (anticipator_fp(), division, policy_fp, tuple(sigs))

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[_PlanEntry]:
        """Look up a memoized round; counts the hit/miss and bumps LRU age."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._bump("misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._bump("hits")
        return entry

    def put(
        self,
        key: Tuple,
        round_: Round,
        actions: List,
        maps0: List[Dict[int, Kernel]],
        maps1: List[Dict[int, Kernel]],
    ) -> None:
        """Memoize a freshly-planned round and its instantiated kernels."""
        self._entries[key] = _PlanEntry(
            n_primary=len(round_.subset0),
            primary_kind=round_.primary_kind,
            primary_class=getattr(round_, "primary_class", ""),
            window=round_.window,
            fill=round_.secondary_fill,
            actions=tuple(actions),
            protos0=tuple(_proto(m) for m in maps0),
            protos1=tuple(_proto(m) for m in maps1),
        )
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._bump("evictions")

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(
        self, scheduler: LigerScheduler, entry: _PlanEntry
    ) -> Tuple[Round, List[Dict[int, Kernel]], List[Dict[int, Kernel]]]:
        """Re-apply a memoized round to the live scheduler state.

        Pops are performed on the real FuncVecs (so drain bookkeeping and
        downstream accounting see exactly what planning would have done) and
        kernels are rebuilt from the stored prototypes with fresh uids.
        ``validate_principle1`` is skipped: the round passed it when it was
        recorded, and every float here is the recorded value.
        """
        processing = scheduler.processing
        primary = processing[0]
        subset0 = [primary.pop() for _ in range(entry.n_primary)]
        subset1: List[KernelFunc] = []
        for idx, split in entry.actions:
            fv = processing[idx]
            popped = fv.pop()
            if split is None:
                subset1.append(popped)
                continue
            piece_t, rest_t = split
            bid, size, seq = popped.batch_id, popped.batch_size, popped.seq_len
            piece = rebind(piece_t, batch_id=bid, batch_size=size, seq_len=seq)
            rest = rebind(rest_t, batch_id=bid, batch_size=size, seq_len=seq)
            fv.push_front(rest)
            subset1.append(piece)
        round_ = Round(
            index=scheduler.rounds_planned,
            primary_kind=entry.primary_kind,
            subset0=subset0,
            subset1=subset1,
            window=entry.window,
            secondary_fill=entry.fill,
            primary_class=entry.primary_class,
        )
        scheduler.rounds_planned += 1
        scheduler._sweep_drained()
        maps0 = [
            self._instantiate(p, f) for p, f in zip(entry.protos0, subset0)
        ]
        maps1 = [
            self._instantiate(p, f) for p, f in zip(entry.protos1, subset1)
        ]
        return round_, maps0, maps1

    # ------------------------------------------------------------------
    # Fast kernel instantiation (mirrors repro.parallel.base.instantiate_op
    # field for field, with the profiler-derived floats from the prototype)
    # ------------------------------------------------------------------
    def _instantiate(self, proto: Tuple, func: KernelFunc) -> Dict[int, Kernel]:
        coll_kind, duration, occupancy, mem = proto
        op = func.op
        bid = func.batch_id
        if coll_kind is None:
            return {
                gpu: _fast_kernel(
                    f"{op.name}_b{bid}@g{gpu}",
                    op.kind,
                    duration,
                    occupancy,
                    mem,
                    0.0,
                    bid,
                    op.layer,
                    op.op,
                    None,
                    op.decomposable,
                    {"desc": op},
                )
                for gpu in self.gpus
            }
        participants = (
            [op.p2p_src, op.p2p_dst]
            if coll_kind is CollectiveKind.P2P
            else list(self.gpus)
        )
        coll = CollectiveOp.__new__(CollectiveOp)
        coll.kind = coll_kind
        coll.bytes = op.comm_bytes
        coll.participants = participants
        coll.duration = duration
        coll.batch_id = bid
        coll.name = f"{op.name}_b{bid}"
        coll.members = {}
        coll.uid = next(_collective_ids)
        # Every non-P2P collective keeps the op flavour (all_reduce,
        # all_to_all, ...); P2P members are always flavoured "p2p".
        member_op = "p2p" if coll_kind is CollectiveKind.P2P else op.op
        for gpu in participants:
            coll.members[gpu] = _fast_kernel(
                f"{coll.name}@g{gpu}",
                KernelKind.COMM,
                duration,
                occupancy,
                mem,
                op.comm_bytes,
                bid,
                op.layer,
                member_op,
                coll,
                False,
                {},
            )
        return dict(coll.members)


def _fast_kernel(
    name, kind, duration, occupancy, mem, nbytes, bid, layer, op, coll, decomposable, meta
) -> Kernel:
    """Build a Kernel bypassing ``__init__`` — all values were validated when
    the prototype's original kernel was constructed the slow way."""
    kern = Kernel.__new__(Kernel)
    kern.name = name
    kern.kind = kind
    kern.duration = duration
    kern.occupancy = occupancy
    kern.memory_intensity = mem
    kern.flops = 0.0
    kern.bytes = nbytes
    kern.batch_id = bid
    kern.layer = layer
    kern.op = op
    kern.collective = coll
    kern.decomposable = decomposable
    kern.meta = meta
    kern.uid = next(_kernel_ids)
    return kern
