"""The Liger runtime: round execution with hybrid synchronization (§3.4).

This is where scheduling decisions become stream commands.  Each planned
:class:`~repro.core.scheduler.Round` is launched onto **two streams per
GPU** — stream 0 carries the primary subset, stream 1 the secondary — and
consecutive rounds are chained by the configured synchronization approach:

* **HYBRID** (Liger): stream 0 records a *pre-kick* event before its last
  kernel; when the CPU observes it, the next round is planned and launched
  while that kernel still runs (launch overhead hidden).  Execution order
  stays exact because each stream's first command of round *k+1* waits on
  the *other* stream's end-of-round-*k* event — pure inter-stream sync, no
  CPU on the critical path.
* **CPU_GPU**: the CPU waits for *all* GPUs' end-of-round events (paying
  visibility latency plus the multi-GPU coordination penalty §4.5 measures
  at >20 µs), then launches the next round — the overhead is exposed.
* **INTER_STREAM**: every plannable round is launched immediately with the
  same event gating but no CPU feedback; communication kernels are charged
  the empirically-motivated launch-queue lag (§3.4's observed failure mode).

Per the paper, the communication subset is launched first within a round.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.assembly import FunctionAssembler, KernelFunc
from repro.core.config import LigerConfig, SyncMode
from repro.core.contention import ContentionAnticipator
from repro.core.decomposition import DecompositionPlanner
from repro.core.plan_cache import SchedulePlanCache
from repro.core.policy import make_policy
from repro.core.scheduler import LigerScheduler, Round
from repro.parallel.base import instantiate_op
from repro.profiling.profiler import OpProfiler
from repro.serving.request import Batch
from repro.sim.events import CudaEvent
from repro.sim.gpu import Machine
from repro.sim.host import Host
from repro.sim.kernel import Kernel, KernelKind
from repro.sim.stream import Stream
from repro.sim.timeline import TimelineExecutor

__all__ = ["LigerRuntime", "RuntimeStats"]


@dataclass
class RuntimeStats:
    """Execution counters for analysis and the ablation benches."""

    rounds_launched: int = 0
    kernels_launched: int = 0
    decomposed_pieces: int = 0
    total_window: float = 0.0
    total_fill: float = 0.0

    @property
    def mean_fill_fraction(self) -> float:
        return self.total_fill / self.total_window if self.total_window > 0 else 0.0


class LigerRuntime:
    """Executes the Liger scheduler's rounds on a simulated machine."""

    def __init__(
        self,
        machine: Machine,
        host: Host,
        profiler: OpProfiler,
        assembler: FunctionAssembler,
        anticipator: ContentionAnticipator,
        config: LigerConfig,
        *,
        on_batch_launched=None,
        on_batch_drained=None,
    ) -> None:
        self.machine = machine
        self.host = host
        self.profiler = profiler
        self.assembler = assembler
        self.config = config
        decomposer = (
            DecompositionPlanner(profiler, config.division_factor)
            if config.enable_decomposition
            else None
        )
        policy = make_policy(config.policy, packing=config.packing)
        self.scheduler = LigerScheduler(
            anticipator=anticipator,
            decomposer=decomposer,
            max_inflight=config.max_inflight,
            policy=policy,
        )
        self.stats = RuntimeStats()
        self._gpus = list(range(machine.node.num_gpus))
        #: Memoized Algorithm 1 (bit-identical replay of recurring rounds).
        self.plan_cache: Optional[SchedulePlanCache] = (
            SchedulePlanCache(
                self._gpus,
                max_entries=config.plan_cache_size,
                policy_id=policy.name,
            )
            if config.enable_plan_cache
            else None
        )
        self._s0: Dict[int, Stream] = {
            g: machine.gpu(g).stream("liger_s0") for g in self._gpus
        }
        self._s1: Dict[int, Stream] = {
            g: machine.gpu(g).stream("liger_s1", priority=1) for g in self._gpus
        }
        # End-of-round events per GPU for cross-stream gating.
        self._prev_end0: Dict[int, Optional[CudaEvent]] = {g: None for g in self._gpus}
        self._prev_end1: Dict[int, Optional[CudaEvent]] = {g: None for g in self._gpus}
        self._chain_active = False
        #: Compiled-timeline fast path: each HYBRID window is batch-advanced
        #: by :class:`~repro.sim.timeline.TimelineExecutor` when eligible
        #: (bit-identical to the interpreted path; see that module).
        self.timeline: Optional[TimelineExecutor] = (
            TimelineExecutor(machine)
            if config.enable_timeline_replay
            and config.sync_mode is SyncMode.HYBRID
            else None
        )
        self._last_pre_kick: Optional[CudaEvent] = None
        # Serving-side accounting hooks: (batch_id, n_kernels) / (batch_id, t).
        self._on_batch_launched = on_batch_launched or (lambda bid, n: None)
        self._on_batch_drained = on_batch_drained or (lambda bid: None)
        #: Optional observer called as ``fn(round_index, expected_primary,
        #: expected_secondary, window_us)`` right before a round's kernels are
        #: issued.  When set, every launched kernel is additionally tagged
        #: with ``meta["_round"]`` / ``meta["_subset"]`` so a completion
        #: observer can reconstruct per-round subset end times — the
        #: Principle-1 violation monitor (:mod:`repro.faults.monitor`) builds
        #: on this.  ``None`` skips both the call and the tagging.
        self.on_round_launched = None

    # ------------------------------------------------------------------
    # Entry point: a batch arrives
    # ------------------------------------------------------------------
    def enqueue(self, batch: Batch) -> None:
        """Assemble and enqueue a batch; kicks the round chain if idle."""
        funcvec = self.assembler.assemble(batch)
        self.scheduler.enqueue(funcvec)
        self.maybe_kick()

    def maybe_kick(self) -> None:
        """Restart the round chain if it is idle and work is admittable.

        Called on batch arrival and again when resources free (memory-aware
        admission may have parked the waiting queue until a batch released
        its KV/workspace reservation).
        """
        if not self._chain_active and self.scheduler.has_work:
            self.host.catch_up()
            self._chain_active = True
            self._advance()

    # ------------------------------------------------------------------
    # The round chain
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Plan and launch the next round; arrange the follow-up trigger."""
        planned = self._next_round()
        if planned is None:
            self._chain_active = False
            self._flush_drained()
            return
        if self.config.sync_mode is SyncMode.INTER_STREAM:
            # Launch every plannable round immediately; new rounds only
            # become plannable when batches arrive, which re-enters here.
            while planned is not None:
                self._launch_round(*planned, pre_kick=False)
                self._flush_drained()
                planned = self._next_round()
            self._chain_active = False
            self._flush_drained()
            return
        pre_kick = self.config.sync_mode is SyncMode.HYBRID
        end_events = self._launch_round(*planned, pre_kick=pre_kick)
        self._flush_drained()
        if self.config.sync_mode is SyncMode.CPU_GPU:
            # The CPU confirms completion on every GPU before relaunching.
            self.host.when_all_events(
                [e for pair in end_events.values() for e in pair if e is not None],
                self._advance,
                multi_gpu=True,
            )
            return
        # HYBRID: the pre-kick host callback registered inside _launch_round
        # drives the chain.  With the fast path on, try to compile the whole
        # window up to that callback and commit it as one batched advance —
        # on a bail nothing was touched and the interpreted path proceeds.
        pre_kick_event = self._last_pre_kick
        self._last_pre_kick = None
        if self.timeline is not None and pre_kick_event is not None:
            self.timeline.fast_forward(pre_kick_event)

    def _flush_drained(self) -> None:
        for fv in self.scheduler.take_drained():
            self._on_batch_drained(fv.batch.batch_id)

    # ------------------------------------------------------------------
    def _next_round(self):
        """Plan (or replay) the next round plus its instantiated kernels.

        Returns ``(round, subset0_kernels, subset1_kernels)`` or None.  With
        the plan cache enabled, a fingerprint hit replays the recorded round;
        a miss plans normally while recording, then memoizes.
        """
        sched = self.scheduler
        cache = self.plan_cache
        if cache is None:
            round_ = sched.plan_round()
            if round_ is None:
                return None
            return round_, self._instantiate(round_.subset0), self._instantiate(
                round_.subset1
            )
        sched._sweep_drained()
        key = cache.fingerprint(sched)
        if key is not None:
            entry = cache.get(key)
            if entry is not None:
                return cache.replay(sched, entry)
        start = perf_counter()
        record: Optional[list] = [] if key is not None else None
        round_ = sched.plan_swept(record)
        if round_ is None:
            return None
        maps0 = self._instantiate(round_.subset0)
        maps1 = self._instantiate(round_.subset1)
        if key is not None:
            cache.put(key, round_, record, maps0, maps1)
        cache.build_seconds += perf_counter() - start
        return round_, maps0, maps1

    def _instantiate(self, funcs: List[KernelFunc]):
        return [
            instantiate_op(f.op, self._gpus, f.batch_id, self.profiler)
            for f in funcs
        ]

    def _launch_round(
        self,
        round_: Round,
        subset0_kernels: List[Dict[int, Kernel]],
        subset1_kernels: List[Dict[int, Kernel]],
        *,
        pre_kick: bool,
    ) -> Dict[int, Tuple[Optional[CudaEvent], Optional[CudaEvent]]]:
        """Issue one round's commands on every GPU; returns end events.

        The kernel maps come from :meth:`_next_round` — instantiated fresh on
        a plan-cache miss, rebuilt from prototypes on a hit — so this single
        issue path serves both, which is what makes cache-on bit-identical
        to cache-off.
        """
        cfg = self.config
        inter_stream_gating = cfg.sync_mode in (SyncMode.HYBRID, SyncMode.INTER_STREAM)
        comm_lag = (
            cfg.comm_lag_penalty if cfg.sync_mode is SyncMode.INTER_STREAM else 0.0
        )

        self._account_launches(round_.subset0)
        self._account_launches(round_.subset1)

        if self.machine.trace is not None:
            # Label kernels with their scheduling provenance so trace rows
            # (and the merged timeline) carry policy + resource class.
            # Gated on tracing: the zero-cost contract for untraced runs.
            pol = self.scheduler.policy
            for kernel_maps, funcs in (
                (subset0_kernels, round_.subset0),
                (subset1_kernels, round_.subset1),
            ):
                for kernels, func in zip(kernel_maps, funcs):
                    rclass = pol.resource_class(func)
                    for kern in kernels.values():
                        kern.meta["_policy"] = pol.name
                        kern.meta["_rclass"] = rclass

        if self.on_round_launched is not None:
            for which, kernel_maps in ((0, subset0_kernels), (1, subset1_kernels)):
                for kernels in kernel_maps:
                    for kern in kernels.values():
                        kern.meta["_round"] = round_.index
                        kern.meta["_subset"] = which
            self.on_round_launched(
                round_.index,
                sum(len(k) for k in subset0_kernels),
                sum(len(k) for k in subset1_kernels),
                round_.window,
            )

        # The paper launches the communication subset first.
        comm_first = round_.primary_kind is KernelKind.COMM
        order: List[Tuple[int, List[dict], List[KernelFunc]]] = (
            [(0, subset0_kernels, round_.subset0), (1, subset1_kernels, round_.subset1)]
            if comm_first
            else [(1, subset1_kernels, round_.subset1), (0, subset0_kernels, round_.subset0)]
        )

        end_events: Dict[int, Tuple[Optional[CudaEvent], Optional[CudaEvent]]] = {}
        pre_kick_event: Optional[CudaEvent] = None

        for g in self._gpus:
            s0, s1 = self._s0[g], self._s1[g]
            # Cross-stream gating: round k+1 starts only after BOTH streams
            # finished round k (each stream's own FIFO covers itself).
            if inter_stream_gating:
                prev1 = self._prev_end1[g]
                if prev1 is not None:
                    self.host.wait_event(s0, prev1)
                prev0 = self._prev_end0[g]
                if prev0 is not None and round_.subset1:
                    self.host.wait_event(s1, prev0)

            for which, kernel_maps, funcs in order:
                stream = s0 if which == 0 else s1
                for idx, kernels in enumerate(kernel_maps):
                    kern = kernels[g]
                    is_comm = kern.kind is KernelKind.COMM
                    # HYBRID pre-kick: before the last primary kernel.
                    if (
                        pre_kick
                        and which == 0
                        and idx == len(kernel_maps) - 1
                        and g == 0
                    ):
                        pre_kick_event = CudaEvent(f"prekick_r{round_.index}")
                        self.host.record_event(stream, pre_kick_event)
                    self.host.launch_kernel(
                        stream, kern, extra_delay=comm_lag if is_comm else 0.0
                    )

            e0 = CudaEvent(f"r{round_.index}_end0@g{g}")
            self.host.record_event(s0, e0)
            e1: Optional[CudaEvent] = None
            if round_.subset1:
                e1 = CudaEvent(f"r{round_.index}_end1@g{g}")
                self.host.record_event(s1, e1)
            self._prev_end0[g] = e0
            self._prev_end1[g] = e1 if e1 is not None else self._prev_end1[g]
            end_events[g] = (e0, e1)

        if pre_kick:
            assert pre_kick_event is not None
            self.host.when_event(pre_kick_event, self._advance)
            self._last_pre_kick = pre_kick_event

        self.stats.rounds_launched += 1
        self.stats.kernels_launched += (
            len(round_.subset0) + len(round_.subset1)
        ) * len(self._gpus)
        self.stats.decomposed_pieces += sum(
            1 for f in round_.subset1 if ".v" in f.op.name or ".c" in f.op.name
        )
        self.stats.total_window += round_.window
        self.stats.total_fill += round_.secondary_fill
        return end_events

    def _account_launches(self, funcs: List[KernelFunc]) -> None:
        for f in funcs:
            n = len(self._gpus) if f.op.op != "p2p" else 2
            self._on_batch_launched(f.batch_id, n)
