"""Liger runtime configuration.

Gathers every tunable the paper exposes: the synchronization approach
(§3.4), the kernel decomposition division factor (§3.6 / Fig. 14, default 8
as in §4.2), contention factors (§3.5, profiled offline unless pinned), the
processing-list size (§3.3), and the NCCL footprint mitigation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.profiling.contention_profiler import ContentionFactors
from repro.units import us

__all__ = ["SyncMode", "LigerConfig"]


class SyncMode(enum.Enum):
    """How kernel execution order across streams is enforced (§3.4, Fig. 8).

    * ``CPU_GPU`` — the host waits for each round's completion events, then
      launches the next round; precise but exposes launch overhead (the
      >20 µs multi-GPU gap of §4.5).
    * ``INTER_STREAM`` — everything is pre-launched and ordered purely with
      stream-wait events; no CPU involvement, but communication kernels
      suffer startup lag in deep launch queues (§3.4's observed problem).
    * ``HYBRID`` — Liger's approach: a first event (before the last kernel
      of the round) wakes the CPU to *pre-launch* the next round while that
      kernel still runs, hiding launch overhead; a second event gates
      execution GPU-side with inter-stream sync, keeping order exact.
    """

    CPU_GPU = "cpu_gpu"
    INTER_STREAM = "inter_stream"
    HYBRID = "hybrid"


@dataclass
class LigerConfig:
    """Tunables of the Liger runtime.

    Parameters
    ----------
    max_inflight:
        Processing-list size (§3.3): how many batches may have kernels in
        flight at once.  Further batches wait in the waiting queue.
    sync_mode:
        Synchronization approach (see :class:`SyncMode`).
    division_factor:
        Runtime kernel decomposition granularity ``d`` (§3.6): decomposable
        kernels may be split into pieces of ``i/d`` for ``1 ≤ i < d``.  The
        paper evaluates 2/4/8/16 (Fig. 14) and uses 8 in §4.2.
    enable_decomposition:
        Ablation switch for §3.6.
    contention_factors:
        Offline-profiled factors (§3.5).  ``None`` means the runtime profiles
        them itself at bind time (the preprocessing phase's offline
        procedure); pass explicit factors to skip that or to ablate
        (``ContentionFactors(compute=1.0, comm=1.0)`` disables anticipation).
    reduce_nccl_channels:
        Apply the §3.5 mitigation (shrink NCCL's SM footprint).  Without it
        collectives rarely fit beside a GEMM under the left-over policy.
    adaptive_anticipation:
        Extension: learn contention factors online from executed kernels
        (a decayed running maximum) instead of the offline profiling pass.
        When set, ``contention_factors`` is ignored and no offline
        contention profiling runs at bind time.
    packing:
        Secondary-subset packing policy: ``"first_fit"`` walks subsequent
        batches in arrival order (the paper's Algorithm 1); ``"best_fit"``
        (extension) greedily picks the largest eligible batch head that
        fits the residual window, trading fairness for fill.
    policy:
        Scheduling policy (:mod:`repro.core.policy`): ``"dichotomy"`` is
        the paper's Algorithm 1 (compute vs communication, the default,
        bit-identical to the goldens); ``"expert_overlap"`` generalizes
        Principle 1 to resource classes so MoE expert GEMMs interleave
        against all-to-all dispatch/combine.
    comm_lag_penalty:
        Extra communication-kernel startup latency (µs) charged in pure
        ``INTER_STREAM`` mode — the empirically-observed launch-queue lag
        that motivated the hybrid approach.
    enable_plan_cache:
        Memoize Algorithm 1: when the scheduler's input state fingerprints
        identically to an earlier planning call (same processing-list
        shapes, same contention scales, same decomposition config), replay
        the recorded round instead of re-planning.  Bit-identical to
        planning from scratch; disable only to measure the planner.
    plan_cache_size:
        LRU capacity (entries) of the schedule-plan cache.
    enable_assembly_cache:
        Memoize function assembly by batch shape
        (:class:`~repro.core.assembly.FunctionAssembler`).  Also what makes
        FuncVecs fingerprintable — with this off the plan cache never hits.
    enable_sim_memos:
        The remaining hot-path memos this subsystem layers onto its
        execution substrate: the machine's shape-keyed contention-slowdown
        memo and the profiler's occupancy/memory-footprint memos.  The perf
        harness's cache-off arm disables them together with the plan and
        assembly caches so the A/B measures every cache as one unit; all of
        them are bit-identical on/off.
    enable_timeline_replay:
        The compiled-timeline fast path (:mod:`repro.sim.timeline`): after
        each HYBRID round launch, the anchor-to-anchor window is compiled
        into a batched advance instead of being interpreted event by event.
        Bit-identical on/off by construction (the compiler bails to the
        interpreted path on anything it does not model); the golden suite
        pins the equivalence.  Only HYBRID windows are eligible, so the
        flag is inert under ``CPU_GPU``/``INTER_STREAM``.
    """

    max_inflight: int = 4
    sync_mode: SyncMode = SyncMode.HYBRID
    division_factor: int = 8
    enable_decomposition: bool = True
    contention_factors: Optional[ContentionFactors] = None
    reduce_nccl_channels: bool = True
    adaptive_anticipation: bool = False
    packing: str = "first_fit"
    policy: str = "dichotomy"
    comm_lag_penalty: float = us(12.0)
    enable_plan_cache: bool = True
    plan_cache_size: int = 256
    enable_assembly_cache: bool = True
    enable_sim_memos: bool = True
    enable_timeline_replay: bool = True

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if self.division_factor < 1:
            raise ConfigError("division_factor must be >= 1")
        if not isinstance(self.sync_mode, SyncMode):
            raise ConfigError(f"sync_mode must be a SyncMode, got {self.sync_mode!r}")
        if self.packing not in ("first_fit", "best_fit"):
            raise ConfigError(f"unknown packing policy {self.packing!r}")
        # Imported lazily: repro.core.policy depends on assembly/kernel,
        # not on config, so the late import breaks no cycles.
        from repro.core.policy import POLICIES, policy_names

        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown scheduling policy {self.policy!r}; "
                f"available: {', '.join(policy_names())}"
            )
        if self.comm_lag_penalty < 0:
            raise ConfigError("comm_lag_penalty must be >= 0")
        if self.plan_cache_size < 1:
            raise ConfigError("plan_cache_size must be >= 1")
