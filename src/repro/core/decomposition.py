"""Runtime kernel decomposition (§3.6).

When the scheduler cannot fit a subsequent batch's next kernel into the
remaining overlap window, it splits the kernel into fine-grained pieces with
*equal capability*.  Liger pre-decides the decomposition strategy per kernel
class (a manual process in the paper) and profiles every possible division
of a factor-``d`` split (1/d … (d−1)/d) offline, so the runtime can pick the
largest piece that fits by table lookup.

Decomposition strategies (Fig. 9):

* **GEMM — vertical**: split the *weight's output columns* (the ``n``
  dimension).  The activation matrix A is already skinny in inference;
  vertical splitting keeps its shape, each piece computes a full column
  slice of the output, and the cost is only tile-quantisation + one extra
  kernel overhead per piece.  This is the strategy Liger uses.
* **GEMM — horizontal** (provided for the Fig. 9 comparison, never chosen):
  split A's rows (``m``); the pieces become even skinnier and efficiency
  collapses.
* **All-reduce**: split the payload bytes evenly; each piece is an
  independent smaller collective (NCCL treats chunks independently), paying
  one extra latency term per piece.
* **All-to-all**: the same byte split applied to the MoE expert
  dispatch/combine exchange.  Not wired by default — the
  ``expert_overlap`` policy registers it via
  :meth:`DecompositionPlanner.register_split_rule`, the hook that lets a
  scheduling policy teach the planner new kernel classes.

A kernel piece is a real :class:`~repro.core.assembly.KernelFunc` whose op
has the scaled shape — its duration comes from the same profiler, so the
decomposition *penalty* (sum of pieces > whole) is emergent, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.assembly import KernelFunc
from repro.errors import ConfigError
from repro.models.ops import OpDesc
from repro.profiling.profiler import OpProfiler

__all__ = [
    "DecompositionPlanner",
    "split_gemm_vertical",
    "split_gemm_horizontal",
    "split_allreduce",
    "split_all_to_all",
]


def split_gemm_vertical(op: OpDesc, numer: int, denom: int) -> Tuple[OpDesc, OpDesc]:
    """Split a GEMM along ``n`` into (numer/denom, rest).  Fig. 9 'vertical'."""
    _check_fraction(numer, denom)
    m, k, n = op.gemm_shape  # type: ignore[misc]
    n_piece = max(1, (n * numer) // denom)
    n_rest = n - n_piece
    if n_rest < 1:
        raise ConfigError(f"{op.name}: vertical split leaves empty remainder")
    return (
        replace(op, name=f"{op.name}.v{numer}/{denom}", gemm_shape=(m, k, n_piece)),
        replace(op, name=f"{op.name}.rest", gemm_shape=(m, k, n_rest)),
    )


def split_gemm_horizontal(op: OpDesc, numer: int, denom: int) -> Tuple[OpDesc, OpDesc]:
    """Split a GEMM along ``m`` (Fig. 9 'horizontal' — the bad strategy)."""
    _check_fraction(numer, denom)
    m, k, n = op.gemm_shape  # type: ignore[misc]
    m_piece = max(1, (m * numer) // denom)
    m_rest = m - m_piece
    if m_rest < 1:
        raise ConfigError(f"{op.name}: horizontal split leaves empty remainder")
    return (
        replace(op, name=f"{op.name}.h{numer}/{denom}", gemm_shape=(m_piece, k, n)),
        replace(op, name=f"{op.name}.rest", gemm_shape=(m_rest, k, n)),
    )


def split_allreduce(op: OpDesc, numer: int, denom: int) -> Tuple[OpDesc, OpDesc]:
    """Split an all-reduce payload into (numer/denom, rest) byte chunks."""
    _check_fraction(numer, denom)
    piece = op.comm_bytes * numer / denom
    rest = op.comm_bytes - piece
    if piece <= 0 or rest <= 0:
        raise ConfigError(f"{op.name}: degenerate all-reduce split")
    return (
        replace(op, name=f"{op.name}.c{numer}/{denom}", comm_bytes=piece),
        replace(op, name=f"{op.name}.rest", comm_bytes=rest),
    )


def split_all_to_all(op: OpDesc, numer: int, denom: int) -> Tuple[OpDesc, OpDesc]:
    """Split an all-to-all payload into (numer/denom, rest) byte chunks.

    Reuses the ``.c`` piece-name convention so runtime decomposition
    accounting treats collective pieces uniformly.
    """
    _check_fraction(numer, denom)
    piece = op.comm_bytes * numer / denom
    rest = op.comm_bytes - piece
    if piece <= 0 or rest <= 0:
        raise ConfigError(f"{op.name}: degenerate all-to-all split")
    return (
        replace(op, name=f"{op.name}.c{numer}/{denom}", comm_bytes=piece),
        replace(op, name=f"{op.name}.rest", comm_bytes=rest),
    )


def _check_fraction(numer: int, denom: int) -> None:
    if denom < 2 or not 1 <= numer < denom:
        raise ConfigError(f"invalid decomposition fraction {numer}/{denom}")


@dataclass
class DecompositionPlanner:
    """Chooses the largest profiled piece of a kernel that fits a window.

    Parameters
    ----------
    profiler:
        Duration oracle (the offline profile of all divisions).
    division_factor:
        ``d``; candidate pieces are ``i/d`` for ``i = d−1 … 1``.
    """

    profiler: OpProfiler
    division_factor: int = 8

    def __post_init__(self) -> None:
        if self.division_factor < 1:
            raise ConfigError("division_factor must be >= 1")
        #: Split-rule registry, op flavour → ``fn(op, numer, denom)``.  The
        #: defaults reproduce the paper's manual pre-decided strategies;
        #: scheduling policies may register additional kernel classes
        #: (``expert_overlap`` adds the all-to-all byte splitter).
        self._split_rules = {
            "gemm": split_gemm_vertical,
            "all_reduce": split_allreduce,
        }

    def register_split_rule(self, flavour: str, splitter) -> None:
        """Teach the planner to decompose a new op flavour.

        ``splitter(op, numer, denom) -> (piece_op, rest_op)`` must follow
        the piece/rest naming conventions of the built-in splitters.
        """
        self._split_rules[flavour] = splitter

    def split_rule(self, flavour: str):
        """The registered splitter for an op flavour, or None."""
        return self._split_rules.get(flavour)

    def can_decompose(self, func: KernelFunc) -> bool:
        """Whether this kernel admits a factor-``d`` split at all."""
        if not func.decomposable or self.division_factor < 2:
            return False
        flavour = func.op.op
        if flavour not in self._split_rules:
            return False
        if flavour == "gemm":
            # Need at least d columns to split d ways.
            return func.op.gemm_shape[2] >= self.division_factor  # type: ignore[index]
        # Collective flavours split their payload bytes.
        return func.op.comm_bytes > 0

    def split_to_fit(
        self, func: KernelFunc, window: float, *, scale: float = 1.0
    ) -> Optional[Tuple[KernelFunc, KernelFunc]]:
        """Split ``func`` so the first piece's scaled duration fits ``window``.

        Returns ``(piece, remainder)`` or ``None`` when even the smallest
        profiled division (1/d) does not fit.  ``scale`` is the contention
        factor applied to the piece's duration when testing the fit.
        """
        if not self.can_decompose(func):
            return None
        splitter = self._split_rules[func.op.op]
        d = self.division_factor
        for numer in range(d - 1, 0, -1):
            piece_op, rest_op = splitter(func.op, numer, d)
            piece_duration = self.profiler.duration(piece_op)
            if piece_duration * scale <= window:
                piece = KernelFunc(
                    op=piece_op,
                    duration=piece_duration,
                    kind=func.kind,
                    batch_id=func.batch_id,
                    batch_size=func.batch_size,
                    seq_len=func.seq_len,
                    decomposable=False,  # pieces are final
                )
                remainder = KernelFunc(
                    op=rest_op,
                    duration=self.profiler.duration(rest_op),
                    kind=func.kind,
                    batch_id=func.batch_id,
                    batch_size=func.batch_size,
                    seq_len=func.seq_len,
                    decomposable=True,  # the remainder may split again later
                )
                return piece, remainder
        return None

    def profile_divisions(self, func: KernelFunc) -> List[Tuple[str, float]]:
        """Offline table: duration of every ``i/d`` division of a kernel."""
        if not self.can_decompose(func):
            return []
        splitter = self._split_rules[func.op.op]
        out: List[Tuple[str, float]] = []
        d = self.division_factor
        for numer in range(1, d):
            piece_op, _ = splitter(func.op, numer, d)
            out.append((f"{numer}/{d}", self.profiler.duration(piece_op)))
        return out
