"""Function assembly (§3.2): per-batch lists of kernel launch wrappers.

For each newly-arrived batch Liger assembles a list of *function wrappers*.
In the C++ prototype a wrapper holds the kernel launch function pointer plus
"the kernel duration, the kernel type, the batch size, and the sequence
length"; here a :class:`KernelFunc` holds the :class:`~repro.models.ops.OpDesc`
(the launchable), the profiled no-load duration, and the same metadata.  The
assembled :class:`FuncVec` is what Algorithm 1 consumes: it exposes the
type-switch test (``FuncVec[0].switch()`` in the paper's pseudocode) and
in-order pop, and accepts push-front for decomposition remainders.

Assembly is a hot path under continuous batching — every decode iteration of
every batch re-enumerates the same op sequence and re-attaches the same
profiled durations.  :class:`FunctionAssembler` therefore memoizes assembled
function lists by batch *shape* ``(phase, size, seq_len, context_len)``: a
hit rebinds the cached wrappers to the new batch identity without touching
the op enumerator or the profiler.  The cache key doubles as the FuncVec's
``content_key``, which the schedule-plan cache
(:mod:`repro.core.plan_cache`) builds its fingerprints on.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.errors import ConfigError
from repro.models.ops import OpDesc
from repro.profiling.profiler import OpProfiler
from repro.serving.request import Batch
from repro.sim.kernel import KernelKind

__all__ = ["KernelFunc", "FuncVec", "FunctionAssembler", "rebind"]


@dataclass(slots=True)
class KernelFunc:
    """One kernel launch wrapper (the paper's function-wrapper record)."""

    op: OpDesc
    duration: float           # profiled no-load duration (µs)
    kind: KernelKind
    batch_id: int
    batch_size: int
    seq_len: int
    decomposable: bool

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigError(f"{self.op.name}: negative profiled duration")

    @property
    def is_comm(self) -> bool:
        return self.kind is KernelKind.COMM

    def same_type_as(self, kind: KernelKind) -> bool:
        """Type comparison at the scheduler's granularity: comm vs not."""
        return self.is_comm == (kind is KernelKind.COMM)


def rebind(
    template: KernelFunc, *, batch_id: int, batch_size: int, seq_len: int
) -> KernelFunc:
    """A copy of ``template`` bound to another batch's identity.

    Bypasses ``__init__`` — the template's duration was validated when it was
    first built, and the op/kind/decomposable fields are shared verbatim.
    This is the assembly- and plan-cache replay primitive.
    """
    func = KernelFunc.__new__(KernelFunc)
    func.op = template.op
    func.duration = template.duration
    func.kind = template.kind
    func.batch_id = batch_id
    func.batch_size = batch_size
    func.seq_len = seq_len
    func.decomposable = template.decomposable
    return func


class FuncVec:
    """The assembled kernel-function list of one batch (FIFO with push-front).

    ``content_key`` (optional) identifies the *content* of the original list
    — assembler-cache key of the op sequence and durations.  When present,
    :attr:`sig` exposes an incrementally-maintained consumption signature
    ``(content_key, pops, front)`` that two FuncVecs share exactly when their
    remaining kernel sequences are identical; the schedule-plan cache
    fingerprints the processing list with it.  ``front`` records decomposition
    remainders pushed back onto the head as ``(op_name, duration)`` tags.
    """

    def __init__(
        self,
        batch: Batch,
        funcs: List[KernelFunc],
        content_key: Optional[Tuple] = None,
    ) -> None:
        if not funcs:
            raise ConfigError(f"batch {batch.batch_id}: empty function list")
        self.batch = batch
        self._funcs: Deque[KernelFunc] = deque(funcs)
        self.total_assembled = len(funcs)
        self._content_key = content_key
        self._popped = 0
        self._front: Tuple = ()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._funcs)

    @property
    def empty(self) -> bool:
        return not self._funcs

    @property
    def sig(self) -> Optional[Tuple]:
        """Consumption signature for plan-cache fingerprints (or None)."""
        if self._content_key is None:
            return None
        return (self._content_key, self._popped, self._front)

    def peek(self) -> KernelFunc:
        """The head kernel function without consuming it."""
        if not self._funcs:
            raise ConfigError("peek on empty FuncVec")
        return self._funcs[0]

    def pop(self) -> KernelFunc:
        """Consume and return the head kernel function."""
        if not self._funcs:
            raise ConfigError("pop on empty FuncVec")
        if self._front:
            self._front = self._front[1:]
        else:
            self._popped += 1
        return self._funcs.popleft()

    def push_front(self, func: KernelFunc) -> None:
        """Return a decomposition remainder to the head of the list."""
        self._front = ((func.op.name, func.duration),) + self._front
        self._funcs.appendleft(func)

    def next_switches(self) -> bool:
        """The paper's ``FuncVec[0].switch()``: does the kernel *after* the
        head have a different type (or is the head the last kernel)?"""
        if not self._funcs:
            raise ConfigError("switch test on empty FuncVec")
        if len(self._funcs) == 1:
            return True
        return self._funcs[0].is_comm != self._funcs[1].is_comm

    def next_switches_class(self, classify) -> bool:
        """Generalized switch test for policy-defined resource classes:
        does the kernel *after* the head land in a different class under
        ``classify`` (or is the head the last kernel)?"""
        if not self._funcs:
            raise ConfigError("switch test on empty FuncVec")
        if len(self._funcs) == 1:
            return True
        return classify(self._funcs[0]) != classify(self._funcs[1])

    def head_kind(self) -> KernelKind:
        """Kernel kind of the head function."""
        return self.peek().kind


class FunctionAssembler:
    """Builds a :class:`FuncVec` for each arriving batch (online procedure).

    Uses the batch's size / sequence length / phase and the target model to
    enumerate the per-device op sequence under the node's tensor-parallel
    degree, attaching profiled durations from the offline procedure's
    :class:`~repro.profiling.profiler.OpProfiler`.

    ``cache_size`` > 0 enables the assembly cache: function lists are
    memoized by batch shape ``(phase, size, seq_len, context_len)`` with LRU
    eviction, and a hit rebinds the cached wrappers to the new batch without
    calling ``strategy_ops_fn`` or the profiler.  **Contract:** the cache is
    only sound when ``strategy_ops_fn`` is a pure function of those four
    batch attributes (true for the built-in strategies, whose op enumerators
    close over a fixed model and TP degree); leave it disabled for ops
    functions that read anything else off the batch.
    """

    def __init__(
        self, strategy_ops_fn, profiler: OpProfiler, *, cache_size: int = 0
    ) -> None:
        """``strategy_ops_fn(batch) -> List[OpDesc]`` supplies the ops."""
        self._ops_fn = strategy_ops_fn
        self.profiler = profiler
        self.batches_assembled = 0
        if cache_size < 0:
            raise ConfigError("cache_size must be >= 0")
        self._cache_size = cache_size
        self._cache: "OrderedDict[Tuple, Tuple[KernelFunc, ...]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: Wall seconds spent enumerating ops + profiling on cache misses —
        #: the cost a hit avoids (exported as a perf gauge).
        self.build_seconds = 0.0

    def assemble(self, batch: Batch) -> FuncVec:
        """Build the batch's FuncVec with profiled durations (§3.2)."""
        key: Optional[Tuple] = None
        if self._cache_size:
            key = (batch.phase, batch.size, batch.seq_len, batch.context_len)
            templates = self._cache.get(key)
            if templates is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                bid, size, seq = batch.batch_id, batch.size, batch.seq_len
                funcs = [
                    rebind(t, batch_id=bid, batch_size=size, seq_len=seq)
                    for t in templates
                ]
                self.batches_assembled += 1
                return FuncVec(batch, funcs, content_key=key)
            self.cache_misses += 1
        start = time.perf_counter()
        ops = self._ops_fn(batch)
        funcs = [
            KernelFunc(
                op=op,
                duration=self.profiler.duration(op),
                kind=op.kind,
                batch_id=batch.batch_id,
                batch_size=batch.size,
                seq_len=batch.seq_len,
                decomposable=op.decomposable,
            )
            for op in ops
        ]
        if key is not None:
            self.build_seconds += time.perf_counter() - start
            self._cache[key] = tuple(funcs)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
                self.cache_evictions += 1
        self.batches_assembled += 1
        return FuncVec(batch, funcs, content_key=key)
