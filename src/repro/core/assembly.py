"""Function assembly (§3.2): per-batch lists of kernel launch wrappers.

For each newly-arrived batch Liger assembles a list of *function wrappers*.
In the C++ prototype a wrapper holds the kernel launch function pointer plus
"the kernel duration, the kernel type, the batch size, and the sequence
length"; here a :class:`KernelFunc` holds the :class:`~repro.models.ops.OpDesc`
(the launchable), the profiled no-load duration, and the same metadata.  The
assembled :class:`FuncVec` is what Algorithm 1 consumes: it exposes the
type-switch test (``FuncVec[0].switch()`` in the paper's pseudocode) and
in-order pop, and accepts push-front for decomposition remainders.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.errors import ConfigError
from repro.models.ops import OpDesc
from repro.profiling.profiler import OpProfiler
from repro.serving.request import Batch
from repro.sim.kernel import KernelKind

__all__ = ["KernelFunc", "FuncVec", "FunctionAssembler"]


@dataclass
class KernelFunc:
    """One kernel launch wrapper (the paper's function-wrapper record)."""

    op: OpDesc
    duration: float           # profiled no-load duration (µs)
    kind: KernelKind
    batch_id: int
    batch_size: int
    seq_len: int
    decomposable: bool

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigError(f"{self.op.name}: negative profiled duration")

    @property
    def is_comm(self) -> bool:
        return self.kind is KernelKind.COMM

    def same_type_as(self, kind: KernelKind) -> bool:
        """Type comparison at the scheduler's granularity: comm vs not."""
        return self.is_comm == (kind is KernelKind.COMM)


class FuncVec:
    """The assembled kernel-function list of one batch (FIFO with push-front)."""

    def __init__(self, batch: Batch, funcs: List[KernelFunc]) -> None:
        if not funcs:
            raise ConfigError(f"batch {batch.batch_id}: empty function list")
        self.batch = batch
        self._funcs: Deque[KernelFunc] = deque(funcs)
        self.total_assembled = len(funcs)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._funcs)

    @property
    def empty(self) -> bool:
        return not self._funcs

    def peek(self) -> KernelFunc:
        """The head kernel function without consuming it."""
        if not self._funcs:
            raise ConfigError("peek on empty FuncVec")
        return self._funcs[0]

    def pop(self) -> KernelFunc:
        """Consume and return the head kernel function."""
        if not self._funcs:
            raise ConfigError("pop on empty FuncVec")
        return self._funcs.popleft()

    def push_front(self, func: KernelFunc) -> None:
        """Return a decomposition remainder to the head of the list."""
        self._funcs.appendleft(func)

    def next_switches(self) -> bool:
        """The paper's ``FuncVec[0].switch()``: does the kernel *after* the
        head have a different type (or is the head the last kernel)?"""
        if not self._funcs:
            raise ConfigError("switch test on empty FuncVec")
        if len(self._funcs) == 1:
            return True
        return self._funcs[0].is_comm != self._funcs[1].is_comm

    def head_kind(self) -> KernelKind:
        """Kernel kind of the head function."""
        return self.peek().kind


class FunctionAssembler:
    """Builds a :class:`FuncVec` for each arriving batch (online procedure).

    Uses the batch's size / sequence length / phase and the target model to
    enumerate the per-device op sequence under the node's tensor-parallel
    degree, attaching profiled durations from the offline procedure's
    :class:`~repro.profiling.profiler.OpProfiler`.
    """

    def __init__(self, strategy_ops_fn, profiler: OpProfiler) -> None:
        """``strategy_ops_fn(batch) -> List[OpDesc]`` supplies the ops."""
        self._ops_fn = strategy_ops_fn
        self.profiler = profiler
        self.batches_assembled = 0

    def assemble(self, batch: Batch) -> FuncVec:
        """Build the batch's FuncVec with profiled durations (§3.2)."""
        ops = self._ops_fn(batch)
        funcs = [
            KernelFunc(
                op=op,
                duration=self.profiler.duration(op),
                kind=op.kind,
                batch_id=batch.batch_id,
                batch_size=batch.size,
                seq_len=batch.seq_len,
                decomposable=op.decomposable,
            )
            for op in ops
        ]
        self.batches_assembled += 1
        return FuncVec(batch, funcs)
