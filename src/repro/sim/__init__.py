"""The multi-GPU hardware simulator (CUDA/NCCL substitute).

This package replaces the GPUs, CUDA runtime, and NCCL of the paper's
testbeds with a deterministic discrete-event model that preserves the
behaviours Liger's scheduling depends on: in-order streams with asynchronous
host launch, CUDA-event synchronization (inter-stream and CPU-GPU), the
left-over kernel admission policy, emergent compute/communication contention,
and rendezvous collectives.  See DESIGN.md §5 for the semantics contract.
"""

from repro.sim.contention import (
    ContentionModel,
    DefaultContention,
    NullContention,
    default_contention_for,
)
from repro.sim.engine import Engine, EventHandle
from repro.sim.events import CudaEvent
from repro.sim.gpu import Gpu, Machine
from repro.sim.host import Host
from repro.sim.interconnect import CollectiveCostModel, NcclConfig
from repro.sim.kernel import CollectiveKind, CollectiveOp, Kernel, KernelKind
from repro.sim.stream import Command, CommandKind, Stream
from repro.sim.tracing import Trace, TraceRow

__all__ = [
    "Engine",
    "EventHandle",
    "CudaEvent",
    "Gpu",
    "Machine",
    "Host",
    "CollectiveCostModel",
    "NcclConfig",
    "CollectiveKind",
    "CollectiveOp",
    "Kernel",
    "KernelKind",
    "Command",
    "CommandKind",
    "Stream",
    "Trace",
    "TraceRow",
    "ContentionModel",
    "DefaultContention",
    "NullContention",
    "default_contention_for",
]
