"""Discrete-event simulation engine.

A deliberately small, deterministic event loop: a binary heap of
``(time, priority, sequence, handle)`` tuples.  Determinism matters more
than generality here — the Liger scheduler's behaviour depends on exact
kernel orderings, and the test suite asserts reproducible timelines — so ties
are broken first by an explicit priority and then by insertion order, and the
engine contains no randomness and no wall-clock access.

Events can be cancelled (kernel-completion events are rescheduled every time
the running set on a GPU changes); cancellation is O(1) by tombstoning the
handle rather than re-heapifying.  Tombstones are normally swallowed lazily
at pop time, but a workload that cancels much more than it fires (the single
completion timer under heavy churn) would otherwise grow the heap without
bound — so once cancelled entries outnumber live ones the heap is compacted
in one O(n) filter-and-heapify pass.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Engine", "EventHandle"]

#: Lazy tombstone swallowing keeps small heaps cheap; compaction only kicks
#: in past this floor (and only when tombstones outnumber live entries).
_COMPACT_MIN_TOMBSTONES = 64


class EventHandle:
    """A scheduled callback; call :meth:`cancel` to prevent it from firing."""

    __slots__ = ("time", "callback", "cancelled", "_engine")

    def __init__(
        self, time: float, callback: Callable[[], None], engine: "Engine"
    ) -> None:
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        self._engine._note_cancel()


class Engine:
    """The event loop.

    Attributes
    ----------
    now:
        Current simulation time in microseconds.  Monotonically non-decreasing.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        #: The ``until`` bound of the active run() call (None outside run or
        #: for unbounded runs) — the timeline fast path refuses to commit a
        #: batched advance that would jump past it.
        self._run_until: Optional[float] = None
        self._live_beats = 0
        # O(1) liveness bookkeeping: live entries still on the heap, and
        # cancelled entries (tombstones) not yet swallowed by a pop.
        self._live = 0
        self._tombstones = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` µs from now.

        ``priority`` breaks ties among events at the same timestamp (lower
        fires first); insertion order breaks remaining ties.
        """
        if not math.isfinite(delay):
            raise SimulationError(
                f"cannot schedule event with non-finite delay {delay} us"
            )
        if delay < 0:
            # Same skew tolerance as schedule_at: float-accumulated round
            # boundaries can land an epsilon short of "now", and rejecting
            # those while schedule_at(now - 1e-9) accepts them made the two
            # entry points disagree about the same instant.
            if delay < -1e-9:
                raise SimulationError(
                    f"cannot schedule event {delay} us in the past"
                )
            delay = 0.0
        # Inlined schedule_at: with delay >= 0 finite, now + delay is finite
        # and never below now, so its checks and clamp would all be no-ops.
        handle = EventHandle(self.now + delay, callback, self)
        heapq.heappush(
            self._heap, (handle.time, priority, next(self._seq), handle)
        )
        self._live += 1
        return handle

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time`` (µs)."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time}")
        if time < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        handle = EventHandle(max(time, self.now), callback, self)
        heapq.heappush(self._heap, (handle.time, priority, next(self._seq), handle))
        self._live += 1
        return handle

    def schedule_many(
        self,
        entries: "List[Tuple[float, int, Callable[[], None]]]",
    ) -> List[EventHandle]:
        """Batch-schedule ``(time, priority, callback)`` triples.

        The batched counterpart of :meth:`schedule_at` — one call splices a
        whole precomputed timeline into the queue without creating (and then
        popping) intermediate tombstones.  Relative order among same-instant
        entries follows list order, exactly as repeated ``schedule_at`` calls
        would order them.  For splices larger than the live heap the push
        loop is replaced by one extend-and-heapify pass (same complexity
        class as building the heap from scratch, far fewer comparisons).
        """
        handles: List[EventHandle] = []
        staged: List[Tuple[float, int, int, EventHandle]] = []
        for time, priority, callback in entries:
            if not math.isfinite(time):
                raise SimulationError(f"non-finite event time: {time}")
            if time < self.now - 1e-9:
                raise SimulationError(
                    f"cannot schedule event at {time} before current time {self.now}"
                )
            handle = EventHandle(max(time, self.now), callback, self)
            staged.append((handle.time, priority, next(self._seq), handle))
            handles.append(handle)
        heap = self._heap
        if len(staged) > len(heap):
            heap.extend(staged)
            heapq.heapify(heap)
        else:
            for item in staged:
                heapq.heappush(heap, item)
        self._live += len(staged)
        return handles

    def heartbeat(
        self,
        interval: float,
        fn: Callable[[], Optional[bool]],
        *,
        priority: int = 9,
    ) -> None:
        """Invoke ``fn`` every ``interval`` µs while other live events remain.

        The periodic hook the fault subsystem builds on (watchdog checks,
        recovery probes).  ``fn`` returning ``False`` stops the beat; any
        other return value continues it.  A beat never keeps an otherwise
        idle engine alive: when the queue holds no live event besides
        heartbeats, no beat is rescheduled and the run quiesces — beats do
        not count *each other* as liveness, so any number of concurrent
        heartbeats (watchdog, recovery probe, backpressure breaker) can
        never turn a finite simulation into an infinite one.
        """
        if not math.isfinite(interval) or interval <= 0:
            raise SimulationError(f"heartbeat interval must be positive, got {interval}")

        def _beat() -> None:
            self._live_beats -= 1
            if fn() is False:
                return
            if self.pending > self._live_beats:
                self._live_beats += 1
                self.schedule(interval, _beat, priority=priority)

        self._live_beats += 1
        self.schedule(interval, _beat, priority=priority)

    # ------------------------------------------------------------------
    # Tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A live heap entry became a tombstone; compact when they dominate."""
        self._live -= 1
        self._tombstones += 1
        if (
            self._tombstones > _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e[3].cancelled]
            heapq.heapify(self._heap)
            self._tombstones = 0

    def _consume(self, handle: EventHandle) -> Optional[Callable[[], None]]:
        """Take a popped live entry's callback; late cancels become no-ops."""
        self._live -= 1
        callback = handle.callback
        # Mark consumed directly — the entry is already off the heap, so this
        # must not count as a tombstone.
        handle.cancelled = True
        handle.callback = None
        return callback

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> float:
        """Drain the event queue; return the final simulation time.

        Parameters
        ----------
        until:
            Stop (without executing) at the first event strictly after this
            time.  ``None`` runs to quiescence.
        max_events:
            Safety valve against runaway feedback loops in user callbacks.
        """
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        self._run_until = until
        try:
            processed = 0
            heap = self._heap
            while heap:
                entry = heap[0]
                handle = entry[3]
                if handle.cancelled:
                    heapq.heappop(heap)
                    self._tombstones -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                heapq.heappop(heap)
                self.now = entry[0]
                # Inlined _consume — one call per event adds up.
                self._live -= 1
                callback = handle.callback
                handle.cancelled = True
                handle.callback = None
                if callback is not None:
                    callback()
                processed += 1
                self._events_processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a feedback loop in a callback"
                    )
                heap = self._heap  # compaction may have replaced the list
            if until is not None and until > self.now:
                self.now = until
            return self.now
        finally:
            self._running = False
            self._run_until = None

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False when idle.

        Shares :meth:`run`'s inlined consume/tombstone discipline: tombstones
        are swallowed by peeking at the root (so a cancel arriving between
        peek and pop can never decrement the tombstone count twice), the
        consume is inlined rather than routed through :meth:`_consume`, and
        the heap reference is re-read after each drain iteration in case a
        cancellation-triggered compaction swapped the list.
        """
        heap = self._heap
        while heap:
            handle = heap[0][3]
            if handle.cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
                heap = self._heap  # compaction may have replaced the list
                continue
            entry = heapq.heappop(heap)
            self.now = entry[0]
            # Inlined _consume — identical to run()'s hot loop.
            self._live -= 1
            callback = handle.callback
            handle.cancelled = True
            handle.callback = None
            if callback is not None:
                callback()
            self._events_processed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when idle."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._tombstones -= 1
            heap = self._heap  # compaction may have replaced the list
        return heap[0][0] if heap else None
