"""Discrete-event simulation engine.

A deliberately small, deterministic event loop: a binary heap of
``(time, priority, sequence, callback)`` tuples.  Determinism matters more
than generality here — the Liger scheduler's behaviour depends on exact
kernel orderings, and the test suite asserts reproducible timelines — so ties
are broken first by an explicit priority and then by insertion order, and the
engine contains no randomness and no wall-clock access.

Events can be cancelled (kernel-completion events are rescheduled every time
the running set on a GPU changes); cancellation is O(1) by tombstoning the
handle rather than re-heapifying.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Engine", "EventHandle"]


@dataclass(order=True)
class _HeapEntry:
    time: float
    priority: int
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled callback; call :meth:`cancel` to prevent it from firing."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        self.cancelled = True
        self.callback = None


class Engine:
    """The event loop.

    Attributes
    ----------
    now:
        Current simulation time in microseconds.  Monotonically non-decreasing.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._live_beats = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` µs from now.

        ``priority`` breaks ties among events at the same timestamp (lower
        fires first); insertion order breaks remaining ties.
        """
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(f"cannot schedule event {delay} us in the past")
        return self.schedule_at(self.now + delay, callback, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time`` (µs)."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time: {time}")
        if time < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        handle = EventHandle(max(time, self.now), callback)
        entry = _HeapEntry(handle.time, priority, next(self._seq), handle)
        heapq.heappush(self._heap, entry)
        return handle

    def heartbeat(
        self,
        interval: float,
        fn: Callable[[], Optional[bool]],
        *,
        priority: int = 9,
    ) -> None:
        """Invoke ``fn`` every ``interval`` µs while other live events remain.

        The periodic hook the fault subsystem builds on (watchdog checks,
        recovery probes).  ``fn`` returning ``False`` stops the beat; any
        other return value continues it.  A beat never keeps an otherwise
        idle engine alive: when the queue holds no live event besides
        heartbeats, no beat is rescheduled and the run quiesces — beats do
        not count *each other* as liveness, so any number of concurrent
        heartbeats (watchdog, recovery probe, backpressure breaker) can
        never turn a finite simulation into an infinite one.
        """
        if not math.isfinite(interval) or interval <= 0:
            raise SimulationError(f"heartbeat interval must be positive, got {interval}")

        def _beat() -> None:
            self._live_beats -= 1
            if fn() is False:
                return
            if self.pending > self._live_beats:
                self._live_beats += 1
                self.schedule(interval, _beat, priority=priority)

        self._live_beats += 1
        self.schedule(interval, _beat, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> float:
        """Drain the event queue; return the final simulation time.

        Parameters
        ----------
        until:
            Stop (without executing) at the first event strictly after this
            time.  ``None`` runs to quiescence.
        max_events:
            Safety valve against runaway feedback loops in user callbacks.
        """
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._heap:
                entry = self._heap[0]
                handle = entry.handle
                if handle.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = entry.time
                callback = handle.callback
                handle.cancel()  # mark consumed so late cancels are harmless
                if callback is not None:
                    callback()
                processed += 1
                self._events_processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a feedback loop in a callback"
                    )
            if until is not None and until > self.now:
                self.now = until
            return self.now
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False when idle."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            handle = entry.handle
            if handle.cancelled:
                continue
            self.now = entry.time
            callback = handle.callback
            handle.cancel()
            if callback is not None:
                callback()
            self._events_processed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.handle.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None when idle."""
        while self._heap and self._heap[0].handle.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
