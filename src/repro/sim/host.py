"""The host (CPU) model: launch overhead and CPU-GPU synchronization.

The paper's §4.5 quantifies why launch modelling matters: a null kernel
launch costs ~5 µs, but when the CPU must wait for communication kernels on
*multiple* GPUs to complete before relaunching (the CPU-GPU synchronization
path), the exposed gap exceeds 20 µs — inconsistent per-GPU launch times plus
PCIe contention.  Liger's hybrid synchronization pre-launches the next kernel
groups while one kernel is still running, hiding this entirely.

The prototype runs under MPI (`mpirun -np 4 ./main`): each GPU has its own
host *rank* issuing launches, so the :class:`Host` keeps **one CPU cursor per
GPU**.  A launch advances only its GPU's cursor and stamps the resulting time
as the command's ``available_at``; the GPU sees the command only from then
on.  If the GPU is still busy past that time the overhead is hidden — the
asynchronous-launch semantics the hybrid approach exploits.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.events import CudaEvent
from repro.sim.gpu import Machine
from repro.sim.kernel import Kernel
from repro.sim.stream import Stream
from repro.units import us

__all__ = ["Host"]

#: CPU cost of enqueueing an event record/wait — much cheaper than a launch.
EVENT_CMD_OVERHEAD = us(0.3)


class Host:
    """CPU-side command issue for one node (one launcher rank per GPU).

    Parameters
    ----------
    machine:
        The device side.
    launch_overhead:
        Per-kernel CPU launch cost (µs); defaults to the GPU spec value.
    sync_visibility_latency:
        Delay (µs) between an event recording on the GPU and the CPU
        observing it (PCIe round-trip + driver polling).
    multi_gpu_launch_penalty:
        Extra CPU-GPU sync cost when the host must confirm completion on
        *all* GPUs before proceeding (§4.5's 5 µs → >20 µs effect); defaults
        to the node spec value.
    """

    def __init__(
        self,
        machine: Machine,
        *,
        launch_overhead: Optional[float] = None,
        sync_visibility_latency: float = us(2.0),
        multi_gpu_launch_penalty: Optional[float] = None,
    ) -> None:
        self.machine = machine
        self.launch_overhead = (
            machine.node.gpu.kernel_launch_overhead
            if launch_overhead is None
            else launch_overhead
        )
        if self.launch_overhead < 0:
            raise ConfigError("launch_overhead must be >= 0")
        self.sync_visibility_latency = sync_visibility_latency
        self.multi_gpu_launch_penalty = (
            machine.node.multi_gpu_launch_penalty
            if multi_gpu_launch_penalty is None
            else multi_gpu_launch_penalty
        )
        #: One CPU time cursor per GPU rank: a rank issues commands serially.
        self.cursors: List[float] = [0.0] * machine.node.num_gpus
        self.launches_issued = 0

    # ------------------------------------------------------------------
    def cursor(self, gpu_id: int) -> float:
        """Current CPU time of the launcher rank for ``gpu_id``."""
        return self.cursors[gpu_id]

    def advance_to(self, time: float, gpu_id: Optional[int] = None) -> None:
        """Move cursor(s) forward (never backward) to ``time``."""
        if gpu_id is None:
            self.cursors = [max(c, time) for c in self.cursors]
        else:
            self.cursors[gpu_id] = max(self.cursors[gpu_id], time)

    def catch_up(self, gpu_id: Optional[int] = None) -> None:
        """Advance cursor(s) to the current simulation time (host was idle)."""
        self.advance_to(self.machine.engine.now, gpu_id)

    # ------------------------------------------------------------------
    # Command issue (each advances its rank's CPU cursor)
    # ------------------------------------------------------------------
    def launch_kernel(
        self, stream: Stream, kernel: Kernel, *, extra_delay: float = 0.0
    ) -> float:
        """Issue one kernel launch; returns its availability time.

        ``extra_delay`` adds device-side availability latency beyond the CPU
        launch cost without consuming CPU time — used to model the
        launch-queue lag communication kernels suffer when everything is
        pre-launched and ordered purely by inter-stream events (§3.4).
        """
        if extra_delay < 0:
            raise ConfigError("extra_delay must be >= 0")
        g = stream.gpu_id
        self.cursors[g] += self.launch_overhead
        self.launches_issued += 1
        self.machine.launch(stream, kernel, available_at=self.cursors[g] + extra_delay)
        return self.cursors[g]

    def record_event(self, stream: Stream, event: CudaEvent) -> float:
        """Issue an event-record command."""
        g = stream.gpu_id
        self.cursors[g] += EVENT_CMD_OVERHEAD
        self.machine.record_event(stream, event, available_at=self.cursors[g])
        return self.cursors[g]

    def wait_event(self, stream: Stream, event: CudaEvent) -> float:
        """Issue a stream-wait command (inter-stream sync, no CPU blocking)."""
        g = stream.gpu_id
        self.cursors[g] += EVENT_CMD_OVERHEAD
        self.machine.wait_event(stream, event, available_at=self.cursors[g])
        return self.cursors[g]

    def launch_group(self, launches: Sequence[Tuple[Stream, Kernel]]) -> List[float]:
        """Issue a sequence of launches; per-rank cursors advance independently."""
        return [self.launch_kernel(s, k) for s, k in launches]

    # ------------------------------------------------------------------
    # CPU-GPU synchronization
    # ------------------------------------------------------------------
    def when_event(
        self,
        event: CudaEvent,
        callback: Callable[[], None],
        *,
        multi_gpu: bool = False,
    ) -> None:
        """Run ``callback`` when the CPU observes ``event`` recorded.

        The callback runs with all cursors advanced to the observation time —
        the launcher ranks were blocked waiting.  ``multi_gpu=True`` adds the
        node's multi-GPU completion-confirmation penalty (§4.5).
        """
        extra = self.multi_gpu_launch_penalty if multi_gpu else 0.0
        delay = self.sync_visibility_latency + extra

        def _wrapped() -> None:
            self.advance_to(self.machine.engine.now)
            callback()

        event.on_host(_wrapped, delay=delay)

    def when_all_events(
        self,
        events: Iterable[CudaEvent],
        callback: Callable[[], None],
        *,
        multi_gpu: bool = False,
    ) -> None:
        """Run ``callback`` once every event in ``events`` has recorded."""
        pending = list(events)
        remaining = {e.uid for e in pending}

        def _one_done(uid: int) -> Callable[[], None]:
            def _fn() -> None:
                remaining.discard(uid)
                if not remaining:
                    self.advance_to(self.machine.engine.now)
                    callback()

            return _fn

        if not pending:
            # Degenerate case: fire on the next engine tick.
            self.machine.engine.schedule(0.0, callback)
            return
        for e in pending:
            self.when_event(e, _one_done(e.uid), multi_gpu=multi_gpu)
