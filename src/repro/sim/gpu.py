"""The multi-GPU machine: command pumping, admission, progress integration.

This module is the behavioural core of the hardware substitute.  It executes
stream commands with the semantics the paper's scheduling contribution
depends on:

* **In-order streams** — a stream runs one kernel at a time, in FIFO order,
  and a command is only visible to the device once the host has launched it
  (``Command.available_at``).
* **Left-over admission policy** (§2.3.1) — a kernel at the head of its
  stream becomes *ready*; ready kernels are admitted onto the device only
  while the sum of resident SM occupancies stays ≤ 1.  Among kernels ready at
  the same instant, computation kernels are admitted before communication
  kernels regardless of stream priority — reproducing the paper's observation
  that high-priority streams do not prevent communication-kernel execution
  lag.
* **Emergent contention** — kernel progress is integrated piecewise: whenever
  any device's resident set changes, elapsed progress is banked at the old
  rates and per-kernel slowdowns are recomputed from the
  :class:`~repro.sim.contention.ContentionModel`.
* **Collective rendezvous** — a collective's member kernels occupy SMs from
  the moment they are admitted (NCCL kernels spin while waiting for peers),
  but the operation makes progress only once *every* rank has admitted its
  member, at the rate of the most-contended member, and all members finish at
  the same instant.

One :class:`Machine` owns all GPUs of a node so that cross-device state
(collectives, the single completion timer) has a single coordinator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.hw.devices import NodeSpec
from repro.sim.contention import ContentionModel, DefaultContention
from repro.sim.engine import Engine, EventHandle
from repro.sim.events import CudaEvent
from repro.sim.kernel import CollectiveOp, Kernel
from repro.sim.stream import Command, CommandKind, Stream, _fast_command
from repro.sim.tracing import Trace

try:  # pragma: no cover - the container bakes numpy into the toolchain
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["Machine", "Gpu"]

_EPS = 1e-6
_ready_seq = itertools.count()

#: Active-set size past which progress banking runs on numpy arrays.  The
#: gather/scatter has fixed cost, so typical decode sets stay scalar; the
#: branches are bit-identical because banking is purely elementwise
#: (``remaining - dt / slowdown`` per kernel — no cross-kernel reduction).
_VECTOR_MIN_ACTIVE = 32

# Hoisted enum members: the pump compares command kinds ~100k times per
# simulated second of decode, and a module-global load beats two attribute
# lookups at that call volume.
_LAUNCH = CommandKind.LAUNCH
_RECORD_EVENT = CommandKind.RECORD_EVENT
_WAIT_EVENT = CommandKind.WAIT_EVENT

#: Shared empty slowdown map for devices with nothing resident.
_NO_SLOWDOWNS: Dict[int, float] = {}


@dataclass(slots=True)
class _RunState:
    """A kernel that is ready or resident on a device."""

    kernel: Kernel
    gpu_id: int
    stream: Stream
    ready_seq: int = field(default_factory=lambda: next(_ready_seq))
    ready_at: float = 0.0
    start_at: float = -1.0
    remaining: float = 0.0
    slowdown: float = 1.0
    # Accumulated (stretched-time, no-load-time) for average-slowdown stats.
    stretched: float = 0.0


@dataclass(slots=True)
class _CollectiveRun:
    """Shared progress state of an in-flight collective."""

    op: CollectiveOp
    members: Dict[int, _RunState] = field(default_factory=dict)
    started_at: float = -1.0
    remaining: float = 0.0
    slowdown: float = 1.0
    stretched: float = 0.0

    @property
    def started(self) -> bool:
        return self.started_at >= 0.0


class Gpu:
    """Per-device state: streams, ready set, resident set."""

    def __init__(self, gpu_id: int, machine: "Machine") -> None:
        self.gpu_id = gpu_id
        self.machine = machine
        self.streams: List[Stream] = []
        self.ready: List[_RunState] = []
        self.resident: Dict[int, _RunState] = {}
        self.used_occupancy = 0.0
        #: Non-collective residents in admission order — the progress
        #: integrator iterates this instead of re-filtering ``resident``.
        self.active_local: Dict[int, _RunState] = {}
        #: Bumped on every admit/release; keys the machine's per-device
        #: contention-slowdown cache.
        self.resident_epoch = 0

    def stream(self, name: str, priority: int = 0) -> Stream:
        """Get-or-create the stream named ``name`` on this device.

        Idempotent by name: repeated calls return the same stream (asking
        for a different priority on an existing name is a config error) —
        creating a fresh stream per call is the kind of silent concurrency
        bug no caller ever wants.
        """
        for s in self.streams:
            if s.name == name:
                if s.priority != priority:
                    raise ConfigError(
                        f"stream {name!r} on GPU {self.gpu_id} already exists "
                        f"with priority {s.priority}, requested {priority}"
                    )
                return s
        s = Stream(self.gpu_id, name, priority)
        self.streams.append(s)
        return s

    def resident_kernels(self) -> List[Kernel]:
        """Kernels currently occupying this device."""
        return [rs.kernel for rs in self.resident.values()]

    @property
    def busy(self) -> bool:
        return bool(self.resident) or bool(self.ready)

    def all_idle(self) -> bool:
        """True when nothing is resident, ready, or queued on any stream."""
        return not self.busy and all(s.idle for s in self.streams)


class Machine:
    """A simulated multi-GPU node executing stream commands.

    Parameters
    ----------
    node:
        Hardware description (GPU specs + topology).
    engine:
        Shared event loop.  One engine may drive several machines in
        principle; the serving layer uses one machine per node.
    contention:
        Interference model; defaults to the calibrated
        :class:`~repro.sim.contention.DefaultContention`.
    trace:
        Optional timeline recorder.
    """

    def __init__(
        self,
        node: NodeSpec,
        engine: Optional[Engine] = None,
        *,
        contention: Optional[ContentionModel] = None,
        trace: Optional[Trace] = None,
        max_connections: int = 2,
        connection_contention_delay: float = 3.0,
    ) -> None:
        if max_connections < 1:
            raise ConfigError("max_connections must be >= 1")
        if connection_contention_delay < 0:
            raise ConfigError("connection_contention_delay must be >= 0")
        self.node = node
        self.engine = engine or Engine()
        self.contention = contention or DefaultContention()
        self.trace = trace
        #: Models CUDA_DEVICE_MAX_CONNECTIONS (the paper's artifact sets 2):
        #: the host↔GPU command channels are limited, so when more than this
        #: many streams on one device hold pending work, the extra streams'
        #: commands reach the device late.  Hard blocking would risk
        #: artificial deadlocks our event model cannot resolve, so the limit
        #: is soft: each over-subscribed stream pays a per-command
        #: visibility delay (µs).
        self.max_connections = max_connections
        self.connection_contention_delay = connection_contention_delay
        #: Optional fault-injection hook (see :mod:`repro.faults.injector`).
        #: When None — the default — every fault code path is skipped and the
        #: machine behaves bit-for-bit like a fault-free build.
        self.fault_injector = None
        self.gpus: List[Gpu] = [Gpu(i, self) for i in range(node.num_gpus)]
        self._collectives: Dict[int, _CollectiveRun] = {}
        #: Per-device contention slowdown maps, keyed by ``resident_epoch``.
        #: Valid because contention models are pure functions of the resident
        #: kernel set (fault inflation is layered on top, never cached).
        self._slowdown_cache: Dict[int, tuple] = {}
        #: Shape-keyed slowdown vectors (see ContentionModel.pure_in_shape):
        #: steady-state decode re-creates the same resident shapes with fresh
        #: kernel uids, so the epoch cache alone misses constantly.
        self._shape_cache: Dict[tuple, tuple] = {}
        self._contention_pure_in_shape = bool(
            getattr(self.contention, "pure_in_shape", False)
        )
        #: Public toggle for the shape memo (the model must also declare
        #: ``pure_in_shape``).  The perf harness's cache-off arm clears it
        #: to measure the pre-memo hot path; output is bit-identical.
        self.slowdown_memo = True
        self._last_bank_time = 0.0
        self._completion_timer: Optional[EventHandle] = None
        self._pump_scheduled: Dict[int, bool] = {}
        # Pre-bound per-device pump callbacks: the pump-scheduling paths and
        # event waiters fire tens of thousands of times per simulated second,
        # and building a fresh closure for each showed up in profiles.
        self._run_pump_fns: List[Callable[[], None]] = [
            (lambda gid=g.gpu_id: self._run_pump(gid)) for g in self.gpus
        ]
        self._kick_pump_fns: List[Callable[[], None]] = [
            (lambda gid=g.gpu_id: self._schedule_pump(gid)) for g in self.gpus
        ]
        self.kernels_completed = 0
        # Timeline fast path bookkeeping (repro.sim.timeline): when tracking
        # is armed, every pump/kick/deferred handle this machine schedules is
        # appended here so the window compiler can discover its seed events
        # in O(1) instead of scanning the engine heap.  Fired handles are
        # consumed (cancelled) by the engine, so the executor prunes the list
        # lazily each window.  Completeness is a hit-rate concern only: a
        # pending machine event that slipped past tracking fails the
        # compiler's commit-time heap verification and falls back to the
        # interpreted path.
        self._track_events = False
        self._tracked_events: List[EventHandle] = []
        #: Set by :meth:`halt` — a crashed node.  All submission and pump
        #: paths become no-ops; nothing in flight ever completes.
        self.halted = False
        # Observers notified with each completed kernel (serving layer hooks).
        self._completion_observers: List[Callable[[Kernel, float], None]] = []

    # ------------------------------------------------------------------
    # Topology / construction helpers
    # ------------------------------------------------------------------
    def gpu(self, gpu_id: int) -> Gpu:
        """The per-device state object for ``gpu_id``."""
        if not 0 <= gpu_id < len(self.gpus):
            raise ConfigError(f"no GPU {gpu_id} on node {self.node.name}")
        return self.gpus[gpu_id]

    def on_kernel_complete(self, fn: Callable[[Kernel, float], None]) -> None:
        """Register an observer called as ``fn(kernel, end_time)``."""
        self._completion_observers.append(fn)

    # ------------------------------------------------------------------
    # Command submission (host side)
    # ------------------------------------------------------------------
    def submit(self, stream: Stream, command: Command) -> None:
        """Enqueue a command; a pump is scheduled only when one is needed.

        When the device already has ``max_connections`` busier streams, the
        command additionally pays the connection-contention delay before the
        device sees it (soft CUDA_DEVICE_MAX_CONNECTIONS model).

        A pump at the command's availability instant is scheduled *eagerly*
        only when the stream was idle — otherwise something ahead of this
        command (a running kernel, a blocked event, an earlier queued
        command) still has to retire, and each of those retirements already
        triggers a pump; if that pump finds this command waiting at the head
        it schedules the availability pump *lazily* at the pre-stamped
        ``Command.pump_at``, which makes the skipped eager pumps pure
        no-ops removed from the event stream.
        """
        if self.halted:
            return  # crashed node: commands are dropped on the floor
        gpu = self.gpus[stream.gpu_id]
        # Position of this stream among the device's busy streams (the old
        # busy-list was built only to take this index); the idle test is
        # inlined — this is the hottest property access in the simulator.
        earlier_busy = 0
        for s in gpu.streams:
            if s is stream:
                break
            if s.queue or s.running_kernel is not None or s.blocked_on_event is not None:
                earlier_busy += 1
        if earlier_busy >= self.max_connections:
            command.available_at += self.connection_contention_delay
        if stream.visibility_penalty:
            command.available_at += stream.visibility_penalty
        if self.fault_injector is not None:
            command.available_at += self.fault_injector.submit_delay(stream)
        was_idle = not (
            stream.queue
            or stream.running_kernel is not None
            or stream.blocked_on_event is not None
        )
        stream.queue.append(command)
        now = self.engine.now
        delay = command.available_at - now
        if delay <= _EPS:
            command.pump_at = now
            if was_idle:
                self._schedule_pump(stream.gpu_id, 0.0)
        else:
            command.pump_at = now + delay
            if was_idle:
                self._schedule_avail_pump(stream, command)

    def launch(self, stream: Stream, kernel: Kernel, available_at: float) -> None:
        """Convenience: submit a LAUNCH command."""
        self.submit(stream, _fast_command(_LAUNCH, available_at, kernel=kernel))

    def record_event(self, stream: Stream, event: CudaEvent, available_at: float) -> None:
        """Convenience: submit a RECORD_EVENT command."""
        self.submit(stream, _fast_command(_RECORD_EVENT, available_at, event=event))

    def wait_event(self, stream: Stream, event: CudaEvent, available_at: float) -> None:
        """Convenience: submit a WAIT_EVENT command."""
        self.submit(stream, _fast_command(_WAIT_EVENT, available_at, event=event))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, *, check_quiescent: bool = True) -> float:
        """Drive the engine; verify no stranded work unless ``until`` given."""
        end = self.engine.run(until=until)
        if check_quiescent and until is None:
            stuck = self.stuck_summary()
            if stuck:
                raise DeadlockError(
                    "simulation quiesced with pending work: " + "; ".join(stuck[:8])
                )
        return end

    def stuck_summary(self) -> List[str]:
        """Describe every piece of work currently unable to make progress.

        Used by the quiescence check above and by the fault subsystem's
        watchdog to name the stuck streams/kernels in its diagnostics.
        """
        stuck = [repr(s) for g in self.gpus for s in g.streams if not s.idle]
        stuck += [f"ready:{rs.kernel.name}" for g in self.gpus for rs in g.ready]
        for crun in self._collectives.values():
            if not crun.started:
                missing = sorted(set(crun.op.participants) - set(crun.members))
                stuck.append(
                    f"collective:{crun.op.name} awaiting ranks {missing}"
                )
        return stuck

    # ------------------------------------------------------------------
    # Pumping: advance stream heads into the ready set
    # ------------------------------------------------------------------
    def _schedule_pump(self, gpu_id: int, delay: float = 0.0) -> None:
        # Collapse same-time pumps: one outstanding zero-delay pump per GPU.
        if delay <= _EPS:
            if self._pump_scheduled.get(gpu_id):
                return
            self._pump_scheduled[gpu_id] = True
            handle = self.engine.schedule(
                0.0, self._run_pump_fns[gpu_id], priority=5
            )
        else:
            handle = self.engine.schedule(
                delay, self._run_pump_fns[gpu_id], priority=5
            )
        if self._track_events:
            self._tracked_events.append(handle)

    def _schedule_avail_pump(self, stream: Stream, command: Command) -> None:
        """Arm one pump at ``command.pump_at`` (dedup'd per stream head)."""
        if stream.avail_pump_at == command.pump_at:
            return
        stream.avail_pump_at = command.pump_at
        handle = self.engine.schedule_at(
            command.pump_at, self._run_pump_fns[stream.gpu_id], priority=5
        )
        if self._track_events:
            self._tracked_events.append(handle)

    def _run_pump(self, gpu_id: int) -> None:
        self._pump_scheduled[gpu_id] = False
        if self.halted:
            return
        self._pump(self.gpus[gpu_id])

    def _pump(self, gpu: Gpu) -> None:
        """Advance every stream on ``gpu`` as far as dependencies allow.

        The sweep processes at most one command per stream per pass — the
        per-pass round-robin is load-bearing, because ``ready_seq`` (and
        with it same-instant admission order) follows pop order.
        """
        now = self.engine.now
        threshold = now + _EPS
        streams = gpu.streams
        progressed = True
        became_ready = False
        while progressed:
            progressed = False
            for stream in streams:
                if stream.running_kernel is not None:
                    continue
                blocked = stream.blocked_on_event
                if blocked is not None:
                    if blocked.is_recorded:
                        stream.blocked_on_event = None
                    else:
                        continue
                queue = stream.queue
                if not queue:
                    continue
                cmd = queue[0]
                if cmd.available_at > threshold:
                    # Not yet visible: make sure a pump fires at availability
                    # (the eager submit-time pump is elided for busy streams).
                    self._schedule_avail_pump(stream, cmd)
                    continue
                kind = cmd.kind
                if kind is _LAUNCH:
                    stream.retired += 1
                    queue.popleft()
                    kernel = cmd.kernel
                    stream.running_kernel = kernel
                    gpu.ready.append(
                        _RunState(
                            kernel=kernel,
                            gpu_id=gpu.gpu_id,
                            stream=stream,
                            ready_at=now,
                        )
                    )
                    became_ready = True
                    progressed = True
                elif kind is _RECORD_EVENT:
                    stream.retired += 1
                    queue.popleft()
                    cmd.event.record(now, self._deferred)
                    progressed = True
                else:  # WAIT_EVENT
                    stream.retired += 1
                    queue.popleft()
                    event = cmd.event
                    if event.is_recorded:
                        progressed = True
                    else:
                        stream.blocked_on_event = event
                        event.add_stream_waiter(self._kick_pump_fns[gpu.gpu_id])
        if became_ready or gpu.ready:
            self._try_admit(gpu)

    def _deferred(self, delay: float, callback: Callable[[], None]) -> None:
        """Deferred-call hook handed to CudaEvent.record."""
        handle = self.engine.schedule(delay, callback, priority=4)
        if self._track_events:
            self._tracked_events.append(handle)

    # ------------------------------------------------------------------
    # Admission: the left-over policy
    # ------------------------------------------------------------------
    @staticmethod
    def _admission_key(rs: _RunState):
        # Earlier-ready first; at the same instant compute-like kernels are
        # admitted before communication kernels (the GPU's left-over policy
        # favours computation regardless of stream priority); then stream
        # priority, then launch order.
        return (
            rs.ready_at,
            0 if rs.kernel.kind.is_compute_like else 1,
            -rs.stream.priority,
            rs.ready_seq,
        )

    def _try_admit(self, gpu: Gpu) -> None:
        if not gpu.ready:
            return
        self._bank_progress()
        admitted_any = False
        gpu.ready.sort(key=self._admission_key)
        still_ready: List[_RunState] = []
        for rs in gpu.ready:
            if gpu.used_occupancy + rs.kernel.occupancy <= 1.0 + _EPS:
                self._admit(gpu, rs)
                admitted_any = True
            else:
                still_ready.append(rs)
        gpu.ready = still_ready
        if admitted_any:
            self._reschedule()

    def _admit(self, gpu: Gpu, rs: _RunState) -> None:
        now = self.engine.now
        rs.start_at = now
        # Stamped for completion observers that want measured durations
        # (e.g. online contention estimation) without a full trace.
        rs.kernel.meta["_started_at"] = now
        rs.remaining = rs.kernel.duration
        gpu.resident[rs.kernel.uid] = rs
        gpu.used_occupancy += rs.kernel.occupancy
        gpu.resident_epoch += 1
        coll = rs.kernel.collective
        if coll is None:
            gpu.active_local[rs.kernel.uid] = rs
        if coll is not None:
            crun = self._collectives.get(coll.uid)
            if crun is None:
                crun = _CollectiveRun(op=coll, remaining=coll.duration)
                self._collectives[coll.uid] = crun
            if gpu.gpu_id in crun.members:
                raise SimulationError(
                    f"collective {coll.name}: duplicate member on GPU {gpu.gpu_id}"
                )
            crun.members[gpu.gpu_id] = rs
            if set(crun.members) == set(coll.participants):
                crun.started_at = now

    # ------------------------------------------------------------------
    # Progress integration
    # ------------------------------------------------------------------
    def _bank_progress(self) -> None:
        """Integrate elapsed progress at the current slowdowns."""
        now = self.engine.now
        dt = now - self._last_bank_time
        if dt <= _EPS:
            self._last_bank_time = now
            return
        for gpu in self.gpus:
            active = gpu.active_local
            if _np is not None and len(active) >= _VECTOR_MIN_ACTIVE:
                rss = list(active.values())
                cnt = len(rss)
                rem = _np.fromiter(
                    (rs.remaining for rs in rss), _np.float64, cnt
                ) - dt / _np.fromiter(
                    (rs.slowdown for rs in rss), _np.float64, cnt
                )
                # where() mirrors the scalar branch exactly (including its
                # NaN-to-zero behaviour); a masked assignment would not.
                for rs, r in zip(rss, _np.where(rem > 0.0, rem, 0.0).tolist()):
                    rs.remaining = r
                    rs.stretched += dt
            else:
                for rs in active.values():
                    rem = rs.remaining - dt / rs.slowdown
                    rs.remaining = rem if rem > 0.0 else 0.0
                    rs.stretched += dt
        for crun in self._collectives.values():
            if crun.started_at >= 0.0:
                rem = crun.remaining - dt / crun.slowdown
                crun.remaining = rem if rem > 0.0 else 0.0
                crun.stretched += dt
        self._last_bank_time = now

    def _gpu_slowdowns(self, gpu: Gpu) -> Dict[int, float]:
        """Contention map for one device, cached per resident-set epoch.

        When the model declares shape purity, the slowdown *vector* is
        additionally memoized by the resident kernels' shapes — new uids
        with recurring shapes (the steady-decode pattern) skip the model
        entirely and just re-key the cached floats.
        """
        cached = self._slowdown_cache.get(gpu.gpu_id)
        if cached is not None and cached[0] == gpu.resident_epoch:
            return cached[1]
        kernels = [rs.kernel for rs in gpu.resident.values()]
        if self._contention_pure_in_shape and self.slowdown_memo:
            shape = tuple(
                (k.kind, k.occupancy, k.memory_intensity) for k in kernels
            )
            values = self._shape_cache.get(shape)
            if values is None:
                per_kernel = self.contention.slowdowns(kernels)
                self._shape_cache[shape] = tuple(
                    per_kernel[k.uid] for k in kernels
                )
                if len(self._shape_cache) > 8192:
                    # Unbounded shape diversity (e.g. a bursty prefill mix)
                    # must not leak; recurring shapes repopulate quickly.
                    self._shape_cache.clear()
            else:
                per_kernel = {
                    k.uid: v for k, v in zip(kernels, values)
                }
        else:
            per_kernel = self.contention.slowdowns(kernels)
        self._slowdown_cache[gpu.gpu_id] = (gpu.resident_epoch, per_kernel)
        return per_kernel

    def refresh_rates(self) -> None:
        """Re-bank progress and recompute slowdowns at the current instant.

        The fault injector calls this at every fault-window boundary so that
        elapsed progress is banked at the *old* rates before the new
        inflation factors apply — the same piecewise integration contract the
        contention model relies on.
        """
        if self.halted:
            return
        self._bank_progress()
        self._reschedule()

    def _reschedule(self) -> None:
        """Recompute rates and (re)arm the single completion timer.

        One fused pass over the active sets: per-kernel contention slowdowns
        (cached per device epoch), the ≥ 1.0 clamp (a contention model may
        never accelerate kernels — defends against custom models), fault
        inflation, and the min-scan for the next completion instant.  These
        used to be three separate walks; this is the hottest path in the
        simulator under steady-state decode.
        """
        # Per-device maps are consulted in place (uids are globally unique,
        # so the old merged dict was pure overhead); ``maps`` is kept for the
        # collective loop, whose members span devices.
        inj = self.fault_injector
        cache = self._slowdown_cache
        maps: List[Dict[int, float]] = []
        next_dt: Optional[float] = None
        for gpu in self.gpus:
            if not gpu.resident:
                maps.append(_NO_SLOWDOWNS)
                continue
            cached = cache.get(gpu.gpu_id)
            if cached is not None and cached[0] == gpu.resident_epoch:
                per_kernel = cached[1]
            else:
                per_kernel = self._gpu_slowdowns(gpu)
            maps.append(per_kernel)
            get_slow = per_kernel.get
            for rs in gpu.active_local.values():
                slow = get_slow(rs.kernel.uid, 1.0)
                if slow < 1.0:
                    slow = 1.0
                if inj is not None:
                    slow *= inj.kernel_inflation(rs.kernel, rs.gpu_id)
                rs.slowdown = slow
                dt = rs.remaining * slow
                if next_dt is None or dt < next_dt:
                    next_dt = dt
        for crun in self._collectives.values():
            if crun.started_at < 0.0:
                continue
            slow = None
            for gid, rs in crun.members.items():
                member = maps[gid].get(rs.kernel.uid, 1.0)
                if member < 1.0:
                    member = 1.0
                if inj is not None:
                    member *= inj.kernel_inflation(rs.kernel, gid)
                if slow is None or member > slow:
                    slow = member
            slow = 1.0 if slow is None else slow
            crun.slowdown = slow
            dt = crun.remaining * slow
            if next_dt is None or dt < next_dt:
                next_dt = dt
        if self._completion_timer is not None:
            self._completion_timer.cancel()
            self._completion_timer = None
        if next_dt is not None:
            self._completion_timer = self.engine.schedule(
                max(0.0, next_dt), self._on_completion_timer, priority=1
            )

    def _on_completion_timer(self) -> None:
        self._completion_timer = None
        if self.halted:
            return
        self._bank_progress()
        now = self.engine.now
        touched: set = set()

        due_locals = [
            rs
            for gpu in self.gpus
            for rs in gpu.active_local.values()
            if rs.remaining <= _EPS
        ]
        due_colls = [
            crun
            for crun in self._collectives.values()
            if crun.started_at >= 0.0 and crun.remaining <= _EPS
        ]
        for rs in due_locals:
            self._complete_local(rs, now)
            touched.add(rs.gpu_id)
        for crun in due_colls:
            self._complete_collective(crun, now)
            touched.update(crun.members.keys())

        for gpu_id in touched:
            self._pump(self.gpus[gpu_id])
        self._reschedule()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _release(self, rs: _RunState) -> None:
        gpu = self.gpus[rs.gpu_id]
        del gpu.resident[rs.kernel.uid]
        gpu.active_local.pop(rs.kernel.uid, None)
        gpu.used_occupancy = max(0.0, gpu.used_occupancy - rs.kernel.occupancy)
        gpu.resident_epoch += 1
        if rs.stream.running_kernel is rs.kernel:
            rs.stream.running_kernel = None

    def _complete_local(self, rs: _RunState, now: float) -> None:
        self._release(rs)
        self.kernels_completed += 1
        if self.trace is not None:
            self.trace.record_kernel(rs, end=now)
        for fn in self._completion_observers:
            fn(rs.kernel, now)

    def _complete_collective(self, crun: _CollectiveRun, now: float) -> None:
        del self._collectives[crun.op.uid]
        for rs in crun.members.values():
            self._release(rs)
            self.kernels_completed += 1
            if self.trace is not None:
                rs.stretched = crun.stretched  # members share the op timeline
                self.trace.record_kernel(rs, end=now)
        for fn in self._completion_observers:
            # Observers see one representative member per rank.
            for rs in crun.members.values():
                fn(rs.kernel, now)

    # ------------------------------------------------------------------
    # Crash semantics (cluster layer)
    # ------------------------------------------------------------------
    def halt(self) -> None:
        """Kill the node: drop every queued, ready, and resident command.

        Models a machine crash — in-flight kernels never complete, queued
        commands vanish, and all later :meth:`submit` calls are silently
        discarded.  After a halt the machine reports :meth:`all_idle` and an
        empty :meth:`stuck_summary`, so a shared engine can drain the rest of
        the cluster without this node tripping the quiescence check.
        Idempotent; there is no un-halt — recovery builds a fresh
        :class:`Machine` (a rebooted node has no residual device state).
        """
        self.halted = True
        if self._completion_timer is not None:
            self._completion_timer.cancel()
            self._completion_timer = None
        for gpu in self.gpus:
            for stream in gpu.streams:
                stream.queue.clear()
                stream.running_kernel = None
                stream.blocked_on_event = None
            gpu.ready.clear()
            gpu.resident.clear()
            gpu.active_local.clear()
            gpu.used_occupancy = 0.0
            gpu.resident_epoch += 1
        self._collectives.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_idle(self) -> bool:
        """True when every stream on every GPU is fully drained."""
        return all(g.all_idle() for g in self.gpus) and not self._collectives
