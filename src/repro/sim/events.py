"""CUDA-like events: the synchronization primitive between streams and host.

A :class:`CudaEvent` mirrors the semantics Liger's hybrid synchronization
builds on (§3.4, Fig. 8):

* ``cudaEventRecord`` → the event is *recorded* by a ``RecordEvent`` stream
  command; it captures the simulation time at which every preceding command
  on that stream has completed.
* ``cudaStreamWaitEvent`` → inter-stream synchronization: a ``WaitEvent``
  command blocks its stream until the event is recorded, without involving
  the CPU.
* host callbacks (``cudaLaunchHostFunc`` / event polling) → CPU-GPU
  synchronization: the host registers a callback which fires when the event
  records, optionally after a host-visibility latency (the CPU learns of GPU
  progress through PCIe, not instantaneously).

Events are single-shot: recording twice is a protocol error (real CUDA allows
re-record; single-shot keeps schedules auditable and Liger never re-records).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import StreamProtocolError

__all__ = ["CudaEvent"]

_event_ids = itertools.count()


class CudaEvent:
    """A single-shot synchronization event.

    Attributes
    ----------
    recorded_at:
        Simulation time (µs) at which the event was recorded, or ``None``.
    """

    __slots__ = ("name", "uid", "recorded_at", "_stream_waiters", "_host_waiters")

    def __init__(self, name: str = "") -> None:
        self.uid = next(_event_ids)
        self.name = name or f"event#{self.uid}"
        self.recorded_at: Optional[float] = None
        # Streams blocked on this event; resumed via their machine pump.
        self._stream_waiters: List[Callable[[], None]] = []
        # (delay_us, callback) host-side observers.
        self._host_waiters: List[Tuple[float, Callable[[], None]]] = []

    @property
    def is_recorded(self) -> bool:
        return self.recorded_at is not None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_stream_waiter(self, resume: Callable[[], None]) -> None:
        """Register a stream-resume callback (inter-stream sync path).

        The machine calls this when a ``WaitEvent`` command reaches the head
        of a stream before the event is recorded.  If the event is already
        recorded the caller should not block at all; registering on a
        recorded event is a protocol error to catch that mistake.
        """
        if self.is_recorded:
            raise StreamProtocolError(
                f"{self.name}: adding a stream waiter after the event recorded"
            )
        self._stream_waiters.append(resume)

    def on_host(self, callback: Callable[[], None], *, delay: float = 0.0) -> None:
        """Register a host callback fired ``delay`` µs after recording.

        ``delay`` models host visibility latency (PCIe round trip + driver
        polling); the CPU-GPU synchronization path passes a non-zero delay.
        If the event already recorded, the callback must be scheduled by the
        caller — the event does not hold an engine reference, so that path is
        flagged as a protocol error.
        """
        if self.is_recorded:
            raise StreamProtocolError(
                f"{self.name}: host callback registered after the event recorded"
            )
        self._host_waiters.append((delay, callback))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, now: float, schedule) -> None:
        """Mark the event recorded at ``now`` and release all waiters.

        Parameters
        ----------
        now:
            Recording timestamp.
        schedule:
            ``schedule(delay, callback)`` — the machine's deferred-call hook,
            used so waiter callbacks run as fresh engine events rather than
            deep inside the recording call stack.
        """
        if self.is_recorded:
            raise StreamProtocolError(f"{self.name}: recorded twice")
        self.recorded_at = now
        for resume in self._stream_waiters:
            schedule(0.0, resume)
        self._stream_waiters.clear()
        for delay, callback in self._host_waiters:
            schedule(delay, callback)
        self._host_waiters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"recorded@{self.recorded_at:.2f}" if self.is_recorded else "pending"
        return f"CudaEvent({self.name}, {state})"
