"""ASCII Gantt rendering of execution timelines.

Turns a :class:`~repro.sim.tracing.Trace` into a terminal-friendly timeline:
one lane per (GPU, stream), computation drawn as ``█``, communication as
``▒``, idle as spaces.  Useful for eyeballing whether Liger actually
interleaved — a healthy schedule shows the comm lane of one batch filled
under the compute lane of another — without leaving the terminal (the
Chrome-trace export covers the deep-zoom case).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.kernel import KernelKind
from repro.sim.tracing import Trace

__all__ = ["render_gantt"]

_COMPUTE_CH = "█"
_COMM_CH = "▒"
_MIXED_CH = "X"


def render_gantt(
    trace: Trace,
    *,
    start: Optional[float] = None,
    end: Optional[float] = None,
    width: int = 100,
    gpus: Optional[List[int]] = None,
) -> str:
    """Render the trace window [start, end] as an ASCII Gantt chart.

    Each character cell covers ``(end - start) / width`` µs; a cell is drawn
    as compute/comm if any kernel of that kind overlaps it (``X`` when both
    do, which on a two-stream Liger schedule means overlap is happening).
    """
    if not trace.rows:
        raise ConfigError("cannot render an empty trace")
    if width < 10:
        raise ConfigError("width must be >= 10")
    t0 = min(r.start for r in trace.rows) if start is None else start
    t1 = max(r.end for r in trace.rows) if end is None else end
    if t1 <= t0:
        raise ConfigError(f"empty time window [{t0}, {t1}]")
    cell = (t1 - t0) / width

    lanes: Dict[Tuple[int, str], List[str]] = {}
    lane_kinds: Dict[Tuple[int, str], List[set]] = {}
    for r in trace.rows:
        if gpus is not None and r.gpu not in gpus:
            continue
        if r.end <= t0 or r.start >= t1:
            continue
        key = (r.gpu, r.stream)
        if key not in lane_kinds:
            lane_kinds[key] = [set() for _ in range(width)]
        lo = max(0, int((r.start - t0) / cell))
        hi = min(width - 1, int((r.end - t0) / cell))
        kind = "comm" if r.kind is KernelKind.COMM else "compute"
        for i in range(lo, hi + 1):
            lane_kinds[key][i].add(kind)

    for key, cells in lane_kinds.items():
        chars = []
        for kinds in cells:
            if kinds == {"compute"}:
                chars.append(_COMPUTE_CH)
            elif kinds == {"comm"}:
                chars.append(_COMM_CH)
            elif kinds:
                chars.append(_MIXED_CH)
            else:
                chars.append(" ")
        lanes[key] = chars

    label_w = max(len(f"g{g}/{s}") for g, s in lanes) + 1
    lines = [
        f"{'':<{label_w}}|{t0/1e3:.2f} ms{'':{max(0, width - 18)}}{t1/1e3:.2f} ms|",
        f"{'':<{label_w}}+{'-' * width}+",
    ]
    for (g, s) in sorted(lanes):
        lines.append(f"{f'g{g}/{s}':<{label_w}}|{''.join(lanes[(g, s)])}|")
    lines.append(f"{'':<{label_w}}+{'-' * width}+")
    lines.append(
        f"{'':<{label_w}} {_COMPUTE_CH}=compute  {_COMM_CH}=communication"
    )
    return "\n".join(lines)
