"""Timeline tracing and overlap statistics.

The trace records one row per executed kernel: placement (GPU, stream),
identity (name, kind, batch, layer), timing (ready / start / end), and the
effective slowdown the contention model imposed.  From these rows we derive
the quantities the paper's figures are built on — communication-time
fraction (Fig. 3), kernel-duration distributions (Fig. 4), and
compute/communication overlap (the mechanism behind Fig. 10) — plus a
Chrome-trace export (`chrome://tracing` / Perfetto) for eyeballing
schedules.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.kernel import KernelKind

__all__ = ["TraceRow", "Trace"]


@dataclass(frozen=True)
class TraceRow:
    """One executed kernel instance."""

    gpu: int
    stream: str
    name: str
    kind: KernelKind
    batch_id: int
    layer: int
    op: str
    ready: float
    start: float
    end: float
    noload_duration: float
    #: Scheduling provenance, set when the Liger runtime launched the kernel
    #: under a policy with tracing armed ("" for baseline/profile kernels).
    policy: str = ""
    resource_class: str = ""

    @property
    def duration(self) -> float:
        """Wall duration on the device (µs), contention included."""
        return self.end - self.start

    @property
    def queueing_delay(self) -> float:
        """Time spent ready-but-not-admitted (µs) — the 'execution lag'."""
        return self.start - self.ready

    @property
    def slowdown(self) -> float:
        """Measured duration / no-load duration; 1.0 for zero-length kernels."""
        if self.noload_duration <= 0:
            return 1.0
        return self.duration / self.noload_duration


class Trace:
    """Accumulates :class:`TraceRow` records during a simulation."""

    def __init__(self) -> None:
        self.rows: List[TraceRow] = []

    # Called by Machine with a _RunState; duck-typed to avoid a cycle.
    def record_kernel(self, rs, end: float) -> None:
        """Append one executed kernel's row (called by the machine)."""
        k = rs.kernel
        self.rows.append(
            TraceRow(
                gpu=rs.gpu_id,
                stream=rs.stream.name,
                name=k.name,
                kind=k.kind,
                batch_id=k.batch_id,
                layer=k.layer,
                op=k.op,
                ready=rs.ready_at,
                start=rs.start_at,
                end=end,
                noload_duration=k.duration,
                policy=k.meta.get("_policy", ""),
                resource_class=k.meta.get("_rclass", ""),
            )
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Last end minus first start across all GPUs (µs)."""
        if not self.rows:
            return 0.0
        return max(r.end for r in self.rows) - min(r.start for r in self.rows)

    def busy_time(self, gpu: int, kind: Optional[KernelKind] = None) -> float:
        """Union length (µs) of kernel intervals on one GPU, optionally by kind.

        Intervals are merged, so two overlapped kernels count once — this is
        wall-clock busy time, not summed kernel time.
        """
        intervals = sorted(
            (r.start, r.end)
            for r in self.rows
            if r.gpu == gpu and (kind is None or r.kind is kind)
        )
        return _union_length(intervals)

    def summed_time(self, gpu: int, kind: Optional[KernelKind] = None) -> float:
        """Sum of kernel durations on one GPU (overlap counted twice)."""
        return sum(
            r.duration
            for r in self.rows
            if r.gpu == gpu and (kind is None or r.kind is kind)
        )

    def comm_fraction(self, gpu: int) -> float:
        """Communication share of busy wall time on one GPU (Fig. 3 metric)."""
        comm = self.busy_time(gpu, KernelKind.COMM)
        total = self.busy_time(gpu)
        return comm / total if total > 0 else 0.0

    def overlap_time(self, gpu: int) -> float:
        """Wall time (µs) during which compute AND comm were both resident."""
        comp = sorted(
            (r.start, r.end)
            for r in self.rows
            if r.gpu == gpu and r.kind is not KernelKind.COMM
        )
        comm = sorted(
            (r.start, r.end)
            for r in self.rows
            if r.gpu == gpu and r.kind is KernelKind.COMM
        )
        return _intersection_length(comp, comm)

    def overlap_efficiency(self, gpu: int) -> float:
        """Fraction of communication wall time hidden under computation."""
        comm = self.busy_time(gpu, KernelKind.COMM)
        if comm <= 0:
            return 0.0
        return self.overlap_time(gpu) / comm

    def mean_queueing_delay(self, kind: Optional[KernelKind] = None) -> float:
        """Average ready→start delay (µs), the §2.3.1 lag metric."""
        rows = [r for r in self.rows if kind is None or r.kind is kind]
        if not rows:
            return 0.0
        return sum(r.queueing_delay for r in rows) / len(rows)

    def kernel_durations(self) -> Dict[str, List[float]]:
        """Observed durations grouped by operator name (Fig. 4 inputs)."""
        out: Dict[str, List[float]] = {}
        for r in self.rows:
            out.setdefault(r.op or r.name, []).append(r.duration)
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_events(self) -> List[dict]:
        """Kernel rows as Chrome trace-event dicts (one slice per kernel).

        The merged exporter (:mod:`repro.obs.export`) interleaves these
        with request spans and control instants on one timeline.
        """
        events = []
        for r in self.rows:
            args = {
                "batch": r.batch_id,
                "layer": r.layer,
                "op": r.op,
                "queueing_delay_us": r.queueing_delay,
                "slowdown": r.slowdown,
            }
            if r.policy:
                args["policy"] = r.policy
                args["resource_class"] = r.resource_class
            events.append(
                {
                    "name": r.name,
                    "cat": r.kind.value,
                    "ph": "X",
                    "ts": r.start,
                    "dur": r.duration,
                    "pid": f"gpu{r.gpu}",
                    "tid": r.stream,
                    "args": args,
                }
            )
        return events

    def to_chrome_trace(self) -> str:
        """Serialize as a Chrome trace-event JSON string."""
        return json.dumps({"traceEvents": self.chrome_events()})

    def save_chrome_trace(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_chrome_trace())


def _union_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of sorted (start, end) intervals."""
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for s, e in intervals:
        if e <= s:
            continue
        if cur_start is None or s > cur_end:
            if cur_start is not None:
                total += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    if cur_start is not None:
        total += cur_end - cur_start
    return total


def _intersection_length(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Length of intersection of two interval unions (both sorted)."""
    # Merge each side into disjoint unions first, then sweep.
    a = _merge(a)
    b = _merge(b)
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if e > s:
            total += e - s
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def _merge(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for s, e in intervals:
        if e <= s:
            continue
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged
