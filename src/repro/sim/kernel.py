"""Kernel and collective-operation descriptors.

A :class:`Kernel` is the unit the whole system schedules: Liger's function
assembly produces lists of them, Algorithm 1 partitions those lists into
subsets, and the simulator executes them on GPU streams.  A kernel carries
exactly the metadata the paper's function wrappers carry (§3.2): the kernel
type, its (no-load) duration, and batch/shape context — plus the resource
footprint the simulator needs for the left-over admission policy and the
contention model.

Collective communication kernels (all-reduce, point-to-point) are *grouped*:
one :class:`CollectiveOp` owns a member kernel per participating GPU, and the
simulator applies rendezvous semantics — no member makes progress until every
member has been admitted on its device, and all members complete at the same
instant.  This reproduces the real NCCL behaviour that makes communication
kernels sensitive to per-rank launch skew (§4.5).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError

__all__ = ["KernelKind", "Kernel", "CollectiveOp", "CollectiveKind"]

_kernel_ids = itertools.count()
_collective_ids = itertools.count()


class KernelKind(enum.Enum):
    """The coarse kernel taxonomy the scheduler reasons about.

    The paper's scheduler distinguishes only computation vs communication
    (the type-switch points in Algorithm 1).  ``MEMORY`` covers device-local
    copies (KV-cache appends) and ``AUX`` covers negligible bookkeeping; both
    schedule like computation.
    """

    COMPUTE = "compute"
    COMM = "comm"
    MEMORY = "memory"
    AUX = "aux"

    @property
    def is_comm(self) -> bool:
        return self is KernelKind.COMM

    @property
    def is_compute_like(self) -> bool:
        return self is not KernelKind.COMM


class CollectiveKind(enum.Enum):
    """Which collective a COMM kernel group implements."""

    ALL_REDUCE = "all_reduce"
    P2P = "p2p"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_TO_ALL = "all_to_all"


@dataclass(slots=True)
class Kernel:
    """One GPU kernel instance.

    Parameters
    ----------
    name:
        Human-readable kernel name, e.g. ``"qkv_gemm[L12]"``.
    kind:
        Scheduler-visible taxonomy (see :class:`KernelKind`).
    duration:
        No-load execution time in µs — what offline profiling reports.  The
        simulator stretches this when contention applies.
    occupancy:
        Fraction of the device's SMs the kernel occupies while resident
        (0 < occupancy ≤ 1).  Drives the left-over admission policy: a kernel
        is admitted only when the sum of resident occupancies stays ≤ 1.
    memory_intensity:
        Fraction of HBM bandwidth the kernel consumes while running (0..1);
        feeds the memory-interference term of the contention model.
    flops / bytes:
        Work metadata from the cost model; informational (used by reports and
        decomposition heuristics, never by the executor).
    batch_id:
        Serving-side batch this kernel belongs to (−1 for infrastructure).
    layer / op:
        Model position metadata, e.g. layer index and operator name.
    collective:
        The owning :class:`CollectiveOp` when this is a collective member.
    decomposable:
        Whether runtime kernel decomposition (§3.6) may split this kernel.
    meta:
        Free-form extras (shapes, decomposition lineage, ...).
    """

    name: str
    kind: KernelKind
    duration: float
    occupancy: float = 0.9
    memory_intensity: float = 0.5
    flops: float = 0.0
    bytes: float = 0.0
    batch_id: int = -1
    layer: int = -1
    op: str = ""
    collective: Optional["CollectiveOp"] = None
    decomposable: bool = False
    meta: Dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_kernel_ids))

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigError(f"kernel {self.name}: negative duration")
        if not 0.0 < self.occupancy <= 1.0:
            raise ConfigError(
                f"kernel {self.name}: occupancy must be in (0, 1], got {self.occupancy}"
            )
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ConfigError(
                f"kernel {self.name}: memory_intensity must be in [0, 1]"
            )

    @property
    def is_comm(self) -> bool:
        return self.kind.is_comm

    def clone(self, **overrides: Any) -> "Kernel":
        """A copy with a fresh uid; ``overrides`` replace fields."""
        fields = dict(
            name=self.name,
            kind=self.kind,
            duration=self.duration,
            occupancy=self.occupancy,
            memory_intensity=self.memory_intensity,
            flops=self.flops,
            bytes=self.bytes,
            batch_id=self.batch_id,
            layer=self.layer,
            op=self.op,
            collective=self.collective,
            decomposable=self.decomposable,
            meta=dict(self.meta),
        )
        fields.update(overrides)
        return Kernel(**fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Kernel(#{self.uid} {self.name} {self.kind.value} "
            f"{self.duration:.1f}us occ={self.occupancy:.2f} b={self.batch_id})"
        )


@dataclass(slots=True)
class CollectiveOp:
    """A group of COMM kernels executing one collective across GPUs.

    Rendezvous semantics are enforced by the machine: the op *starts* when
    the last member kernel is admitted on its GPU, progresses at the rate of
    its slowest member (contention on any one device slows the whole ring),
    and all members complete together.
    """

    kind: CollectiveKind
    bytes: float
    participants: List[int]
    duration: float
    batch_id: int = -1
    name: str = ""
    members: Dict[int, Kernel] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_collective_ids))

    def __post_init__(self) -> None:
        if len(self.participants) < 1:
            raise ConfigError("collective needs at least one participant")
        if len(set(self.participants)) != len(self.participants):
            raise ConfigError("collective participants must be distinct")
        if self.duration < 0:
            raise ConfigError("collective duration must be >= 0")
        if not self.name:
            self.name = f"{self.kind.value}#{self.uid}"

    def make_member(
        self,
        gpu: int,
        *,
        occupancy: float,
        memory_intensity: float = 0.4,
        layer: int = -1,
        op: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ) -> Kernel:
        """Create (and register) the member kernel for one GPU."""
        if gpu not in self.participants:
            raise ConfigError(f"GPU {gpu} is not a participant of {self.name}")
        if gpu in self.members:
            raise ConfigError(f"{self.name} already has a member on GPU {gpu}")
        kernel = Kernel(
            name=f"{self.name}@g{gpu}",
            kind=KernelKind.COMM,
            duration=self.duration,
            occupancy=occupancy,
            memory_intensity=memory_intensity,
            bytes=self.bytes,
            batch_id=self.batch_id,
            layer=layer,
            op=op or self.kind.value,
            collective=self,
            meta=dict(meta or {}),
        )
        self.members[gpu] = kernel
        return kernel

    @property
    def complete_membership(self) -> bool:
        """True once every participant has a member kernel created."""
        return set(self.members) == set(self.participants)
