"""Device-memory accounting: weights, activations, KV cache.

The paper's function assembler "manages the execution status, such as memory
management of intermediate results" (§3.2), and memory capacity decides
which models fit which testbeds (OPT-30B *just* fits 4×16 GB V100s at 15 GB
of weights per device).  This module gives the serving stack a first-class
memory model: a :class:`DeviceMemory` ledger per GPU with tagged
reservations, and a :class:`NodeMemoryModel` that tracks the node-wide view
a strategy needs — resident weights at bind time, per-batch activation
workspaces while a batch is in flight, and KV cache for decode batches.

Reservations are bookkeeping, not simulation events: memory pressure limits
*admission* (a reservation that doesn't fit raises
:class:`~repro.errors.OutOfMemoryError`), it does not change kernel timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigError, OutOfMemoryError
from repro.hw.devices import NodeSpec
from repro.models.specs import ModelSpec
from repro.units import FP16_BYTES

__all__ = ["DeviceMemory", "NodeMemoryModel", "activation_bytes"]


def activation_bytes(model: ModelSpec, batch: int, seq: int, tp: int) -> float:
    """Per-device activation working set of one in-flight batch (bytes).

    Inference engines keep a small number of layer-sized buffers alive (the
    fused kernels ping-pong between them) plus the current layer's partial
    tensors; the dominant terms are the ``m×h`` hidden states (double
    buffered), the ``m×3h/tp`` QKV projection, the ``m×4h/tp`` FFN inner
    activation, and the attention scores.
    """
    if batch < 1 or seq < 1 or tp < 1:
        raise ConfigError("batch, seq and tp must be >= 1")
    m = batch * seq
    h = model.hidden_size
    hidden_states = 2 * m * h          # double-buffered residual stream
    qkv = m * 3 * h / tp
    ffn_inner = m * model.ffn_size / tp
    heads_p = model.num_heads / tp
    scores = batch * heads_p * seq * seq
    return float((hidden_states + qkv + ffn_inner + scores) * FP16_BYTES)


class DeviceMemory:
    """A tagged-reservation ledger for one GPU's HBM."""

    def __init__(self, capacity: float, name: str = "gpu") -> None:
        if capacity <= 0:
            raise ConfigError("memory capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._reservations: Dict[str, float] = {}

    @property
    def used(self) -> float:
        return sum(self._reservations.values())

    @property
    def available(self) -> float:
        return self.capacity - self.used

    def reserve(self, tag: str, nbytes: float) -> None:
        """Reserve ``nbytes`` under ``tag``; raises on OOM or duplicate tag."""
        if nbytes < 0:
            raise ConfigError(f"{self.name}: negative reservation for {tag!r}")
        if tag in self._reservations:
            raise ConfigError(f"{self.name}: tag {tag!r} already reserved")
        if nbytes > self.available:
            raise OutOfMemoryError(
                f"{self.name}: cannot reserve {nbytes/1e9:.2f} GB for {tag!r}; "
                f"{self.available/1e9:.2f} GB of {self.capacity/1e9:.2f} GB free"
            )
        self._reservations[tag] = nbytes

    def release(self, tag: str) -> float:
        """Release a reservation; returns the freed byte count."""
        if tag not in self._reservations:
            raise ConfigError(f"{self.name}: tag {tag!r} is not reserved")
        return self._reservations.pop(tag)

    def holds(self, tag: str) -> bool:
        """True while ``tag`` has an active reservation."""
        return tag in self._reservations

    def can_reserve(self, nbytes: float) -> bool:
        """Whether a reservation of ``nbytes`` would fit right now."""
        return 0 <= nbytes <= self.available

    def utilization(self) -> float:
        """Used fraction of capacity."""
        return self.used / self.capacity


@dataclass
class NodeMemoryModel:
    """Node-wide memory tracking for one serving deployment.

    The weights are sharded uniformly (both intra- and inter-op shard the
    full model across all devices), so one ledger per GPU carries the same
    weight reservation; batch workspaces land on every device too because
    every strategy here keeps all devices working on each batch (tensor
    shards or pipeline stages plus inflight boundary buffers).
    """

    model: ModelSpec
    node: NodeSpec
    devices: List[DeviceMemory] = field(init=False)
    peak_used: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.devices = [
            DeviceMemory(self.node.gpu.memory_capacity, name=f"gpu{i}")
            for i in range(self.node.num_gpus)
        ]
        per_dev = self.model.weight_bytes_per_device(self.node.num_gpus)
        for dev in self.devices:
            dev.reserve("weights", per_dev)
        self._note_peak()

    # ------------------------------------------------------------------
    def reserve_batch(
        self,
        batch_id: int,
        batch: int,
        seq: int,
        *,
        context: int = 0,
        share: float = 1.0,
    ) -> None:
        """Reserve the activation (+ KV cache) workspace of one batch.

        ``share`` scales the per-device reservation: tensor-parallel
        strategies keep every batch resident on every device (share 1.0),
        while a pipeline batch occupies one stage at a time — its
        steady-state per-device footprint is ``1/num_stages`` of the
        sharded workspace, even though several batches are in flight.
        """
        if not 0.0 < share <= 1.0:
            raise ConfigError(f"share must be in (0, 1], got {share}")
        tp = self.node.num_gpus
        nbytes = activation_bytes(self.model, batch, max(seq, 1), tp)
        if context > 0:
            nbytes += self.model.kv_cache_bytes(batch, context + 1, tp=tp)
        nbytes *= share
        tag = f"batch{batch_id}"
        reserved: List[DeviceMemory] = []
        try:
            for dev in self.devices:
                dev.reserve(tag, nbytes)
                reserved.append(dev)
        except OutOfMemoryError:
            for dev in reserved:
                dev.release(tag)
            raise
        self._note_peak()

    def release_batch(self, batch_id: int) -> None:
        """Free the batch workspace on every device (idempotent)."""
        tag = f"batch{batch_id}"
        for dev in self.devices:
            if dev.holds(tag):
                dev.release(tag)

    # ------------------------------------------------------------------
    # Generic tagged reservations (generation servers account at sequence /
    # group granularity: the KV cache lives across iterations).
    # ------------------------------------------------------------------
    def reserve(self, tag: str, nbytes: float) -> None:
        """Reserve ``nbytes`` under ``tag`` on every device, atomically."""
        reserved: List[DeviceMemory] = []
        try:
            for dev in self.devices:
                dev.reserve(tag, nbytes)
                reserved.append(dev)
        except OutOfMemoryError:
            for dev in reserved:
                dev.release(tag)
            raise
        self._note_peak()

    def release(self, tag: str) -> None:
        """Free a tagged reservation on every device (idempotent)."""
        for dev in self.devices:
            if dev.holds(tag):
                dev.release(tag)

    def min_available(self) -> float:
        """Free bytes on the most-loaded device — the node's admission slack."""
        return min(d.available for d in self.devices)

    def _note_peak(self) -> None:
        self.peak_used = max(self.peak_used, max(d.used for d in self.devices))

    @property
    def peak_utilization(self) -> float:
        """Peak used fraction of a single device's capacity."""
        return self.peak_used / self.node.gpu.memory_capacity
