"""Compiled-timeline fast path: batched replay of HYBRID round windows.

Under steady-state decode the engine spends ~80% of its wall time inside a
*window* — the span between one HYBRID pre-kick host observation (the
"anchor", where :class:`~repro.core.runtime.LigerRuntime` plans and launches
the next round) and the next.  Within a window the host issues nothing: the
machine's evolution is a pure function of the stream queues, the resident
set, and the armed engine events.  Cross-stream gating serializes rounds per
GPU, so the window's command set is fixed the moment the round is launched.

:class:`TimelineExecutor` exploits this.  After the runtime launches a round
it *compiles* the window: a straight-line mini-simulation walks the same
state machine as :class:`~repro.sim.gpu.Machine` + the engine loop (pump
sweeps, left-over admission, piecewise progress banking, the single
completion timer) and precomputes every event's firing time, every kernel's
completion, every trace row, and the end-of-window machine state.  It then
*commits* the whole window as one batched advance: stream queues are spliced
forward, residents/collectives are installed at their end-of-window values,
trace rows and completion-observer calls are emitted at their exact
simulated instants, surviving events are bulk-inserted with
:meth:`Engine.schedule_many`, and the next anchor is scheduled directly —
no per-kernel heap churn, no per-command pump events.

**Bit-identity contract.**  The mini-simulation performs the *same floating
point operations in the same order* as the interpreted path.  Times are
never shifted or re-derived from cached offsets (float addition is not
translation-invariant, so replaying memoized *offsets* would drift in
ULPs); every instant is recomputed with the machine's own arithmetic,
merely without the event-loop interpreter around it.  Every data-dependent
branch the real path would take is either mirrored exactly or guarded:
anything the compiler does not model — a foreign engine event inside the
window (request arrival, telemetry heartbeat, another machine on a shared
engine), a fault injector, a host callback on a mid-round event — aborts
compilation *before any live state is touched*, and the window executes on
the interpreted path instead.  Fast path on and off are therefore
bit-identical by construction; the golden-trace suite pins it.

Two mutations during compilation are deliberate and bail-transparent: new
run states consume the global ``ready_seq`` counter (only relative order is
observable, and the interpreted path assigns the same relative order), and
the machine's shape-keyed slowdown memo is written through (the memoized
values are exactly what the interpreted path would compute and store).

One modelled-contract note: completion observers are assumed *machine
neutral* — they may read state and finish batches, but must not submit
stream commands or schedule engine events that re-enter the machine
mid-window.  Every observer in this codebase satisfies that (the serving
layer's round chain only re-kicks through the anchor callback).

Counters (``timeline_builds`` / ``timeline_replays`` / ``timeline_bails`` /
``batched_events``) surface through ``strategy.perf_counters()`` as
``repro_perf_*`` gauges.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Engine, EventHandle
from repro.sim.events import CudaEvent
from repro.sim.gpu import Gpu, Machine, _CollectiveRun, _EPS, _RunState
from repro.sim.stream import Command, CommandKind, Stream

__all__ = ["TimelineExecutor"]

_LAUNCH = CommandKind.LAUNCH
_RECORD_EVENT = CommandKind.RECORD_EVENT

# Mini-event kind codes (ints, so heap tuples stay comparable).
_EV_PUMP = 0
_EV_TIMER = 1
_EV_KICK = 2
_EV_ANCHOR = 3

#: Runaway guard for the compile loop — a steady window is a few dozen
#: events; anything this large means un-modelled feedback, so bail.
_MAX_WINDOW_EVENTS = 100_000

#: Adaptive profitability gate.  A window replay saves per-event engine
#: churn but pays a fixed compile-and-commit cost, so it only wins once a
#: window batches roughly this many events (measured breakeven ~8-14 on
#: the Table-1 scenarios).  Below the threshold the executor stops
#: attempting windows — both paths are bit-identical, so the choice is
#: free — and re-probes every ``_GATE_PROBE_EVERY`` windows in case the
#: workload shifts phase (decode -> prefill burst).
_GATE_MIN_AVG = 8.0
_GATE_PROBE_EVERY = 64
_GATE_WARMUP = 16

#: Shared empty slowdown map (mirrors gpu._NO_SLOWDOWNS).
_NO_SLOWDOWNS: Dict[int, float] = {}


class _Bail(Exception):
    """Internal: abort compilation, fall back to the interpreted path."""


class _VStream:
    """Virtual head-state of one stream (commands are indexed, not copied).

    ``queue`` aliases the real deque read-only: nothing runs between compile
    and commit, so the live queue cannot change under the mirror, and the
    mirror itself only advances the ``consumed`` index (commit pops exactly
    that many entries off the real deque).
    """

    __slots__ = (
        "real", "queue", "consumed", "blocked_on", "running", "avail_pump_at",
    )

    def __init__(self, stream: Stream) -> None:
        self.real = stream
        self.queue = stream.queue
        self.consumed = 0
        self.blocked_on: Optional[CudaEvent] = stream.blocked_on_event
        self.running = stream.running_kernel
        self.avail_pump_at = stream.avail_pump_at

    # Duck-typed for Machine._admission_key (rs.stream.priority).
    @property
    def priority(self) -> int:
        return self.real.priority


class _VGpu:
    """Virtual per-device state, seeded from copies of the live run states.

    Built field-by-field in :meth:`_WindowSim.__init__`'s flat setup loop
    (windows average only a few events, so per-window construction cost is
    the fast path's dominant overhead — no ``__init__`` indirection here).
    """

    __slots__ = (
        "gpu_id", "streams", "ready", "resident", "active_local",
        "used_occupancy", "epoch",
    )


class TimelineExecutor:
    """Compiles and batch-commits HYBRID anchor-to-anchor windows."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.timeline_builds = 0
        self.timeline_replays = 0
        self.timeline_bails = 0
        self.batched_events = 0
        # Profitability gate state: an exponential moving average of events
        # batched per replayed window (seeded at the breakeven threshold so
        # the warmup windows all attempt), plus the probe countdown used
        # while gated off.
        self._window_avg = _GATE_MIN_AVG
        self._probe = 0
        # Identity maps classifying armed engine events by their pre-bound
        # callbacks (the machine builds these closures once, in gpu order).
        self._pump_fn_gpu = {
            id(fn): g for g, fn in enumerate(machine._run_pump_fns)
        }
        self._kick_fn_gpu = {
            id(fn): g for g, fn in enumerate(machine._kick_pump_fns)
        }
        # Arm seed-event tracking: from here on the machine appends every
        # pump/kick/deferred handle it schedules, so each window's seed set
        # is discovered in O(pending) instead of scanning the engine heap
        # (which is O(total queued arrivals) and turned the fast path into
        # an O(n²) walk over long workloads).
        machine._track_events = True

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def fast_forward(self, pre_kick_event: CudaEvent) -> bool:
        """Try to compile and commit the window opened by ``pre_kick_event``.

        Called by the runtime right after a HYBRID round launch, while the
        anchor's engine event is still on the stack — so no pump has run yet
        and the window's command set is exactly what was just submitted plus
        the previous round's in-flight tail.  Returns True when the window
        was committed as one batched advance; False means no live state was
        touched and the interpreted path proceeds as if this was never
        called.
        """
        machine = self.machine
        if (
            machine.halted
            or machine.fault_injector is not None
            # Set iteration order over gpu ids is increasing only while the
            # table holds ids < 8 (hash == value, 8 slots, no rehash); the
            # completion path iterates such a set, so larger nodes take the
            # interpreted path rather than guess at iteration order.
            or machine.node.num_gpus > 8
        ):
            return False
        if (
            self.timeline_replays >= _GATE_WARMUP
            and self._window_avg < _GATE_MIN_AVG
        ):
            # Recent windows were too small to amortize the compile-and-
            # commit cost; skip (bit-identical either way) and only probe
            # occasionally to notice a phase change.
            self._probe += 1
            if self._probe < _GATE_PROBE_EVERY:
                return False
            self._probe = 0
        self.timeline_builds += 1
        try:
            st = self._compile(pre_kick_event)
            self._commit(st)
        except _Bail:
            self.timeline_bails += 1
            return False
        self.timeline_replays += 1
        self._window_avg += (st.events_consumed - self._window_avg) * 0.125
        return True

    # ------------------------------------------------------------------
    # Compilation (side-effect-free on live state; _Bail aborts cleanly)
    # ------------------------------------------------------------------
    def _compile(self, pre_kick_event: CudaEvent) -> "_WindowSim":
        machine = self.machine
        engine: Engine = machine.engine
        waiters = pre_kick_event._host_waiters
        if len(waiters) != 1 or pre_kick_event._stream_waiters:
            raise _Bail  # someone else is watching the pre-kick

        # Seed events come from the machine's own tracking, not a heap
        # scan: every pending pump/kick handle was appended at schedule
        # time (so list order is engine insertion order — the seq
        # tiebreaker for same-instant seeds), and fired handles read as
        # cancelled.  Foreign events are not enumerated here at all; the
        # commit-time heap verification rejects any window a foreign event
        # interleaves.
        pump_gpu = self._pump_fn_gpu
        kick_gpu = self._kick_fn_gpu
        seeds: List[Tuple[float, int, int, int, int]] = []
        seed_handles: List[EventHandle] = []
        alive: List[EventHandle] = []
        for handle in machine._tracked_events:
            if handle.cancelled:
                continue
            alive.append(handle)
            g = pump_gpu.get(id(handle.callback))
            if g is not None:
                code, prio = _EV_PUMP, 5
            else:
                g = kick_gpu.get(id(handle.callback))
                if g is None:
                    # A deferred host callback: not modelled, but also not
                    # consumed — the commit verification bails if it is due
                    # inside the window.
                    continue
                code, prio = _EV_KICK, 4
            seeds.append((handle.time, prio, len(seed_handles), code, g))
            seed_handles.append(handle)
        machine._tracked_events = alive
        timer = machine._completion_timer
        if timer is not None:
            # Seeded with virtual generation 0; ties are impossible (no
            # other event uses priority 1), so its seq slot is arbitrary.
            seeds.append((timer.time, 1, len(seed_handles), _EV_TIMER, 0))
            seed_handles.append(timer)

        st = _WindowSim(
            machine, pre_kick_event, seeds, seed_handles, self._kick_fn_gpu
        )
        st.run()

        if st.anchor_time is None:
            raise _Bail  # the window never produced a next anchor
        until = engine._run_until
        if until is not None and st.anchor_time > until:
            raise _Bail  # the batched advance would overshoot run(until)
        return st

    # ------------------------------------------------------------------
    # Commit (applies the compiled window to live state)
    # ------------------------------------------------------------------
    def _commit(self, st: "_WindowSim") -> None:
        machine = self.machine
        engine = machine.engine
        heap = engine._heap

        # Verify-and-consume — the only fallible step, done before any
        # state is touched.  Everything live in the heap up to the anchor
        # instant must be either a seed event the window consumed (popped
        # off tombstone-free) or an admission-class foreign event.
        # Priority >= 10 is the engine's host-side admission class (request
        # arrivals, retry requeues, router deliveries): such callbacks only
        # touch host-side queues and call ``maybe_kick``, which no-ops
        # while the round chain is active — they cannot alter the machine's
        # in-window evolution.  They *do* interleave with completion
        # observers (a continuous-batching server reads its arrival queue
        # when a batch retires), so ones due before the window's last
        # completion are consumed here and executed at their exact instants
        # in the action merge below; later ones stay in the heap and fire
        # normally before the rescheduled anchor.  Any other foreign event
        # (heartbeats snapshot machine state mid-window, host callbacks
        # re-enter the runtime) forces the interpreted path: push the
        # popped entries back — same multiset, same pop order — and bail.
        seed_handles = st._seed_handles
        expect = {id(seed_handles[i]) for i in st._consumed_seed_seqs}
        bound_t = st.anchor_time
        last_action_t = st.actions[-1][2] if st.actions else float("-inf")
        heappop = heapq.heappop
        heappush = heapq.heappush
        popped: List[tuple] = []
        kept: List[tuple] = []
        deferred: List[tuple] = []
        ok = True
        while heap:
            entry = heap[0]
            handle = entry[3]
            if handle.cancelled:
                heappop(heap)
                engine._tombstones -= 1
                continue
            if entry[0] > bound_t or (entry[0] == bound_t and entry[1] > 4):
                break
            if id(handle) in expect:
                popped.append(heappop(heap))
            elif entry[1] >= 10:
                if entry[0] < last_action_t:
                    deferred.append(heappop(heap))
                else:
                    kept.append(heappop(heap))
            else:
                ok = False
                break
        for entry in kept:
            heappush(heap, entry)
        if not ok or len(popped) != len(expect):
            for entry in popped:
                heappush(heap, entry)
            for entry in deferred:
                heappush(heap, entry)
            raise _Bail
        foreign_calls: List[Tuple[float, Callable[[], None]]] = []
        for entry in deferred:
            handle = entry[3]
            foreign_calls.append((entry[0], handle.callback))
            engine._live -= 1
            handle.cancelled = True
            handle.callback = None
        for entry in popped:
            handle = entry[3]
            engine._live -= 1
            handle.cancelled = True
            handle.callback = None

        # Run states leave the virtual world: point them at real streams
        # before anything downstream (trace rows, later machine code) reads
        # stream attributes through them.
        for rs in st.all_rs:
            rs.stream = rs.stream.real  # type: ignore[union-attr]

        # Splice stream queues forward to their end-of-window heads.
        for vgpu in st.vgpus:
            for vs in vgpu.streams:
                real = vs.real
                if vs.consumed:
                    popleft = real.queue.popleft
                    for _ in range(vs.consumed):
                        popleft()
                    real.retired += vs.consumed
                real.running_kernel = vs.running
                real.blocked_on_event = vs.blocked_on
                real.avail_pump_at = vs.avail_pump_at

        # Blocks established in-window that outlive the window: the
        # interpreted path registered a per-GPU kick on the event the moment
        # the WAIT reached the stream head (Machine._pump), so the commit
        # must register the same waiter on the real event — its eventual
        # record() otherwise finds no stream waiter and the blocked stream
        # resumes only on an incidental pump of its GPU, or never.  The
        # entries left in st.vwaiters are exactly these blocks (_record
        # popped every event that recorded in-window); pre-window blocks
        # keep the waiter the interpreted path already registered.
        kick_pumps = machine._kick_pump_fns
        for event, gpu_ids in st.vwaiters.items():
            for gpu_id in gpu_ids:
                event.add_stream_waiter(kick_pumps[gpu_id])

        # CUDA events recorded inside the window.
        for ev, t in st.recorded_events:
            ev.recorded_at = t
            ev._stream_waiters.clear()
            ev._host_waiters.clear()

        # Install the end-of-window device state.
        for gpu, vgpu in zip(machine.gpus, st.vgpus):
            gpu.ready = vgpu.ready
            gpu.resident = vgpu.resident
            gpu.active_local = vgpu.active_local
            gpu.used_occupancy = vgpu.used_occupancy
            gpu.resident_epoch = vgpu.epoch
        machine._collectives = st.vcolls
        machine._slowdown_cache = st.slowdown_cache
        machine._last_bank_time = st.last_bank
        machine.kernels_completed += st.kernels_completed
        for g, flag in enumerate(st.pump_scheduled):
            machine._pump_scheduled[g] = flag

        # Re-arm the completion timer and the next anchor with inlined
        # schedule_at bodies (two calls per window adds up; the times are
        # finite and >= now by mirror construction, so the entry-point
        # checks would all be no-ops).  This happens BEFORE the survivor
        # splice: the interpreted path scheduled the anchor at the pre-kick
        # record, so any surviving kick sharing the anchor's exact
        # (time, priority) was created later and must draw a later seq —
        # the mini-sim already consumed every earlier tie-mate in-window,
        # which is precisely why it survived.  Splicing survivors first
        # would invert that tie and fire the kick before the anchor.
        engine._events_processed += st.events_consumed + len(foreign_calls)
        self.batched_events += st.events_consumed
        seq = engine._seq
        if st.timer_gen > 0:
            # The window superseded the completion timer.  The old handle
            # was either consumed above (it fired in-window) or is armed at
            # a stale time — cancel() no-ops on the former.
            old_timer = machine._completion_timer
            if old_timer is not None:
                old_timer.cancel()
            if st.timer_abs is not None:
                timer = EventHandle(
                    st.timer_abs, machine._on_completion_timer, engine
                )
                heappush(heap, (st.timer_abs, 1, next(seq), timer))
                engine._live += 1
                machine._completion_timer = timer
            else:
                machine._completion_timer = None
        anchor = EventHandle(bound_t, st.anchor_cb, engine)
        heappush(heap, (bound_t, 4, next(seq), anchor))
        engine._live += 1
        # One batched splice for everything else that outlives the window.
        run_pumps = machine._run_pump_fns
        survivors = [
            (
                time,
                5 if code == _EV_PUMP else 4,
                run_pumps[data] if code == _EV_PUMP else kick_pumps[data],
            )
            for time, code, data in st.survivors
        ]
        if survivors:
            # Survivor handles join the tracked list so the next window
            # finds them as seeds.
            machine._tracked_events.extend(engine.schedule_many(survivors))

        # Emit trace rows and completion-observer calls at their exact
        # simulated instants (observers read engine.now through the host),
        # interleaved with the consumed admission-class callbacks in engine
        # pop order: a completion at time T fires off the priority-1 timer,
        # so it precedes a same-instant admission event — strictly earlier
        # admissions run first.
        trace = machine.trace
        observers = machine._completion_observers
        fi = 0
        nf = len(foreign_calls)
        for code, payload, end in st.actions:
            while fi < nf and foreign_calls[fi][0] < end:
                engine.now = foreign_calls[fi][0]
                foreign_calls[fi][1]()
                fi += 1
            engine.now = end
            if code == 0:  # local completion
                if trace is not None:
                    trace.record_kernel(payload, end=end)
                for fn in observers:
                    fn(payload.kernel, end)
            else:  # collective completion
                members = payload.members.values()
                if trace is not None:
                    for rs in members:
                        trace.record_kernel(rs, end=end)
                for fn in observers:
                    for rs in members:
                        fn(rs.kernel, end)


class _WindowSim:
    """The mini-simulation: Machine + engine semantics in straight-line form.

    Every method mirrors its :class:`Machine` namesake — same float
    expressions, same iteration orders, same epsilon comparisons.  Anything
    that diverges from the modelled shape raises :class:`_Bail` before any
    live state is modified.
    """

    def __init__(
        self,
        machine: Machine,
        pre_kick_event: CudaEvent,
        seeds: List[Tuple[float, int, int, int, int]],
        seed_handles: List[EventHandle],
        kick_gpus: Dict[int, int],
    ) -> None:
        self.machine = machine
        engine = machine.engine
        self.pre_kick_event = pre_kick_event
        self.anchor_delay, self.anchor_cb = pre_kick_event._host_waiters[0]
        self.anchor_time: Optional[float] = None

        # Virtual mirrors of the machine's mutable state, built in one flat
        # pass.  Clones go through ``__new__`` + slot stores rather than the
        # dataclass constructor: this runs once per window and windows are
        # only a handful of events, so construction cost is the fast path's
        # single largest overhead.  (``ready_seq`` is copied, never drawn
        # from the global counter.)
        all_rs: List[_RunState] = []
        self.all_rs = all_rs
        vstreams: Dict[int, _VStream] = {}
        copies: Dict[int, _RunState] = {}
        vgpus: List[_VGpu] = []
        self.vgpus = vgpus
        new_rs = _RunState.__new__
        for gpu in machine.gpus:
            vstr: List[_VStream] = []
            for stream in gpu.streams:
                vs = _VStream(stream)
                vstreams[id(stream)] = vs
                vstr.append(vs)
            vgpu = _VGpu.__new__(_VGpu)
            vgpu.gpu_id = gpu.gpu_id
            vgpu.streams = vstr
            vgpu.used_occupancy = gpu.used_occupancy
            vgpu.epoch = gpu.resident_epoch
            ready: List[_RunState] = []
            for rs in gpu.ready:
                c = new_rs(_RunState)
                c.kernel = rs.kernel
                c.gpu_id = rs.gpu_id
                c.stream = vstreams[id(rs.stream)]  # type: ignore[assignment]
                c.ready_seq = rs.ready_seq
                c.ready_at = rs.ready_at
                c.start_at = rs.start_at
                c.remaining = rs.remaining
                c.slowdown = rs.slowdown
                c.stretched = rs.stretched
                all_rs.append(c)
                copies[id(rs)] = c
                ready.append(c)
            vgpu.ready = ready
            resident: Dict[int, _RunState] = {}
            for uid, rs in gpu.resident.items():
                c = copies.get(id(rs))
                if c is None:
                    c = new_rs(_RunState)
                    c.kernel = rs.kernel
                    c.gpu_id = rs.gpu_id
                    c.stream = vstreams[id(rs.stream)]  # type: ignore[assignment]
                    c.ready_seq = rs.ready_seq
                    c.ready_at = rs.ready_at
                    c.start_at = rs.start_at
                    c.remaining = rs.remaining
                    c.slowdown = rs.slowdown
                    c.stretched = rs.stretched
                    all_rs.append(c)
                    copies[id(rs)] = c
                resident[uid] = c
            vgpu.resident = resident
            vgpu.active_local = {
                uid: copies[id(rs)] for uid, rs in gpu.active_local.items()
            }
            vgpus.append(vgpu)
        self.vcolls: Dict[int, _CollectiveRun] = {
            uid: _CollectiveRun(
                op=crun.op,
                members={g: copies[id(rs)] for g, rs in crun.members.items()},
                started_at=crun.started_at,
                remaining=crun.remaining,
                slowdown=crun.slowdown,
                stretched=crun.stretched,
            )
            for uid, crun in machine._collectives.items()
        }
        self.slowdown_cache: Dict[int, tuple] = dict(machine._slowdown_cache)
        self.last_bank = machine._last_bank_time
        self.pump_scheduled = [
            bool(machine._pump_scheduled.get(g))
            for g in range(machine.node.num_gpus)
        ]
        self.timer_gen = 0
        self.timer_abs: Optional[float] = (
            machine._completion_timer.time
            if machine._completion_timer is not None
            else None
        )
        self._kick_gpus = kick_gpus

        # Mini event queue: (time, priority, seq, code, data).  Seeds are
        # numbered 0..n-1 in tracking order (== engine insertion order, the
        # only ordering the seq field must preserve — seeds of equal time
        # always share a priority class); virtual events are numbered from
        # len(seeds) up, preserving creation order exactly as the engine's
        # monotone counter would.
        self.queue = list(seeds)
        heapq.heapify(self.queue)
        self._seed_handles = seed_handles
        self._vseq_base = len(seeds)
        self.vseq = self._vseq_base
        self.now = engine.now

        # Outputs for the commit phase.
        self.events_consumed = 0
        self.kernels_completed = 0
        self._consumed_seed_seqs: List[int] = []
        self.recorded_events: List[Tuple[CudaEvent, float]] = []
        self.vrecorded: Dict[int, float] = {}
        # Stream blocks established inside the window, keyed by the event
        # object (not its id): entries whose event records in-window are
        # popped by _record; whatever remains at window end is a block that
        # outlives the window and needs a real stream waiter at commit.
        self.vwaiters: Dict[CudaEvent, List[int]] = {}
        self.actions: List[Tuple[int, object, float]] = []
        self.survivors: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    def _push(self, time: float, priority: int, code: int, data: int) -> None:
        heapq.heappush(self.queue, (time, priority, self.vseq, code, data))
        self.vseq += 1

    def run(self) -> None:
        queue = self.queue
        steps = 0
        while queue:
            time, priority, seq, code, data = heapq.heappop(queue)
            if code == _EV_ANCHOR:
                self.anchor_time = time
                # Whatever is still queued outlives the window.  Seeded
                # entries (seq below the virtual base) are still armed on
                # the real heap and need nothing; virtual timers re-arm
                # from timer_abs at commit; virtual pumps/kicks are
                # collected for the batched splice, in creation order so
                # same-instant ties land exactly as repeated schedule
                # calls would order them.
                leftovers = sorted(
                    (s, t, c, d)
                    for t, p, s, c, d in queue
                    if s >= self._vseq_base and c != _EV_TIMER
                )
                self.survivors = [(t, c, d) for s, t, c, d in leftovers]
                return
            if code == _EV_TIMER and data != self.timer_gen:
                continue  # superseded timer: a tombstone, never counted
            self.now = time
            self.events_consumed += 1
            if seq < self._vseq_base:
                self._consumed_seed_seqs.append(seq)
            if code == _EV_PUMP:
                self._run_pump(data)
            elif code == _EV_KICK:
                self._schedule_pump(data)
            else:  # _EV_TIMER
                self._on_completion_timer()
            steps += 1
            if steps > _MAX_WINDOW_EVENTS:
                raise _Bail
        raise _Bail  # queue drained without reaching the next anchor

    # ------------------------------------------------------------------
    # Mirrors of Machine internals (same names, same arithmetic)
    # ------------------------------------------------------------------
    def _schedule_pump(self, gpu_id: int, delay: float = 0.0) -> None:
        if delay <= _EPS:
            if self.pump_scheduled[gpu_id]:
                return
            self.pump_scheduled[gpu_id] = True
            self._push(self.now + 0.0, 5, _EV_PUMP, gpu_id)
        else:
            self._push(self.now + delay, 5, _EV_PUMP, gpu_id)

    def _schedule_avail_pump(self, vs: _VStream, command: Command) -> None:
        if vs.avail_pump_at == command.pump_at:
            return
        vs.avail_pump_at = command.pump_at
        if command.pump_at < self.now - 1e-9:
            raise _Bail  # the real schedule_at would raise; surface it there
        self._push(max(command.pump_at, self.now), 5, _EV_PUMP, vs.real.gpu_id)

    def _run_pump(self, gpu_id: int) -> None:
        self.pump_scheduled[gpu_id] = False
        self._pump(self.vgpus[gpu_id])

    def _is_recorded(self, event: CudaEvent) -> bool:
        return event.recorded_at is not None or id(event) in self.vrecorded

    def _record(self, event: CudaEvent, now: float) -> None:
        if self._is_recorded(event):
            raise _Bail  # double record: let the interpreted path raise
        self.vrecorded[id(event)] = now
        self.recorded_events.append((event, now))
        # Pre-registered (real) waiters first, then window-registered ones —
        # the same append order record() would walk.
        for resume in event._stream_waiters:
            g = self._kick_gpus.get(id(resume))
            if g is None:
                raise _Bail  # waiter belonging to another machine
            self._push(now + 0.0, 4, _EV_KICK, g)
        for g in self.vwaiters.pop(event, ()):
            self._push(now + 0.0, 4, _EV_KICK, g)
        for delay, _cb in event._host_waiters:
            if event is self.pre_kick_event:
                self._push(now + delay, 4, _EV_ANCHOR, 0)
            else:
                raise _Bail  # a host callback the compiler cannot model

    def _pump(self, vgpu: _VGpu) -> None:
        now = self.now
        threshold = now + _EPS
        streams = vgpu.streams
        progressed = True
        became_ready = False
        while progressed:
            progressed = False
            for vs in streams:
                if vs.running is not None:
                    continue
                blocked = vs.blocked_on
                if blocked is not None:
                    if self._is_recorded(blocked):
                        vs.blocked_on = None
                    else:
                        continue
                if vs.consumed >= len(vs.queue):
                    continue
                cmd = vs.queue[vs.consumed]
                if cmd.available_at > threshold:
                    self._schedule_avail_pump(vs, cmd)
                    continue
                kind = cmd.kind
                if kind is _LAUNCH:
                    vs.consumed += 1
                    kernel = cmd.kernel
                    vs.running = kernel
                    rs = _RunState(
                        kernel=kernel,
                        gpu_id=vgpu.gpu_id,
                        stream=vs,  # type: ignore[arg-type]
                        ready_at=now,
                    )
                    self.all_rs.append(rs)
                    vgpu.ready.append(rs)
                    became_ready = True
                    progressed = True
                elif kind is _RECORD_EVENT:
                    vs.consumed += 1
                    self._record(cmd.event, now)
                    progressed = True
                else:  # WAIT_EVENT
                    vs.consumed += 1
                    event = cmd.event
                    if self._is_recorded(event):
                        progressed = True
                    else:
                        vs.blocked_on = event
                        self.vwaiters.setdefault(event, []).append(
                            vgpu.gpu_id
                        )
        if became_ready or vgpu.ready:
            self._try_admit(vgpu)

    def _try_admit(self, vgpu: _VGpu) -> None:
        if not vgpu.ready:
            return
        self._bank_progress()
        admitted_any = False
        vgpu.ready.sort(key=Machine._admission_key)
        still_ready: List[_RunState] = []
        for rs in vgpu.ready:
            if vgpu.used_occupancy + rs.kernel.occupancy <= 1.0 + _EPS:
                self._admit(vgpu, rs)
                admitted_any = True
            else:
                still_ready.append(rs)
        vgpu.ready = still_ready
        if admitted_any:
            self._reschedule()

    def _admit(self, vgpu: _VGpu, rs: _RunState) -> None:
        now = self.now
        rs.start_at = now
        # Live mutation, but bail-transparent: the interpreted path stamps
        # the identical value at the identical admission instant.
        rs.kernel.meta["_started_at"] = now
        rs.remaining = rs.kernel.duration
        vgpu.resident[rs.kernel.uid] = rs
        vgpu.used_occupancy += rs.kernel.occupancy
        vgpu.epoch += 1
        coll = rs.kernel.collective
        if coll is None:
            vgpu.active_local[rs.kernel.uid] = rs
            return
        crun = self.vcolls.get(coll.uid)
        if crun is None:
            crun = _CollectiveRun(op=coll, remaining=coll.duration)
            self.vcolls[coll.uid] = crun
        if vgpu.gpu_id in crun.members:
            raise _Bail  # duplicate member: let the interpreted path raise
        crun.members[vgpu.gpu_id] = rs
        if set(crun.members) == set(coll.participants):
            crun.started_at = now

    def _bank_progress(self) -> None:
        now = self.now
        dt = now - self.last_bank
        if dt <= _EPS:
            self.last_bank = now
            return
        for vgpu in self.vgpus:
            for rs in vgpu.active_local.values():
                rem = rs.remaining - dt / rs.slowdown
                rs.remaining = rem if rem > 0.0 else 0.0
                rs.stretched += dt
        for crun in self.vcolls.values():
            if crun.started_at >= 0.0:
                rem = crun.remaining - dt / crun.slowdown
                crun.remaining = rem if rem > 0.0 else 0.0
                crun.stretched += dt
        self.last_bank = now

    def _gpu_slowdowns(self, vgpu: _VGpu) -> Dict[int, float]:
        machine = self.machine
        cached = self.slowdown_cache.get(vgpu.gpu_id)
        if cached is not None and cached[0] == vgpu.epoch:
            return cached[1]
        kernels = [rs.kernel for rs in vgpu.resident.values()]
        if machine._contention_pure_in_shape and machine.slowdown_memo:
            shape = tuple(
                (k.kind, k.occupancy, k.memory_intensity) for k in kernels
            )
            shape_cache = machine._shape_cache
            values = shape_cache.get(shape)
            if values is None:
                per_kernel = machine.contention.slowdowns(kernels)
                shape_cache[shape] = tuple(
                    per_kernel[k.uid] for k in kernels
                )
                if len(shape_cache) > 8192:
                    shape_cache.clear()
            else:
                per_kernel = {k.uid: v for k, v in zip(kernels, values)}
        else:
            per_kernel = machine.contention.slowdowns(kernels)
        self.slowdown_cache[vgpu.gpu_id] = (vgpu.epoch, per_kernel)
        return per_kernel

    def _reschedule(self) -> None:
        cache = self.slowdown_cache
        maps: List[Dict[int, float]] = []
        next_dt: Optional[float] = None
        for vgpu in self.vgpus:
            if not vgpu.resident:
                maps.append(_NO_SLOWDOWNS)
                continue
            cached = cache.get(vgpu.gpu_id)
            if cached is not None and cached[0] == vgpu.epoch:
                per_kernel = cached[1]
            else:
                per_kernel = self._gpu_slowdowns(vgpu)
            maps.append(per_kernel)
            get_slow = per_kernel.get
            for rs in vgpu.active_local.values():
                slow = get_slow(rs.kernel.uid, 1.0)
                if slow < 1.0:
                    slow = 1.0
                rs.slowdown = slow
                dt = rs.remaining * slow
                if next_dt is None or dt < next_dt:
                    next_dt = dt
        for crun in self.vcolls.values():
            if crun.started_at < 0.0:
                continue
            slow = None
            for gid, rs in crun.members.items():
                member = maps[gid].get(rs.kernel.uid, 1.0)
                if member < 1.0:
                    member = 1.0
                if slow is None or member > slow:
                    slow = member
            slow = 1.0 if slow is None else slow
            crun.slowdown = slow
            dt = crun.remaining * slow
            if next_dt is None or dt < next_dt:
                next_dt = dt
        # Supersede the armed timer: bump the generation (a virtual
        # tombstone) and re-arm at now + max(0, dt) — the engine's exact
        # schedule() arithmetic.
        self.timer_gen += 1
        self.timer_abs = None
        if next_dt is not None:
            self.timer_abs = self.now + max(0.0, next_dt)
            self._push(self.timer_abs, 1, _EV_TIMER, self.timer_gen)

    def _on_completion_timer(self) -> None:
        self._bank_progress()
        now = self.now
        touched: set = set()
        due_locals = [
            rs
            for vgpu in self.vgpus
            for rs in vgpu.active_local.values()
            if rs.remaining <= _EPS
        ]
        due_colls = [
            crun
            for crun in self.vcolls.values()
            if crun.started_at >= 0.0 and crun.remaining <= _EPS
        ]
        for rs in due_locals:
            self._complete_local(rs, now)
            touched.add(rs.gpu_id)
        for crun in due_colls:
            self._complete_collective(crun, now)
            touched.update(crun.members.keys())
        # sorted() matches the raw set iteration the machine uses: gpu ids
        # < 8 occupy their own hash slots in value order (guarded by the
        # num_gpus eligibility gate).
        for gpu_id in sorted(touched):
            self._pump(self.vgpus[gpu_id])
        self._reschedule()

    def _release(self, rs: _RunState) -> None:
        vgpu = self.vgpus[rs.gpu_id]
        del vgpu.resident[rs.kernel.uid]
        vgpu.active_local.pop(rs.kernel.uid, None)
        vgpu.used_occupancy = max(
            0.0, vgpu.used_occupancy - rs.kernel.occupancy
        )
        vgpu.epoch += 1
        vs: _VStream = rs.stream  # type: ignore[assignment]
        if vs.running is rs.kernel:
            vs.running = None

    def _complete_local(self, rs: _RunState, now: float) -> None:
        self._release(rs)
        self.kernels_completed += 1
        self.actions.append((0, rs, now))

    def _complete_collective(self, crun: _CollectiveRun, now: float) -> None:
        del self.vcolls[crun.op.uid]
        for rs in crun.members.values():
            self._release(rs)
            self.kernels_completed += 1
            if self.machine.trace is not None:
                rs.stretched = crun.stretched  # members share the op timeline
        self.actions.append((1, crun, now))
