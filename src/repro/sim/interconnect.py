"""Collective-communication cost models (the NCCL substitute).

The simulator does not move bytes; it needs *durations* and *footprints* for
communication kernels.  Costs follow the standard alpha-beta treatment:

* **Ring all-reduce** over ``p`` ranks moves ``2·(p−1)/p · S`` bytes per rank
  through the bottleneck link, so with the measured all-reduce *bus*
  bandwidth ``B`` (what NCCL-tests report, and what the paper quotes —
  32.75 GB/s on the V100/NVLink node, 14.88 GB/s on the A100/PCIe node) the
  transfer term is ``2(p−1)/p · S / B``; each of the ``2(p−1)`` ring steps
  additionally pays the hop latency.
* **Point-to-point** pays path latency plus ``S / bottleneck-bandwidth``.

The *footprint* side models the §3.5 mitigation: NCCL by default allocates
generously many channels (CUDA blocks); Liger shrinks them with
``NCCL_MAX_NCHANNELS`` / ``NCCL_NTHREADS`` because a few channels already
saturate the link.  Here the channel count maps to the SM occupancy of the
communication kernel — reducing channels is what makes a collective and a
GEMM co-resident at all under the left-over policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ConfigError
from repro.hw.topology import Topology
from repro.sim.kernel import CollectiveKind, CollectiveOp
from repro.units import us

__all__ = ["NcclConfig", "CollectiveCostModel"]

#: NCCL's default channel allocation on the nodes modelled here.
DEFAULT_NCCL_CHANNELS = 12
#: SM occupancy contributed per NCCL channel (one CUDA block per channel,
#: normalised by a typical 80–108-SM device).
OCCUPANCY_PER_CHANNEL = 0.018


@dataclass(frozen=True)
class NcclConfig:
    """The communication-library tuning surface Liger manipulates (§3.5).

    ``max_nchannels`` mirrors ``NCCL_MAX_NCHANNELS``; fewer channels → lower
    SM occupancy (and a mild bandwidth derate once below the saturation
    knee).  ``min_latency`` is the per-collective base cost (rendezvous +
    protocol), independent of message size.
    """

    max_nchannels: int = DEFAULT_NCCL_CHANNELS
    min_latency: float = us(8.0)
    #: Channels needed to saturate the link; below this, bandwidth derates
    #: linearly.  The paper found "less blocks are enough to saturate the
    #: peak bandwidth", i.e. this knee sits well below the default.
    saturation_channels: int = 3

    def __post_init__(self) -> None:
        if self.max_nchannels < 1:
            raise ConfigError("max_nchannels must be >= 1")
        if self.min_latency < 0:
            raise ConfigError("min_latency must be >= 0")
        if self.saturation_channels < 1:
            raise ConfigError("saturation_channels must be >= 1")

    @property
    def occupancy(self) -> float:
        """SM footprint of one collective kernel under this config."""
        return min(1.0, self.max_nchannels * OCCUPANCY_PER_CHANNEL)

    @property
    def bandwidth_fraction(self) -> float:
        """Fraction of peak bus bandwidth achievable with these channels."""
        if self.max_nchannels >= self.saturation_channels:
            return 1.0
        return self.max_nchannels / self.saturation_channels

    def reduced(self) -> "NcclConfig":
        """The Liger mitigation: just enough channels to saturate."""
        return NcclConfig(
            max_nchannels=self.saturation_channels,
            min_latency=self.min_latency,
            saturation_channels=self.saturation_channels,
        )


class CollectiveCostModel:
    """Durations and kernel groups for collectives on a given topology."""

    def __init__(self, topology: Topology, nccl: Optional[NcclConfig] = None) -> None:
        self.topology = topology
        self.nccl = nccl or NcclConfig()
        #: Optional hook returning the *currently achievable* fraction of the
        #: nominal link bandwidth (0 < f ≤ 1).  Fault injection wires this to
        #: the active :class:`~repro.faults.plan.FaultPlan` so collectives
        #: issued during a degraded-interconnect window are costed at the
        #: reduced bandwidth.  ``None`` (the default) means healthy links and
        #: is bit-exact with the unhooked cost model.
        self.bandwidth_scale: Optional[Callable[[], float]] = None

    def _link_health(self) -> float:
        """Current bandwidth fraction from the fault hook (1.0 when healthy)."""
        if self.bandwidth_scale is None:
            return 1.0
        scale = self.bandwidth_scale()
        if not 0.0 < scale <= 1.0:
            raise ConfigError(f"bandwidth_scale hook returned {scale}, not in (0, 1]")
        return scale

    # ------------------------------------------------------------------
    # Durations
    # ------------------------------------------------------------------
    def allreduce_duration(self, size_bytes: float, participants: Sequence[int]) -> float:
        """Ring all-reduce duration (µs) for ``size_bytes`` over the ranks."""
        if size_bytes < 0:
            raise ConfigError("allreduce size must be >= 0")
        p = len(participants)
        if p <= 1:
            return 0.0
        bw = (
            self.topology.allreduce_bus_bandwidth
            * self.nccl.bandwidth_fraction
            * self._link_health()
        )
        hop_latency = self._ring_hop_latency(participants)
        steps = 2 * (p - 1)
        transfer_us = (2.0 * (p - 1) / p) * size_bytes / bw * 1e6
        return self.nccl.min_latency + steps * hop_latency + transfer_us

    def alltoall_duration(
        self, size_bytes: float, participants: Sequence[int]
    ) -> float:
        """All-to-all personalized exchange duration (µs).

        ``size_bytes`` is the per-rank payload: each rank scatters
        ``(p−1)/p · S`` of its buffer to peers in ``p−1`` pipelined steps,
        so relative to ring all-reduce the transfer and latency terms are
        halved (one pass instead of reduce-scatter + all-gather).
        """
        if size_bytes < 0:
            raise ConfigError("alltoall size must be >= 0")
        p = len(participants)
        if p <= 1:
            return 0.0
        bw = (
            self.topology.allreduce_bus_bandwidth
            * self.nccl.bandwidth_fraction
            * self._link_health()
        )
        hop_latency = self._ring_hop_latency(participants)
        steps = p - 1
        transfer_us = ((p - 1) / p) * size_bytes / bw * 1e6
        return self.nccl.min_latency + steps * hop_latency + transfer_us

    def p2p_duration(self, size_bytes: float, src: int, dst: int) -> float:
        """Point-to-point transfer duration (µs)."""
        if size_bytes < 0:
            raise ConfigError("p2p size must be >= 0")
        if src == dst:
            return 0.0
        bw = (
            self.topology.p2p_bandwidth(src, dst)
            * self.nccl.bandwidth_fraction
            * self._link_health()
        )
        latency = self.topology.p2p_latency(src, dst)
        return self.nccl.min_latency + latency + size_bytes / bw * 1e6

    def _ring_hop_latency(self, participants: Sequence[int]) -> float:
        """Mean adjacent-pair latency along the ring order given."""
        p = len(participants)
        hops = [
            self.topology.p2p_latency(participants[i], participants[(i + 1) % p])
            for i in range(p)
        ]
        return sum(hops) / len(hops)

    # ------------------------------------------------------------------
    # Kernel-group construction
    # ------------------------------------------------------------------
    def make_allreduce(
        self,
        size_bytes: float,
        participants: Sequence[int],
        *,
        batch_id: int = -1,
        layer: int = -1,
        name: str = "",
        op: str = "all_reduce",
    ) -> CollectiveOp:
        """Build an all-reduce :class:`CollectiveOp` with one member per rank."""
        duration = self.allreduce_duration(size_bytes, participants)
        coll = CollectiveOp(
            kind=CollectiveKind.ALL_REDUCE,
            bytes=size_bytes,
            participants=list(participants),
            duration=duration,
            batch_id=batch_id,
            name=name or f"allreduce_L{layer}_b{batch_id}",
        )
        for gpu in participants:
            coll.make_member(
                gpu,
                occupancy=self.nccl.occupancy,
                memory_intensity=self._comm_memory_intensity(size_bytes),
                layer=layer,
                op=op,
            )
        return coll

    def make_all_to_all(
        self,
        size_bytes: float,
        participants: Sequence[int],
        *,
        batch_id: int = -1,
        layer: int = -1,
        name: str = "",
        op: str = "all_to_all",
    ) -> CollectiveOp:
        """Build an all-to-all :class:`CollectiveOp` with one member per rank."""
        duration = self.alltoall_duration(size_bytes, participants)
        coll = CollectiveOp(
            kind=CollectiveKind.ALL_TO_ALL,
            bytes=size_bytes,
            participants=list(participants),
            duration=duration,
            batch_id=batch_id,
            name=name or f"alltoall_L{layer}_b{batch_id}",
        )
        for gpu in participants:
            coll.make_member(
                gpu,
                occupancy=self.nccl.occupancy,
                memory_intensity=self._comm_memory_intensity(size_bytes),
                layer=layer,
                op=op,
            )
        return coll

    def make_p2p(
        self,
        size_bytes: float,
        src: int,
        dst: int,
        *,
        batch_id: int = -1,
        layer: int = -1,
        name: str = "",
    ) -> CollectiveOp:
        """Build a p2p send/recv pair as a two-member collective."""
        if src == dst:
            raise ConfigError("p2p requires distinct src and dst")
        duration = self.p2p_duration(size_bytes, src, dst)
        coll = CollectiveOp(
            kind=CollectiveKind.P2P,
            bytes=size_bytes,
            participants=[src, dst],
            duration=duration,
            batch_id=batch_id,
            name=name or f"p2p_{src}to{dst}_b{batch_id}",
        )
        for gpu in (src, dst):
            coll.make_member(
                gpu,
                # p2p copies are driven by copy engines + a light proxy
                # kernel; much smaller SM footprint than a ring collective.
                occupancy=min(self.nccl.occupancy, 0.04),
                memory_intensity=self._comm_memory_intensity(size_bytes),
                layer=layer,
                op="p2p",
            )
        return coll

    @staticmethod
    def _comm_memory_intensity(size_bytes: float) -> float:
        """HBM pressure of a collective: meaningful only for large payloads."""
        if size_bytes <= 0:
            return 0.05
        # A collective streams its buffer a small constant number of times;
        # tiny messages are latency-bound and stress memory negligibly.
        return max(0.05, min(0.45, size_bytes / 64e6 * 0.45))
