"""CUDA-like streams: FIFO command queues per GPU.

A stream executes its commands strictly in order; different streams on the
same GPU are independent except where :class:`~repro.sim.events.CudaEvent`
dependencies couple them and where they compete for the device's execution
resources (the left-over policy in :mod:`repro.sim.gpu`).

Each command carries an ``available_at`` timestamp — the simulation time the
*host* finished launching it.  This is how asynchronous kernel launch is
modelled: the host runs ahead assigning availability times, and a command
that reaches the head of its stream before it is available simply waits,
exposing launch overhead exactly when the paper says it is exposed (a GPU
that drained its queue waits for the CPU; §4.5).
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.errors import ConfigError
from repro.sim.events import CudaEvent
from repro.sim.kernel import Kernel

__all__ = ["CommandKind", "Command", "Stream"]

_stream_ids = itertools.count()


class CommandKind(enum.Enum):
    LAUNCH = "launch"
    RECORD_EVENT = "record_event"
    WAIT_EVENT = "wait_event"


@dataclass(slots=True)
class Command:
    """One entry in a stream's FIFO."""

    kind: CommandKind
    available_at: float
    kernel: Optional[Kernel] = None
    event: Optional[CudaEvent] = None
    seq: int = field(default_factory=lambda: next(_stream_ids))
    #: The instant the machine would pump this command into view, stamped at
    #: submit time with the exact ``now + max(0, available_at - now)`` float
    #: arithmetic the submit-time pump used to be scheduled with — so a pump
    #: scheduled lazily (when the command is first seen waiting at its
    #: stream's head) fires at the bit-identical time.
    pump_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is CommandKind.LAUNCH and self.kernel is None:
            raise ConfigError("LAUNCH command requires a kernel")
        if self.kind in (CommandKind.RECORD_EVENT, CommandKind.WAIT_EVENT):
            if self.event is None:
                raise ConfigError(f"{self.kind.value} command requires an event")


def _fast_command(kind, available_at, kernel=None, event=None) -> Command:
    """Hot-path Command constructor bypassing dataclass machinery.

    Only the machine's typed convenience wrappers call this; they guarantee
    the kind/payload pairing ``__post_init__`` enforces for ad-hoc callers.
    """
    cmd = Command.__new__(Command)
    cmd.kind = kind
    cmd.available_at = available_at
    cmd.kernel = kernel
    cmd.event = event
    cmd.seq = next(_stream_ids)
    cmd.pump_at = 0.0
    return cmd


class Stream:
    """A FIFO command queue bound to one GPU.

    Parameters
    ----------
    gpu_id:
        Device the stream belongs to.
    name:
        Label for traces (``"compute"``, ``"comm"``, ``"s1"`` ...).
    priority:
        Admission tie-break among kernels that become ready at the same
        instant on one device (higher wins).  Mirrors CUDA stream priority —
        and, as the paper observes (§2.3.1), priority alone does *not*
        guarantee timely communication-kernel startup; the left-over policy
        can still defer a COMM kernel that does not fit.
    """

    def __init__(self, gpu_id: int, name: str, priority: int = 0) -> None:
        self.uid = next(_stream_ids)
        self.gpu_id = gpu_id
        self.name = name
        self.priority = priority
        self.queue: Deque[Command] = deque()
        # Head-state flags owned by the machine pump:
        self.blocked_on_event: Optional[CudaEvent] = None
        self.running_kernel: Optional[Kernel] = None
        # Monotone count of fully retired commands (for tests/metrics).
        self.retired = 0
        #: Extra per-command visibility delay (µs) added by the machine when
        #: commands are submitted to this stream.  Fault injection raises it
        #: for the window of a degraded-host fault; 0.0 (the default) is
        #: bit-exact with no delay at all.
        self.visibility_penalty: float = 0.0
        #: Latest ``pump_at`` the machine has already scheduled a lazy
        #: availability pump for (dedup marker owned by the machine).
        self.avail_pump_at: float = -1.0

    # ------------------------------------------------------------------
    def enqueue(self, command: Command) -> None:
        """Append a command (host-side launch already accounted for)."""
        self.queue.append(command)

    def head(self) -> Optional[Command]:
        """The next command to execute, or None when drained."""
        return self.queue[0] if self.queue else None

    def pop_head(self) -> Command:
        """Retire the head command."""
        self.retired += 1
        return self.queue.popleft()

    @property
    def idle(self) -> bool:
        """True when nothing is queued, running, or blocked."""
        return (
            not self.queue
            and self.running_kernel is None
            and self.blocked_on_event is None
        )

    @property
    def pending_commands(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle"
        if self.running_kernel is not None:
            state = f"running {self.running_kernel.name}"
        elif self.blocked_on_event is not None:
            state = f"blocked on {self.blocked_on_event.name}"
        elif self.queue:
            state = f"{len(self.queue)} queued"
        return f"Stream(g{self.gpu_id}/{self.name} prio={self.priority}: {state})"
