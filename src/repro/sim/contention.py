"""Hardware resource contention between concurrently-resident kernels.

§2.3.2 of the paper identifies two interference channels when computation and
communication kernels overlap on one GPU:

* **Compute:** collective kernels occupy SMs for reduction arithmetic and
  network driving, so co-running compute-intensive kernels slow each other.
* **Memory bandwidth:** both kernel classes stream through HBM; when the
  summed demand exceeds the device bandwidth, everybody stretches.

We model this with a pluggable :class:`ContentionModel`: given the set of
kernels resident on one device, it returns a *slowdown* ≥ 1 per kernel.  The
machine integrates kernel progress piecewise — whenever the resident set
changes, elapsed progress is banked at the old rates and new slowdowns are
computed — so contention is *emergent*: Liger's offline contention-factor
profiling (§3.5) measures these effects the same way the authors measured
theirs, rather than reading back a constant we injected.

The default coefficients are phenomenological, calibrated so the profiled
factors land near the paper's (≈1.10 on the V100 node, ≈1.15 on the A100
node) and so same-type concurrency contends much harder than mixed-type
overlap — the failure mode Liger's Principle 1 exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import ConfigError
from repro.sim.kernel import Kernel

try:  # pragma: no cover - the container bakes numpy into the toolchain
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["ContentionModel", "NullContention", "DefaultContention", "default_contention_for"]

#: Resident-set size past which the final elementwise combine runs on numpy
#: arrays.  Gathering attributes into arrays has fixed cost, so the common
#: small sets stay scalar; both branches are bit-identical because only
#: elementwise IEEE ops are vectorized — every *reduction* keeps Python's
#: sequential left-to-right association (numpy's pairwise summation would
#: associate differently and drift in the last ULPs, which the golden
#: traces pin).
_VECTOR_MIN_RESIDENT = 8


class ContentionModel:
    """Interface: map a device's resident kernel set to per-kernel slowdowns."""

    #: True when :meth:`slowdowns` reads nothing but each kernel's
    #: ``(kind, occupancy, memory_intensity)`` shape.  Lets the machine
    #: memoize slowdown vectors by resident *shape* (identical shapes recur
    #: endlessly under steady-state decode) instead of recomputing on every
    #: resident-set change.  Leave False in a subclass that reads any other
    #: kernel attribute — the machine then only uses its per-epoch cache.
    pure_in_shape = False

    def slowdowns(self, resident: Iterable[Kernel]) -> Dict[int, float]:
        """Return ``{kernel.uid: slowdown}`` for every resident kernel.

        Slowdowns must be ≥ 1.  A kernel running alone must get exactly 1.0
        (profiled no-load durations are definitions, not approximations).
        """
        raise NotImplementedError


class NullContention(ContentionModel):
    """No interference: every kernel always runs at its no-load duration.

    Used by unit tests and by the ``no-contention`` ablation, where Liger's
    contention factors should profile to exactly 1.0.
    """

    pure_in_shape = True

    def slowdowns(self, resident: Iterable[Kernel]) -> Dict[int, float]:
        return {k.uid: 1.0 for k in resident}


@dataclass
class DefaultContention(ContentionModel):
    """The calibrated interference model.

    Parameters
    ----------
    comm_on_compute:
        How strongly a resident COMM kernel slows compute kernels, per unit
        of the COMM kernel's SM occupancy.  NCCL rings with default channel
        counts occupy real SMs; shrinking channels (the §3.5 mitigation)
        shrinks ``occupancy`` and therefore this penalty, with no change to
        the model itself.
    compute_on_comm:
        How strongly resident compute occupancy slows a COMM kernel.  Higher
        on PCIe nodes, where the collective is latency-sensitive and loses
        more when its proxy/reduction blocks are descheduled.
    same_kind_compute:
        Mutual penalty between co-resident compute kernels (severe — the
        paper calls concurrent GEMMs "severely impeding each other").
    same_kind_comm:
        Mutual penalty between co-resident collectives (they share links).
    memory_pressure:
        Weight of the shared-HBM term: when the summed ``memory_intensity``
        of residents exceeds 1.0, everyone stretches proportionally.
    """

    comm_on_compute: float = 0.45
    compute_on_comm: float = 0.10
    same_kind_compute: float = 0.85
    same_kind_comm: float = 0.60
    memory_pressure: float = 0.35

    # Reads only kind/occupancy/memory_intensity below (uid is just the
    # output key) — eligible for the machine's shape-keyed memo.
    pure_in_shape = True

    def __post_init__(self) -> None:
        for name in (
            "comm_on_compute",
            "compute_on_comm",
            "same_kind_compute",
            "same_kind_comm",
            "memory_pressure",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"contention coefficient {name} must be >= 0")

    def slowdowns(self, resident: Iterable[Kernel]) -> Dict[int, float]:
        kernels = list(resident)
        n = len(kernels)
        if n <= 1:
            return {k.uid: 1.0 for k in kernels}

        # Shared reductions, hoisted out of the per-kernel loop.  Each is
        # the sequential left-to-right sum over the resident order — the
        # association the per-kernel generator sums used to produce, which
        # must not change (reduction order is observable in the last ULP).
        # ``is_compute_like`` is the exact complement of ``is_comm``, so a
        # kernel never contributes to (or is excluded from) both classes.
        total_mem = sum(k.memory_intensity for k in kernels)
        mem_overcommit = max(0.0, total_mem - 1.0)
        mem_scale = self.memory_pressure * mem_overcommit

        comp_occ: List[float] = []
        n_comm = 0
        comm_sum = 0.0
        for k in kernels:
            if k.kind.is_comm:
                comm_sum += k.occupancy
                n_comm += 1
            else:
                comp_occ.append(k.occupancy)
        comp_sum = sum(comp_occ)
        # A comm kernel sees every compute kernel (no self to exclude) and
        # the other comm kernels; the counterpart holds for compute kernels.
        base_comm = (
            1.0 + self.compute_on_comm * comp_sum
        ) + self.same_kind_comm * float(n_comm - 1)
        base_comp = 1.0 + self.comm_on_compute * comm_sum

        # Compute-on-compute is the one genuinely per-kernel reduction: the
        # sequential sum over the *other* compute kernels restarts at a
        # different element for every kernel, so the chains share no
        # partial sums.  O(c²) over the co-resident compute kernels —
        # small, since Principle 1 exists to avoid stacking compute.
        skc = self.same_kind_compute
        c = len(comp_occ)
        excl: List[float] = []
        if c > 1:
            for j in range(c):
                s = 0.0
                for i in range(c):
                    if i != j:
                        s += comp_occ[i]
                excl.append(base_comp + skc * s)
        elif c == 1:
            excl.append(base_comp + skc * 0.0)

        # Per-kernel slowdown before the shared-HBM term, in resident order.
        pre: List[float] = []
        ci = 0
        for k in kernels:
            if k.kind.is_comm:
                pre.append(base_comm)
            else:
                pre.append(excl[ci])
                ci += 1

        # Shared HBM pressure applies to everyone, scaled by how much of
        # the bandwidth the kernel itself needs.  Elementwise combine only
        # — per-element IEEE ops are identical scalar or vectorized, so the
        # numpy branch is bit-equal to the scalar one.
        if _np is not None and n >= _VECTOR_MIN_RESIDENT:
            mems = _np.fromiter(
                (k.memory_intensity for k in kernels), _np.float64, count=n
            )
            vals = _np.asarray(pre) + mem_scale * mems
            return dict(zip((k.uid for k in kernels), vals.tolist()))
        return {
            k.uid: p + mem_scale * k.memory_intensity
            for k, p in zip(kernels, pre)
        }


def default_contention_for(node_name: str) -> DefaultContention:
    """Calibrated coefficients per testbed.

    The A100-PCIe node profiles to a *larger* contention factor than the
    V100-NVLink node in the paper (1.15 vs 1.10) despite having more compute,
    because its PCIe collectives are more sensitive to losing SM timeslices;
    we reflect that with a higher ``compute_on_comm``.
    """
    if "a100" in node_name.lower():
        return DefaultContention(compute_on_comm=0.155, comm_on_compute=0.50)
    return DefaultContention()
