"""Plain-text rendering of experiment results (tables and series).

The paper's figures are line/bar charts; the benchmark harness regenerates
their underlying series and prints them as aligned text tables so the rows
can be compared against the paper (and diffed between runs) without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_kv", "bar"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table with a header rule."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(widths))),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_kv(pairs: Sequence[tuple]) -> str:
    """Render key/value summary lines."""
    width = max(len(str(k)) for k, _ in pairs) if pairs else 0
    return "\n".join(f"{str(k).ljust(width)} : {_cell(v)}" for k, v in pairs)


def bar(value: float, scale: float, width: int = 40) -> str:
    """A proportional ASCII bar (for quick visual series comparison)."""
    if scale <= 0:
        return ""
    n = max(0, min(width, round(value / scale * width)))
    return "#" * n


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
