"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # every figure, quick scale
    python -m repro.experiments fig10 --scale full
    python -m repro.experiments table1 fig3 fig13
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figures import ALL_FIGURES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Liger paper's tables and figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=[],
        help=f"figures to run (default: all). Choices: {', '.join(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "quick", "full"),
        default="quick",
        help="experiment size (smoke: seconds; quick: default; full: paper grid)",
    )
    args = parser.parse_args(argv)

    names = args.figures or list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    for name in names:
        start = time.time()
        result = ALL_FIGURES[name](scale=args.scale)
        elapsed = time.time() - start
        print(f"\n=== {result.figure}: {result.title} [{elapsed:.1f}s] ===")
        print(result.text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
