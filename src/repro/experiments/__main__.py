"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # every figure, quick scale
    python -m repro.experiments fig10 --scale full
    python -m repro.experiments table1 fig3 fig13
    python -m repro.experiments --workers 4     # figures across 4 processes
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figures import ALL_FIGURES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Liger paper's tables and figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=[],
        help=f"figures to run (default: all). Choices: {', '.join(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "quick", "full"),
        default="quick",
        help="experiment size (smoke: seconds; quick: default; full: paper grid)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fan figures across N worker processes (0 = in-process)",
    )
    args = parser.parse_args(argv)

    names = args.figures or list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    if args.workers > 0:
        # Figures fan out like perf scenarios: every figure reseeds its own
        # workloads, and results print in request order, so the figure text
        # matches a sequential run.  Headers carry no per-figure timing (the
        # sequential loop's one annotation — workers report no comparable
        # wall time) and no worker marker: provenance is already recorded in
        # the fanout_workers counter, and decorating the header would make
        # fanned output gratuitously diff against sequential output.
        from repro.perf.fanout import _figure_task, fanout_map

        start = time.time()
        results = fanout_map(
            _figure_task,
            [(name, args.scale) for name in names],
            args.workers,
        )
        elapsed = time.time() - start
        for figure, title, text in results:
            print(f"\n=== {figure}: {title} ===")
            print(text)
        print(f"\n{len(results)} figure(s) in {elapsed:.1f}s across "
              f"{min(args.workers, len(names))} workers")
        return 0

    for name in names:
        start = time.time()
        result = ALL_FIGURES[name](scale=args.scale)
        elapsed = time.time() - start
        print(f"\n=== {result.figure}: {result.title} [{elapsed:.1f}s] ===")
        print(result.text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
