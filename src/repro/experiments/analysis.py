"""Post-run analysis of serving results.

Turns a traced :class:`~repro.serving.server.ServingResult` into the
quantities a performance engineer asks about after a run:

* **utilization** — per-GPU busy fraction, communication share, and how much
  of the communication wall time was hidden under computation (Liger's
  whole value proposition, measured rather than asserted);
* **latency breakdown** — per batch, how much of the end-to-end latency was
  *pending* (waiting for the runtime to start it) vs *execution* (first
  kernel start → last kernel end), the decomposition the paper's latency
  definition implies;
* **lag detection** — communication kernels whose ready→start delay exceeds
  a threshold, i.e. occurrences of the §2.3.1 execution-lag pathology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigError
from repro.experiments.reporting import format_table
from repro.serving.server import ServingResult
from repro.sim.kernel import KernelKind
from repro.sim.tracing import Trace

__all__ = [
    "GpuUtilization",
    "BatchBreakdown",
    "utilization_report",
    "latency_breakdown",
    "comm_lag_events",
    "serving_report",
]


@dataclass(frozen=True)
class GpuUtilization:
    """One GPU's activity summary over the serving span."""

    gpu: int
    busy_fraction: float
    comm_fraction: float
    comm_hidden_fraction: float


@dataclass(frozen=True)
class BatchBreakdown:
    """One batch's latency decomposition (all µs)."""

    batch_id: int
    arrival: float
    exec_start: float
    completion: float

    @property
    def pending(self) -> float:
        return self.exec_start - self.arrival

    @property
    def execution(self) -> float:
        return self.completion - self.exec_start

    @property
    def total(self) -> float:
        return self.completion - self.arrival


def _require_trace(result: ServingResult) -> Trace:
    if result.trace is None:
        raise ConfigError(
            "result has no trace; run the server with record_trace=True"
        )
    return result.trace


def utilization_report(result: ServingResult, num_gpus: int) -> List[GpuUtilization]:
    """Per-GPU busy/communication/overlap fractions."""
    trace = _require_trace(result)
    span = trace.makespan()
    if span <= 0:
        raise ConfigError("degenerate trace span")
    out = []
    for g in range(num_gpus):
        busy = trace.busy_time(g)
        comm = trace.busy_time(g, KernelKind.COMM)
        out.append(
            GpuUtilization(
                gpu=g,
                busy_fraction=busy / span,
                comm_fraction=comm / busy if busy > 0 else 0.0,
                comm_hidden_fraction=trace.overlap_efficiency(g),
            )
        )
    return out


def latency_breakdown(result: ServingResult) -> List[BatchBreakdown]:
    """Pending vs execution time per batch, joined via batch ids."""
    trace = _require_trace(result)
    first_start: Dict[int, float] = {}
    last_end: Dict[int, float] = {}
    for r in trace.rows:
        if r.batch_id < 0:
            continue
        first_start[r.batch_id] = min(first_start.get(r.batch_id, np.inf), r.start)
        last_end[r.batch_id] = max(last_end.get(r.batch_id, -np.inf), r.end)
    arrivals: Dict[int, float] = {}
    for req in result.metrics.completed:
        if req.batch_id >= 0:
            arrivals[req.batch_id] = max(
                arrivals.get(req.batch_id, -np.inf), req.arrival
            )
    out = []
    for bid in sorted(first_start):
        if bid not in arrivals:
            continue  # infrastructure batch (e.g. profiling)
        out.append(
            BatchBreakdown(
                batch_id=bid,
                arrival=arrivals[bid],
                exec_start=first_start[bid],
                completion=last_end[bid],
            )
        )
    return out


def comm_lag_events(result: ServingResult, *, threshold_us: float = 20.0):
    """Communication kernels whose ready→start lag exceeds the threshold.

    A healthy Liger schedule keeps these rare: the hybrid synchronization
    exists precisely so communication kernels start when scheduled.
    """
    trace = _require_trace(result)
    return [
        r
        for r in trace.rows
        if r.kind is KernelKind.COMM and r.queueing_delay > threshold_us
    ]


def serving_report(result: ServingResult, num_gpus: int) -> str:
    """A human-readable post-run report (tables of the above)."""
    util = utilization_report(result, num_gpus)
    util_rows = [
        [u.gpu, u.busy_fraction * 100, u.comm_fraction * 100,
         u.comm_hidden_fraction * 100]
        for u in util
    ]
    parts = [
        f"serving report: {result.summary()}",
        "",
        format_table(["gpu", "busy(%)", "comm-of-busy(%)", "comm-hidden(%)"], util_rows),
    ]
    breakdown = latency_breakdown(result)
    if breakdown:
        pend = np.array([b.pending for b in breakdown]) / 1e3
        execu = np.array([b.execution for b in breakdown]) / 1e3
        parts += [
            "",
            format_table(
                ["metric", "mean(ms)", "p95(ms)"],
                [
                    ["pending", float(pend.mean()), float(np.percentile(pend, 95))],
                    ["execution", float(execu.mean()), float(np.percentile(execu, 95))],
                ],
            ),
        ]
    lag = comm_lag_events(result)
    parts += ["", f"comm kernels with >20us start lag: {len(lag)}"]
    return "\n".join(parts)
