"""Experiment harness and per-figure reproductions of the paper's evaluation.

``repro.experiments.figures`` has one entry point per table/figure (see the
per-experiment index in DESIGN.md); ``python -m repro.experiments`` runs them
from the command line.
"""

from repro.experiments.analysis import (
    comm_lag_events,
    latency_breakdown,
    serving_report,
    utilization_report,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    ablations,
    continuous_batching,
    fig3,
    fig4,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fluctuating,
    headline,
    lifecycle,
    table1,
)
from repro.experiments.harness import ExperimentRecord, ExperimentRunner
from repro.experiments.reporting import format_kv, format_table

__all__ = [
    "ExperimentRecord",
    "ExperimentRunner",
    "FigureResult",
    "ALL_FIGURES",
    "table1",
    "fig3",
    "fig4",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "headline",
    "ablations",
    "fluctuating",
    "continuous_batching",
    "lifecycle",
    "format_table",
    "format_kv",
    "serving_report",
    "utilization_report",
    "latency_breakdown",
    "comm_lag_events",
]
