"""Experiment harness: rate sweeps, records, and saturation estimation.

One :class:`ExperimentRunner` per (model, node) pair caches the profiler so a
sweep over strategies and arrival rates reuses the offline profile, exactly
like deploying Liger once and varying the load.  Rates are expressed as
fractions of the *estimated intra-op saturation throughput*, so the same
sweep specification works across models and nodes (the paper hand-picks
per-node rate ranges for the same reason — §D: "it is necessary to specify
the arrival rate for your node").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.hw.devices import NodeSpec
from repro.models.kvcache import decode_step_ops
from repro.models.specs import ModelSpec
from repro.models.transformer import prefill_ops
from repro.profiling.contention_profiler import ContentionFactors
from repro.profiling.profiler import OpProfiler
from repro.serving.api import make_strategy
from repro.serving.server import Server
from repro.serving.workload import general_trace, generative_trace
from repro.sim.interconnect import NcclConfig

__all__ = ["ExperimentRecord", "ExperimentRunner"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One (configuration, strategy, rate) measurement."""

    figure: str
    panel: str
    strategy: str
    rate: float
    num_requests: int
    batch_size: int
    avg_latency_ms: float
    p99_latency_ms: float
    throughput: float
    extra: Dict[str, float] = field(default_factory=dict)

    def row(self) -> List[object]:
        """The record as a printable table row (see ``ROW_HEADERS``)."""
        return [
            self.panel,
            self.strategy,
            round(self.rate, 2),
            self.batch_size,
            self.avg_latency_ms,
            self.p99_latency_ms,
            self.throughput,
        ]

    ROW_HEADERS = [
        "panel",
        "strategy",
        "rate(req/s)",
        "batch",
        "lat(ms)",
        "p99(ms)",
        "thr(req/s)",
    ]


class ExperimentRunner:
    """Runs serving sweeps for one (model, node) configuration."""

    def __init__(
        self,
        model: ModelSpec,
        node: NodeSpec,
        *,
        figure: str = "",
        panel: str = "",
        contention_factors: Optional[ContentionFactors] = None,
    ) -> None:
        self.model = model
        self.node = node
        self.figure = figure
        self.panel = panel or f"{model.name}/{node.name}"
        # Share one profiler per NCCL flavour across the sweep.
        self._profilers = {
            "default": OpProfiler(node, nccl=NcclConfig()),
            "reduced": OpProfiler(node, nccl=NcclConfig().reduced()),
        }
        self.contention_factors = contention_factors

    # ------------------------------------------------------------------
    # Saturation estimation (for auto-scaled rate grids)
    # ------------------------------------------------------------------
    def intra_op_batch_time_us(
        self, batch_size: int, *, seq: int = 72, workload: str = "general",
        context_len: int = 16,
    ) -> float:
        """Analytic single-batch execution time under intra-op (µs)."""
        prof = self._profilers["default"]
        tp = self.node.num_gpus
        if workload == "general":
            ops = prefill_ops(self.model, batch_size, seq, tp)
        else:
            ops = decode_step_ops(self.model, batch_size, context_len, tp)
        return sum(prof.duration(op) for op in ops)

    def saturation_rate(self, batch_size: int, **kw) -> float:
        """Estimated intra-op saturation throughput (requests/second)."""
        t = self.intra_op_batch_time_us(batch_size, **kw)
        if t <= 0:
            raise ConfigError("degenerate batch time")
        return batch_size / (t * 1e-6)

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def run_point(
        self,
        strategy: str,
        rate: float,
        *,
        num_requests: int = 32,
        batch_size: int = 2,
        workload: str = "general",
        seq_range=(16, 128),
        context_len: int = 16,
        seed: int = 0,
        record_trace: bool = False,
        arrival=None,
        **strategy_kwargs,
    ):
        """Serve one (strategy, rate) point; returns (record, result)."""
        if strategy == "liger" and self.contention_factors is not None:
            from repro.core.config import LigerConfig

            strategy_kwargs.setdefault(
                "config", LigerConfig(contention_factors=self.contention_factors)
            )
        use_reduced = strategy == "liger"
        cfg = strategy_kwargs.get("config")
        if cfg is not None and not getattr(cfg, "reduce_nccl_channels", True):
            use_reduced = False  # the §3.5-mitigation ablation
        profiler = self._profilers["reduced" if use_reduced else "default"]
        strat = make_strategy(
            strategy, self.model, self.node, profiler=profiler, **strategy_kwargs
        )
        if workload == "general":
            batches = general_trace(
                num_requests, rate, batch_size, seq_range=seq_range, seed=seed,
                arrival=arrival,
            )
        elif workload == "generative":
            batches = generative_trace(
                num_requests, rate, batch_size=batch_size,
                context_len=context_len, seed=seed, arrival=arrival,
            )
        else:
            raise ConfigError(f"unknown workload {workload!r}")
        server = Server(
            self.model, self.node, strat, record_trace=record_trace, check_memory=False
        )
        result = server.run(batches)
        stats = result.latency_stats()
        record = ExperimentRecord(
            figure=self.figure,
            panel=self.panel,
            strategy=strategy,
            rate=rate,
            num_requests=num_requests,
            batch_size=batch_size,
            avg_latency_ms=stats.mean,
            p99_latency_ms=stats.p99,
            throughput=result.throughput,
        )
        return record, result

    def sweep(
        self,
        strategies: Sequence[str],
        rates: Sequence[float],
        **point_kwargs,
    ) -> List[ExperimentRecord]:
        """Cartesian sweep of strategies × rates."""
        records: List[ExperimentRecord] = []
        for rate in rates:
            for strategy in strategies:
                record, _ = self.run_point(strategy, rate, **point_kwargs)
                records.append(record)
        return records

    def relative_rates(
        self, fractions: Sequence[float], batch_size: int, **kw
    ) -> List[float]:
        """Rates expressed as fractions of intra-op saturation throughput."""
        cap = self.saturation_rate(batch_size, **kw)
        return [round(cap * f, 3) for f in fractions]
