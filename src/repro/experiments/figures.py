"""Per-figure experiment definitions: regenerate every table and figure.

Each ``figN`` function reproduces the data behind one figure of the paper's
evaluation (§4) and returns a :class:`FigureResult` with structured records
plus a printable text rendering.  The ``scale`` parameter trades fidelity
for wall-clock:

* ``"smoke"`` — layer-reduced models, tiny sweeps; seconds.  Used by tests.
* ``"quick"`` — full models, the paper's headline panels, compact rate
  grids; the default for the benchmark suite.
* ``"full"``  — every panel of the paper (all 12 of Fig. 10), wider grids,
  more requests; minutes.

Arrival-rate grids are specified as fractions of the *estimated intra-op
saturation throughput* so one grid fits every model/node combination (the
paper likewise tunes rates per node, §D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import LigerConfig, SyncMode
from repro.errors import ConfigError
from repro.experiments.harness import ExperimentRecord, ExperimentRunner
from repro.experiments.reporting import format_kv, format_table
from repro.hw.devices import NodeSpec, a100_pcie_node, v100_nvlink_node
from repro.models.specs import (
    GLM_130B,
    MODELS,
    OPT_8B,
    OPT_13B,
    OPT_30B,
    OPT_66B,
    OPT_175B,
    ModelSpec,
)
from repro.models.transformer import prefill_ops
from repro.profiling.contention_profiler import ContentionFactors
from repro.profiling.profiler import OpProfiler
from repro.serving.api import make_strategy
from repro.serving.request import Batch, Phase, Request
from repro.serving.server import Server
from repro.sim.interconnect import NcclConfig

__all__ = [
    "FigureResult",
    "table1",
    "fig3",
    "fig4",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "headline",
    "ablations",
    "fluctuating",
    "continuous_batching",
    "lifecycle",
    "ALL_FIGURES",
]

ALL_STRATEGIES = ("intra", "inter", "inter_th", "liger")

#: Pinned contention factors per node flavour (the §4.2 values); figure runs
#: use these instead of re-profiling to keep sweeps fast and deterministic.
PINNED_FACTORS = {
    "v100": ContentionFactors(compute=1.05, comm=1.10),
    "a100": ContentionFactors(compute=1.05, comm=1.15),
}


@dataclass
class FigureResult:
    """Structured output of one figure regeneration."""

    figure: str
    title: str
    records: List[ExperimentRecord] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _memoized(fn):
    """Cache figure results per scale (figure runs are deterministic).

    Several benchmark tests assert different shapes against the same figure;
    the cache lets them share one regeneration instead of re-sweeping.
    """
    cache: Dict[str, FigureResult] = {}

    def wrapper(scale: str = "quick") -> FigureResult:
        if scale not in cache:
            cache[scale] = fn(scale=scale)
        return cache[scale]

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


# ----------------------------------------------------------------------
# Scale handling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Scale:
    requests: int
    rate_fracs: Tuple[float, ...]
    all_panels: bool
    all_batches: bool
    reduce_layers: Optional[int]  # None = full model


_SCALES: Dict[str, _Scale] = {
    "smoke": _Scale(16, (0.5, 1.15), False, False, 8),
    "quick": _Scale(32, (0.3, 0.7, 1.0, 1.2), False, False, None),
    "full": _Scale(80, (0.25, 0.6, 0.9, 1.1, 1.3), True, True, None),
}


def _scale(name: str) -> _Scale:
    if name not in _SCALES:
        raise ConfigError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}")
    return _SCALES[name]


def _maybe_reduce(model: ModelSpec, sc: _Scale) -> ModelSpec:
    if sc.reduce_layers is None or model.num_layers <= sc.reduce_layers:
        return model
    return model.scaled_layers(sc.reduce_layers)


def _factors_for(node: NodeSpec) -> ContentionFactors:
    return PINNED_FACTORS["a100" if "a100" in node.name else "v100"]


def _fixed_seq_batch(size: int, seq: int, arrival: float = 1.0) -> Batch:
    return Batch(
        requests=[
            Request(rid=i, arrival=arrival, seq_len=seq, phase=Phase.PREFILL)
            for i in range(size)
        ]
    )


# ----------------------------------------------------------------------
# Table 1 — model specifications
# ----------------------------------------------------------------------
def table1() -> FigureResult:
    """Table 1: the served models."""
    rows = []
    for name in ("OPT-30B", "OPT-66B", "GLM-130B"):
        m = MODELS[name]
        rows.append(
            [m.name, f"{m.weight_bytes/1e9:.0f}GB", m.num_layers, m.num_heads,
             m.hidden_size, "FP16"]
        )
    text = format_table(
        ["Name", "Parameters", "Layers", "Heads", "Hidden Size", "Prec."], rows
    )
    return FigureResult(figure="table1", title="Model Specifications", text=text)


# ----------------------------------------------------------------------
# Fig. 3 — intra-op strong scaling + communication share
# ----------------------------------------------------------------------
def _fit_layers(model: ModelSpec, node: NodeSpec) -> int:
    """Largest layer count whose sharded weights fit one device (§2.2)."""
    usable = node.gpu.memory_capacity * 0.95
    frac = usable / model.weight_bytes
    return max(1, min(model.num_layers, int(model.num_layers * frac)))


@_memoized
def fig3(scale: str = "quick") -> FigureResult:
    """Fig. 3: strong scaling of the intra-op approach on both testbeds.

    Paper: OPT-30B/V100 speeds up 2.58× from 1→4 GPUs with communication at
    20.7% of total time; GLM-130B/A100 manages only 1.91× with 47.1% comm.
    """
    sc = _scale(scale)
    seq = 72  # mid-range of the paper's 16–128 trace
    batch = 2
    rows = []
    records: List[ExperimentRecord] = []
    summary: Dict[str, float] = {}
    for model, make_node in ((OPT_30B, v100_nvlink_node), (GLM_130B, a100_pcie_node)):
        reduced = model.scaled_layers(
            min(_fit_layers(model, make_node(1)), sc.reduce_layers or 10**9)
        )
        base_latency = None
        for p in (1, 2, 4):
            node = make_node(p)
            runner = ExperimentRunner(
                reduced, node, figure="fig3",
                panel=f"{model.name}/{node.name}",
                contention_factors=_factors_for(node),
            )
            b = _fixed_seq_batch(batch, seq)
            record, result = _single_batch_point(runner, b)
            comm_frac = (
                result.trace.comm_fraction(0) if p > 1 and result.trace else 0.0
            )
            latency = record.avg_latency_ms
            if p == 1:
                base_latency = latency
            speedup = base_latency / latency if base_latency else 1.0
            rows.append([f"{model.name}", p, latency, speedup, comm_frac * 100])
            records.append(record)
            if p == 4:
                key = "v100" if "v100" in node.name else "a100"
                summary[f"{key}_speedup_4gpu"] = speedup
                summary[f"{key}_comm_pct"] = comm_frac * 100
    text = format_table(
        ["model", "gpus", "lat(ms)", "speedup", "comm(%)"], rows
    )
    return FigureResult(
        figure="fig3", title="Intra-op strong scaling", records=records,
        summary=summary, text=text,
    )


def _single_batch_point(runner: ExperimentRunner, batch: Batch):
    """Serve exactly one batch and return its execution record."""
    strat = make_strategy(
        "intra", runner.model, runner.node,
        profiler=OpProfiler(runner.node, nccl=NcclConfig()),
    )
    server = Server(runner.model, runner.node, strat, check_memory=False)
    result = server.run([batch])
    stats = result.latency_stats()
    record = ExperimentRecord(
        figure=runner.figure, panel=runner.panel, strategy="intra",
        rate=0.0, num_requests=batch.size, batch_size=batch.size,
        avg_latency_ms=stats.mean, p99_latency_ms=stats.p99,
        throughput=result.throughput,
    )
    return record, result


# ----------------------------------------------------------------------
# Fig. 4 — kernel-duration variance across models and inputs
# ----------------------------------------------------------------------
def fig4(scale: str = "quick") -> FigureResult:
    """Fig. 4: widely-varied kernel durations.

    (a) across model sizes 8B→175B the duration distribution grows more
    skewed ("few kernels take up most of the time"); (b) durations shift
    with input size.
    """
    del scale  # analytic — cheap at every scale
    node = v100_nvlink_node(4)
    prof = OpProfiler(node)
    rows_a = []
    skews = []
    for model in (OPT_8B, OPT_13B, OPT_30B, OPT_66B, OPT_175B):
        ops = [o for o in prefill_ops(model, 2, 64, 1) if not o.is_comm]
        durations = np.array([prof.duration(o) for o in ops])
        cv = float(durations.std() / durations.mean())
        top_share = float(np.sort(durations)[::-1][: max(1, len(durations) // 10)].sum()
                          / durations.sum())
        skews.append(cv)
        rows_a.append([model.name, len(durations), cv, top_share * 100,
                       float(durations.max() / durations.min())])
    rows_b = []
    base: Dict[str, float] = {}
    for seq in (16, 32, 64, 128):
        ops = prefill_ops(OPT_30B, 2, seq, 1, layers=[0])
        for o in ops:
            if o.is_comm:
                continue
            d = prof.duration(o)
            key = o.name
            if seq == 16:
                base[key] = d
            rows_b.append([seq, o.name, d, d / base[key]])
    text = (
        "(a) kernel duration spread across model sizes\n"
        + format_table(
            ["model", "kernels", "cv", "top10%share(%)", "max/min"], rows_a
        )
        + "\n\n(b) kernel durations vs input size (layer 0, normalized to seq=16)\n"
        + format_table(["seq", "kernel", "dur(us)", "vs seq16"], rows_b)
    )
    return FigureResult(
        figure="fig4",
        title="Kernel duration variance",
        summary={"cv_monotone": float(all(b >= a for a, b in zip(skews, skews[1:])))},
        text=text,
    )



def _series_view(records: List[ExperimentRecord]) -> str:
    """Render latency-vs-rate per strategy as aligned sparkbars.

    A text rendition of the paper's line plots: one block per panel, one row
    per (rate, strategy) with a bar proportional to average latency, so the
    crossover structure is visible straight from the terminal.
    """
    from repro.experiments.reporting import bar

    lines: List[str] = []
    for panel in sorted({r.panel for r in records}):
        sub = [r for r in records if r.panel == panel]
        max_lat = max(r.avg_latency_ms for r in sub)
        lines.append(f"[{panel}] latency vs arrival rate (bar ∝ avg latency)")
        for rate in sorted({r.rate for r in sub}):
            for r in sorted(
                (x for x in sub if x.rate == rate), key=lambda x: x.strategy
            ):
                lines.append(
                    f"  rate {rate:8.1f}  {r.strategy:>8s} "
                    f"{bar(r.avg_latency_ms, max_lat, 36):<36s} "
                    f"{r.avg_latency_ms:7.1f} ms  {r.throughput:7.1f} req/s"
                )
            lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Fig. 10 — general serving: latency & throughput vs arrival rate
# ----------------------------------------------------------------------
def _fig10_panels(sc: _Scale) -> List[Tuple[ModelSpec, NodeSpec]]:
    panels = [
        (OPT_30B, v100_nvlink_node(4)),
        (OPT_30B, a100_pcie_node(4)),
    ]
    if sc.all_panels:
        panels += [(OPT_66B, a100_pcie_node(4)), (GLM_130B, a100_pcie_node(4))]
    return panels


@_memoized
def fig10(scale: str = "quick") -> FigureResult:
    """Fig. 10: the headline serving comparison on random traces (§4.2).

    Expected shapes: Liger tracks Intra-Op latency at low rates, exceeds its
    throughput at high rates (more on the PCIe node), and stays below
    Inter-Op/Inter-Th latency before its own saturation.
    """
    sc = _scale(scale)
    batches = (2, 4, 8) if sc.all_batches else (2,)
    records: List[ExperimentRecord] = []
    for model, node in _fig10_panels(sc):
        model_r = _maybe_reduce(model, sc)
        for batch_size in batches:
            runner = ExperimentRunner(
                model_r, node, figure="fig10",
                panel=f"{model.name}/{'v100' if 'v100' in node.name else 'a100'}/b{batch_size}",
                contention_factors=_factors_for(node),
            )
            rates = runner.relative_rates(sc.rate_fracs, batch_size)
            records += runner.sweep(
                ALL_STRATEGIES, rates,
                num_requests=sc.requests, batch_size=batch_size,
            )
    summary = _liger_gains(records)
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + _series_view(records)
    text += "\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="fig10", title="General serving vs arrival rate",
        records=records, summary=summary, text=text,
    )


def _liger_gains(records: List[ExperimentRecord]) -> Dict[str, float]:
    """Cross-strategy gains per panel: Liger vs the baselines."""
    out: Dict[str, float] = {}
    panels = sorted({r.panel for r in records})
    thr_gains, lat_red_inter, lat_red_inter_th = [], [], []
    for panel in panels:
        sub = [r for r in records if r.panel == panel]
        by = lambda s: [r for r in sub if r.strategy == s]
        if not by("liger") or not by("intra"):
            continue
        max_liger = max(r.throughput for r in by("liger"))
        max_intra = max(r.throughput for r in by("intra"))
        out[f"{panel}:liger_thr_vs_intra"] = max_liger / max_intra
        thr_gains.append(max_liger / max_intra)
        # latency vs the pipelines at pre-saturation rates
        for name, acc in (("inter", lat_red_inter), ("inter_th", lat_red_inter_th)):
            pairs = [
                (l, i)
                for l in by("liger")
                for i in by(name)
                if abs(l.rate - i.rate) < 1e-9 and l.throughput >= l.rate * 0.9
            ]
            if pairs:
                red = float(
                    np.mean([1 - l.avg_latency_ms / i.avg_latency_ms for l, i in pairs])
                )
                out[f"{panel}:liger_lat_red_vs_{name}"] = red
                acc.append(red)
    if thr_gains:
        out["mean_thr_gain_vs_intra"] = float(np.mean(thr_gains))
    if lat_red_inter:
        out["mean_lat_reduction_vs_inter"] = float(np.mean(lat_red_inter))
    if lat_red_inter_th:
        out["mean_lat_reduction_vs_inter_th"] = float(np.mean(lat_red_inter_th))
    return out


# ----------------------------------------------------------------------
# Fig. 11 — generative (incremental sampling) serving
# ----------------------------------------------------------------------
@_memoized
def fig11(scale: str = "quick") -> FigureResult:
    """Fig. 11: decode-phase serving (context 16, batch 32, §4.3).

    Liger still wins on both metrics but by less — decode kernels are
    latency-bound, so there is less communication time to hide.
    """
    sc = _scale(scale)
    records: List[ExperimentRecord] = []
    batch_size = 32
    for model, node in _fig10_panels(sc):
        model_r = _maybe_reduce(model, sc)
        runner = ExperimentRunner(
            model_r, node, figure="fig11",
            panel=f"{model.name}/{'v100' if 'v100' in node.name else 'a100'}",
            contention_factors=_factors_for(node),
        )
        cap = runner.saturation_rate(batch_size, workload="generative")
        rates = [round(cap * f, 2) for f in sc.rate_fracs]
        # Generative "requests" are single tokens: size the trace in batches
        # (decode steps) so throughput reaches steady state.
        num_steps = max(6, sc.requests // 4)
        records += runner.sweep(
            ALL_STRATEGIES, rates,
            num_requests=num_steps * batch_size,
            batch_size=batch_size, workload="generative",
        )
    summary = _liger_gains(records)
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="fig11", title="Generative-task serving",
        records=records, summary=summary, text=text,
    )


# ----------------------------------------------------------------------
# Fig. 12 — strong scaling of serving (1/2/4 A100 GPUs)
# ----------------------------------------------------------------------
@_memoized
def fig12(scale: str = "quick") -> FigureResult:
    """Fig. 12: OPT-30B served on 1, 2, and 4 A100 GPUs.

    Liger's gains grow with the device count (more communication to hide);
    the paper notes the 2-GPU effect is muted by the lower comm ratio.
    """
    sc = _scale(scale)
    records: List[ExperimentRecord] = []
    model = _maybe_reduce(OPT_30B, sc)
    for p in (1, 2, 4):
        node = a100_pcie_node(p)
        runner = ExperimentRunner(
            model, node, figure="fig12", panel=f"OPT-30B/a100x{p}",
            contention_factors=_factors_for(node),
        )
        rates = runner.relative_rates(sc.rate_fracs, 2)
        strategies = ALL_STRATEGIES if p > 1 else ("intra", "liger")
        records += runner.sweep(
            strategies, rates, num_requests=sc.requests, batch_size=2
        )
    summary: Dict[str, float] = {}
    for p in (2, 4):
        sub = [r for r in records if r.panel.endswith(f"x{p}")]
        liger = [r for r in sub if r.strategy == "liger"]
        intra = [r for r in sub if r.strategy == "intra"]
        if liger and intra:
            summary[f"thr_gain_x{p}"] = max(r.throughput for r in liger) / max(
                r.throughput for r in intra
            )
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="fig12", title="Serving strong scaling",
        records=records, summary=summary, text=text,
    )


# ----------------------------------------------------------------------
# Fig. 13 — hybrid synchronization benefit
# ----------------------------------------------------------------------
@_memoized
def fig13(scale: str = "quick") -> FigureResult:
    """Fig. 13: Liger with hybrid vs CPU-GPU synchronization (V100, batch 2)."""
    sc = _scale(scale)
    model = _maybe_reduce(OPT_30B, sc)
    node = v100_nvlink_node(4)
    records: List[ExperimentRecord] = []
    factors = _factors_for(node)
    runner = ExperimentRunner(
        model, node, figure="fig13", panel="OPT-30B/v100",
        contention_factors=factors,
    )
    rates = runner.relative_rates(sc.rate_fracs, 2)
    for mode in (SyncMode.HYBRID, SyncMode.CPU_GPU, SyncMode.INTER_STREAM):
        for rate in rates:
            record, _ = runner.run_point(
                "liger", rate, num_requests=sc.requests, batch_size=2,
                config=LigerConfig(sync_mode=mode, contention_factors=factors),
            )
            records.append(
                ExperimentRecord(
                    figure="fig13", panel=f"sync={mode.value}",
                    strategy="liger", rate=rate,
                    num_requests=record.num_requests, batch_size=2,
                    avg_latency_ms=record.avg_latency_ms,
                    p99_latency_ms=record.p99_latency_ms,
                    throughput=record.throughput,
                )
            )
    summary = _panel_vs_panel(records, "sync=hybrid", "sync=cpu_gpu")
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="fig13", title="Hybrid synchronization benefit",
        records=records, summary=summary, text=text,
    )


def _panel_vs_panel(
    records: List[ExperimentRecord], a: str, b: str
) -> Dict[str, float]:
    pa = [r for r in records if r.panel == a]
    pb = [r for r in records if r.panel == b]
    out: Dict[str, float] = {}
    pairs = [
        (x, y) for x in pa for y in pb if abs(x.rate - y.rate) < 1e-9
    ]
    if pairs:
        out[f"{a}_lat_vs_{b}"] = float(
            np.mean([x.avg_latency_ms / y.avg_latency_ms for x, y in pairs])
        )
        out[f"{a}_thr_vs_{b}"] = max(x.throughput for x in pa) / max(
            y.throughput for y in pb
        )
    return out


# ----------------------------------------------------------------------
# Fig. 14 — decomposition-factor sensitivity
# ----------------------------------------------------------------------
@_memoized
def fig14(scale: str = "quick") -> FigureResult:
    """Fig. 14: division factors 2/4/8/16 (V100, OPT-30B, batch 2).

    Larger factors match subset durations more precisely — better latency
    and throughput with diminishing returns.
    """
    sc = _scale(scale)
    model = _maybe_reduce(OPT_30B, sc)
    node = v100_nvlink_node(4)
    factors = _factors_for(node)
    runner = ExperimentRunner(
        model, node, figure="fig14", panel="OPT-30B/v100",
        contention_factors=factors,
    )
    rates = runner.relative_rates(sc.rate_fracs[-2:], 2)  # near saturation
    records: List[ExperimentRecord] = []
    for d in (2, 4, 8, 16):
        for rate in rates:
            record, _ = runner.run_point(
                "liger", rate, num_requests=sc.requests, batch_size=2,
                config=LigerConfig(division_factor=d, contention_factors=factors),
            )
            records.append(
                ExperimentRecord(
                    figure="fig14", panel=f"d={d}", strategy="liger", rate=rate,
                    num_requests=record.num_requests, batch_size=2,
                    avg_latency_ms=record.avg_latency_ms,
                    p99_latency_ms=record.p99_latency_ms,
                    throughput=record.throughput,
                )
            )
    lat_by_d = {
        d: float(np.mean([r.avg_latency_ms for r in records if r.panel == f"d={d}"]))
        for d in (2, 4, 8, 16)
    }
    summary = {f"lat_d{d}": v for d, v in lat_by_d.items()}
    summary["monotone_improvement"] = float(
        lat_by_d[2] >= lat_by_d[4] >= lat_by_d[8] * 0.999
    )
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="fig14", title="Decomposition factor sensitivity",
        records=records, summary=summary, text=text,
    )


# ----------------------------------------------------------------------
# §4 headline numbers
# ----------------------------------------------------------------------
@_memoized
def headline(scale: str = "quick") -> FigureResult:
    """The abstract's 4-device claim: −36.0% latency vs Inter-Op at equal
    throughput; 1.34× throughput vs Intra-Op with better latency.

    Measured on GLM-130B over the A100-PCIe node — the weakest-interconnect,
    highest-communication configuration, where the paper's headline numbers
    land (our full-scale panel: −38.8 % latency vs Inter-Op, 1.47× throughput
    vs Intra-Op)."""
    sc = _scale(scale)
    model = _maybe_reduce(GLM_130B, sc)
    node = a100_pcie_node(4)  # the weaker interconnect shows the full effect
    runner = ExperimentRunner(
        model, node, figure="headline", panel="GLM-130B/a100",
        contention_factors=_factors_for(node),
    )
    fracs = sorted(set(tuple(sc.rate_fracs) + (1.0, 1.15, 1.3)))
    rates = runner.relative_rates(fracs, 2)
    records = runner.sweep(ALL_STRATEGIES, rates, num_requests=sc.requests, batch_size=2)
    summary = _liger_gains(records)
    rows = [r.row() for r in records]
    text = format_table(ExperimentRecord.ROW_HEADERS, rows)
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="headline", title="Headline claims (4-device case)",
        records=records, summary=summary, text=text,
    )


# ----------------------------------------------------------------------
# Ablations (ours): each design component of §3.4–§3.6
# ----------------------------------------------------------------------
@_memoized
def ablations(scale: str = "quick") -> FigureResult:
    """Component ablations: contention anticipation, decomposition, NCCL
    footprint reduction, and sync mode, at a saturating rate."""
    sc = _scale(scale)
    model = _maybe_reduce(OPT_30B, sc)
    node = v100_nvlink_node(4)
    factors = _factors_for(node)
    runner = ExperimentRunner(
        model, node, figure="ablations", panel="OPT-30B/v100",
        contention_factors=factors,
    )
    rate = runner.relative_rates((1.15,), 2)[0]
    no_factors = ContentionFactors(compute=1.0, comm=1.0)
    variants = {
        "liger(default)": LigerConfig(contention_factors=factors),
        "no-decomposition": LigerConfig(
            contention_factors=factors, enable_decomposition=False
        ),
        "no-anticipation": LigerConfig(contention_factors=no_factors),
        "full-nccl-channels": LigerConfig(
            contention_factors=factors, reduce_nccl_channels=False
        ),
        "cpu-gpu-sync": LigerConfig(
            contention_factors=factors, sync_mode=SyncMode.CPU_GPU
        ),
        "best-fit-packing": LigerConfig(
            contention_factors=factors, packing="best_fit"
        ),
    }
    records: List[ExperimentRecord] = []
    for name, cfg in variants.items():
        record, _ = runner.run_point(
            "liger", rate, num_requests=sc.requests, batch_size=2, config=cfg
        )
        records.append(
            ExperimentRecord(
                figure="ablations", panel=name, strategy="liger", rate=rate,
                num_requests=record.num_requests, batch_size=2,
                avg_latency_ms=record.avg_latency_ms,
                p99_latency_ms=record.p99_latency_ms,
                throughput=record.throughput,
            )
        )
    base = records[0]
    summary = {
        f"{r.panel}:lat_vs_default": r.avg_latency_ms / base.avg_latency_ms
        for r in records[1:]
    }
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="ablations", title="Component ablations",
        records=records, summary=summary, text=text,
    )


# ----------------------------------------------------------------------
# Fluctuating arrivals (extension; the paper's §4.2 caveat)
# ----------------------------------------------------------------------
@_memoized
def fluctuating(scale: str = "quick") -> FigureResult:
    """Bursty traffic: the workload the paper's constant-rate sweep avoids.

    §4.2 notes that "since we use a constant request rate instead of a
    fluctuated request rate, our approach simultaneously advances over the
    best of intra- and inter-operator approaches in a relatively narrow
    arrival rate window".  We compare constant and bursty arrivals at the
    same *mean* rate near the intra-op saturation knee.  Empirical finding
    (recorded in EXPERIMENTS.md): Liger dominates under **both** patterns,
    and the gap is *largest* under sustained constant load — a knee-rate
    constant stream is the adversarial case for intra-op (persistent
    queueing), while burst lulls give intra-op recovery windows.  Bursty
    traffic therefore narrows, but never closes, Liger's latency advantage.
    """
    from repro.serving.arrival import BurstyProcess

    sc = _scale(scale)
    model = _maybe_reduce(OPT_30B, sc)
    node = v100_nvlink_node(4)
    factors = _factors_for(node)
    runner = ExperimentRunner(
        model, node, figure="fluctuating", panel="OPT-30B/v100",
        contention_factors=factors,
    )
    mean_rate = runner.relative_rates((0.95,), 2)[0]
    records: List[ExperimentRecord] = []
    for label, arrival in (
        ("constant", None),
        ("bursty", BurstyProcess(mean_rate, burstiness=4.0, phase_requests=16)),
    ):
        for strategy in ("intra", "liger"):
            record, _ = runner.run_point(
                strategy, mean_rate,
                num_requests=max(sc.requests, 48), batch_size=2,
                arrival=arrival,
            )
            records.append(
                ExperimentRecord(
                    figure="fluctuating", panel=f"{label}",
                    strategy=strategy, rate=mean_rate,
                    num_requests=record.num_requests, batch_size=2,
                    avg_latency_ms=record.avg_latency_ms,
                    p99_latency_ms=record.p99_latency_ms,
                    throughput=record.throughput,
                )
            )

    def lat(panel, strategy):
        return next(
            r.avg_latency_ms
            for r in records
            if r.panel == panel and r.strategy == strategy
        )

    summary = {
        "constant_liger_lat_vs_intra": lat("constant", "liger") / lat("constant", "intra"),
        "bursty_liger_lat_vs_intra": lat("bursty", "liger") / lat("bursty", "intra"),
    }
    summary["liger_better_under_both"] = float(
        summary["bursty_liger_lat_vs_intra"] < 1.0
        and summary["constant_liger_lat_vs_intra"] < 1.0
    )
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="fluctuating", title="Bursty vs constant arrivals (extension)",
        records=records, summary=summary, text=text,
    )


# ----------------------------------------------------------------------
# Continuous batching (extension; Orca-style iteration-level scheduling)
# ----------------------------------------------------------------------
@_memoized
def continuous_batching(scale: str = "quick") -> FigureResult:
    """Static vs continuous batching for multi-token generation, each under
    Intra-Op and Liger.

    Expected shapes: continuous batching beats static batching on latency
    (no padding to the batch's longest sequence, no full-batch release),
    and Liger composes with both disciplines — interleaved parallelism
    overlaps one iteration's collectives with another's compute.
    """
    from repro.serving.generation import (
        ContinuousBatchingServer,
        StaticBatchingServer,
        generation_workload,
    )

    sc = _scale(scale)
    model = _maybe_reduce(OPT_30B, sc)
    node = v100_nvlink_node(4)
    factors = _factors_for(node)
    n = max(sc.requests * 2, 48)
    # Rate sized against a decode-iteration estimate at the mean batch.
    runner = ExperimentRunner(
        model, node, figure="continuous", contention_factors=factors,
    )
    rate = runner.saturation_rate(16, workload="generative") * 0.9

    records: List[ExperimentRecord] = []
    for server_cls, label in (
        (StaticBatchingServer, "static"),
        (ContinuousBatchingServer, "continuous"),
    ):
        for strategy in ("intra", "liger"):
            kwargs = {}
            if strategy == "liger":
                kwargs["config"] = LigerConfig(contention_factors=factors)
            strat = make_strategy(strategy, model, node, **kwargs)
            size_kw = (
                {"batch_size": 16}
                if server_cls is StaticBatchingServer
                else {"max_batch": 16, "pipeline_depth": 3}
            )
            server = server_cls(model, node, strat, check_memory=False, **size_kw)
            result = server.run(
                generation_workload(
                    n, rate, context_len=16, gen_tokens=(4, 16), seed=13
                )
            )
            stats = result.latency_stats()
            records.append(
                ExperimentRecord(
                    figure="continuous", panel=f"{label}/{strategy}",
                    strategy=strategy, rate=rate, num_requests=n, batch_size=16,
                    avg_latency_ms=stats.mean, p99_latency_ms=stats.p99,
                    throughput=result.throughput,
                    extra={"tokens": float(server.total_tokens)},
                )
            )

    def lat(panel):
        return next(r.avg_latency_ms for r in records if r.panel == panel)

    summary = {
        "continuous_vs_static_intra": lat("continuous/intra") / lat("static/intra"),
        "continuous_vs_static_liger": lat("continuous/liger") / lat("static/liger"),
        "liger_vs_intra_continuous": lat("continuous/liger") / lat("continuous/intra"),
        "static_padding_overhead_tokens": next(
            r.extra["tokens"] for r in records if r.panel == "static/intra"
        )
        / next(r.extra["tokens"] for r in records if r.panel == "continuous/intra"),
    }
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="continuous", title="Static vs continuous batching (extension)",
        records=records, summary=summary, text=text,
    )



# ----------------------------------------------------------------------
# Full chat lifecycle (extension; prefill + decode through one runtime)
# ----------------------------------------------------------------------
@_memoized
def lifecycle(scale: str = "quick") -> FigureResult:
    """Full chat requests (prompt prefill + token decode) under Intra-Op vs
    Liger.

    With both phases in flight at once, Liger overlaps one request's prefill
    GEMMs with other requests' decode all-reduces — an interleaving
    opportunity neither §4.2 nor §4.3 alone exposes.  Reported: TTFT
    (arrival → first token), full latency, and token throughput.
    """
    from repro.serving.lifecycle import LifecycleServer, chat_workload

    sc = _scale(scale)
    model = _maybe_reduce(OPT_30B, sc)
    node = a100_pcie_node(4)
    factors = _factors_for(node)
    n = max(sc.requests, 32)
    # Arrival rate sized to load the node: prefill dominates per-request
    # work, so scale from the prefill saturation estimate.
    runner = ExperimentRunner(
        model, node, figure="lifecycle", contention_factors=factors,
    )
    rate = runner.saturation_rate(4) * 0.9

    records: List[ExperimentRecord] = []
    extras: Dict[str, Dict[str, float]] = {}
    for strategy in ("intra", "liger"):
        kwargs = {}
        if strategy == "liger":
            kwargs["config"] = LigerConfig(contention_factors=factors)
        strat = make_strategy(strategy, model, node, **kwargs)
        server = LifecycleServer(
            model, node, strat, check_memory=False,
            prefill_batch=4, max_decode_batch=16, decode_pipeline_depth=3,
        )
        result = server.run(chat_workload(n, rate, seed=17))
        extras[strategy] = {
            "ttft_ms": result.ttft.mean,
            "tokens_per_s": result.tokens_per_second,
        }
        records.append(
            ExperimentRecord(
                figure="lifecycle", panel=f"chat/{strategy}", strategy=strategy,
                rate=rate, num_requests=n, batch_size=4,
                avg_latency_ms=result.latency.mean,
                p99_latency_ms=result.latency.p99,
                throughput=result.tokens_per_second,
                extra=extras[strategy],
            )
        )
    summary = {
        "liger_ttft_vs_intra": extras["liger"]["ttft_ms"] / extras["intra"]["ttft_ms"],
        "liger_lat_vs_intra": records[1].avg_latency_ms / records[0].avg_latency_ms,
        "liger_tokens_vs_intra": extras["liger"]["tokens_per_s"]
        / extras["intra"]["tokens_per_s"],
    }
    text = format_table(ExperimentRecord.ROW_HEADERS, [r.row() for r in records])
    text += "\n\n" + format_kv(sorted(summary.items()))
    return FigureResult(
        figure="lifecycle", title="Full chat lifecycle (extension)",
        records=records, summary=summary, text=text,
    )


#: Registry used by the CLI/bench harness.
ALL_FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "table1": lambda scale="quick": table1(),
    "fig3": fig3,
    "fig4": fig4,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "headline": headline,
    "ablations": ablations,
    "fluctuating": fluctuating,
    "continuous": continuous_batching,
    "lifecycle": lifecycle,
}
