"""repro — a full reproduction of Liger (PPoPP '24).

Liger: Interleaving Intra- and Inter-Operator Parallelism for Distributed
Large Model Inference.  Because this environment has no GPUs, the hardware
substrate (CUDA streams/events, NCCL collectives, SM contention) is a
deterministic discrete-event simulator; everything above it — the transformer
cost model, the intra-/inter-operator baselines, Liger's function assembly,
Algorithm-1 scheduler, hybrid synchronization, contention factors, and
runtime kernel decomposition — follows the paper.  See DESIGN.md.

Quickstart::

    from repro import serve, v100_nvlink_node, OPT_30B
    result = serve(model=OPT_30B, node=v100_nvlink_node(4),
                   strategy="liger", arrival_rate=8.0, num_requests=64)
    print(result.summary())
"""

import logging as _logging

from repro.hw import (
    A100_80GB_PCIE,
    V100_16GB,
    GpuSpec,
    NodeSpec,
    a100_pcie_node,
    v100_nvlink_node,
)

# Library convention: the ``repro.*`` logger hierarchy is silent unless the
# application installs a handler (or runs the CLI with ``--log-level``).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "V100_16GB",
    "A100_80GB_PCIE",
    "v100_nvlink_node",
    "a100_pcie_node",
    "__version__",
]


def __getattr__(name):
    """Lazy re-exports of the higher layers (keeps import cost low)."""
    if name in {"OPT_30B", "OPT_66B", "GLM_130B", "ModelSpec", "MODELS"}:
        from repro.models import specs

        return getattr(specs, name)
    if name in {"serve", "ServingResult", "Server"}:
        from repro.serving import api

        return getattr(api, name)
    if name in {
        "AdmissionPolicy",
        "OverloadConfig",
        "OverloadController",
        "OverloadReport",
        "KVCacheAccountant",
        "RequestState",
        "RunResult",
        "ServingConfig",
        "ServingSession",
        "SubmissionPipeline",
    }:
        from repro import serving

        return getattr(serving, name)
    if name in {"LigerConfig", "LigerRuntime"}:
        from repro import core

        return getattr(core, name)
    if name in {
        "FaultPlan",
        "GpuStraggler",
        "LinkDegradation",
        "LaunchFailure",
        "HostJitter",
        "FaultInjector",
        "Watchdog",
        "ResilienceConfig",
        "ResilienceReport",
        "RecoveryManager",
    }:
        from repro import faults

        return getattr(faults, name)
    if name in {"FaultError", "RetryExhaustedError"}:
        from repro import errors

        return getattr(errors, name)
    if name in {
        "Observability",
        "EventBus",
        "MetricsRegistry",
        "SpanBuilder",
        "RequestSpan",
        "merged_chrome_trace",
        "validate_merged_trace",
    }:
        from repro import obs

        return getattr(obs, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
