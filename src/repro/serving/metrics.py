"""Serving metrics: latency and throughput, as the paper defines them (§4.1).

* **Latency**: per request, "the time interval between a job's arrival to
  its completion", i.e. pending time (queueing + batching) plus execution.
* **Throughput**: "the number of requests a system can handle within a given
  time" — completed requests divided by the span from first arrival to last
  completion.

Under overload the outcome of a request is no longer binary, so the metrics
additionally account every terminal state (:class:`~repro.serving.request.
RequestState`): shed, timed out, deadline-missed-but-completed — and derive
**SLO attainment**, the fraction of deadline-carrying requests that
completed on time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, IncompleteRequestError
from repro.serving.request import Request
from repro.units import us_to_s

__all__ = ["LatencyStats", "ServingMetrics"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over request latencies (all in milliseconds).

    ``count`` is the number of latencies summarized; an empty input yields
    the all-zero summary with ``count == 0`` rather than raising, so a run
    that shed or timed out every request still reports cleanly.
    """

    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    count: int = 0

    @staticmethod
    def from_latencies_us(latencies: Sequence[float]) -> "LatencyStats":
        if not len(latencies):
            return LatencyStats(
                mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0, count=0
            )
        arr = np.asarray(latencies, dtype=float) / 1e3  # µs → ms
        return LatencyStats(
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
            count=len(arr),
        )


@dataclass
class ServingMetrics:
    """Accumulates terminal request outcomes and derives the paper's metrics.

    The recovery layer (:mod:`repro.faults.resilience`) keeps ``retries``/
    ``shed_requests`` in sync; the overload layer
    (:mod:`repro.serving.overload`) drives ``timed_out_requests``,
    ``preemptions``, and the SLO counters.  All stay 0 on a healthy run.
    """

    completed: List[Request] = field(default_factory=list)
    retries: int = 0
    #: Requests dropped without service (admission control, retry exhaustion).
    shed_requests: int = 0
    #: Requests whose deadline expired before they could complete.
    timed_out_requests: int = 0
    #: Decode batches preempted-and-requeued under KV-cache pressure.
    preemptions: int = 0
    #: Completed requests whose completion came after their deadline.
    deadline_misses: int = 0
    #: Deadline-carrying requests that reached a terminal state.
    slo_tracked: int = 0
    #: Deadline-carrying requests that completed on time.
    slo_met: int = 0

    def record(self, requests: Sequence[Request]) -> None:
        """Add completed requests to the tally (must carry completions)."""
        for r in requests:
            if r.completion is None:
                raise IncompleteRequestError(
                    f"request {r.rid} recorded without completion"
                )
            self.completed.append(r)
            if r.deadline is not None:
                self.slo_tracked += 1
                if r.completion <= r.deadline:
                    self.slo_met += 1
                else:
                    self.deadline_misses += 1

    def note_shed(self, requests: Sequence[Request]) -> None:
        """Account requests dropped without service (terminal SHED)."""
        self.shed_requests += len(requests)
        for r in requests:
            if r.deadline is not None:
                self.slo_tracked += 1

    def note_timed_out(self, requests: Sequence[Request]) -> None:
        """Account requests whose deadline expired (terminal TIMED_OUT)."""
        self.timed_out_requests += len(requests)
        for r in requests:
            if r.deadline is not None:
                self.slo_tracked += 1

    @property
    def num_completed(self) -> int:
        return len(self.completed)

    @property
    def num_terminal(self) -> int:
        """Requests that reached any terminal state."""
        return self.num_completed + self.shed_requests + self.timed_out_requests

    def slo_attainment(self) -> Optional[float]:
        """Fraction of deadline-carrying requests that completed on time.

        ``None`` when no request carried a deadline (no SLO to attain).
        Shed and timed-out deadline requests count against attainment.
        """
        if self.slo_tracked == 0:
            return None
        return self.slo_met / self.slo_tracked

    def latency_stats(self) -> LatencyStats:
        """Latency summary in milliseconds."""
        return LatencyStats.from_latencies_us([r.latency for r in self.completed])

    @property
    def avg_latency_ms(self) -> float:
        """The paper's headline 'average latency'."""
        return self.latency_stats().mean

    def throughput(self) -> float:
        """Requests per second over the serving span."""
        if not self.completed:
            return 0.0
        first_arrival = min(r.arrival for r in self.completed)
        last_completion = max(r.completion for r in self.completed)  # type: ignore[arg-type]
        span = us_to_s(last_completion - first_arrival)
        if span <= 0:
            raise ConfigError("degenerate serving span")
        return len(self.completed) / span

    def pending_time_ms(self) -> float:
        """Mean pending time (queueing + batching) of completed requests, ms.

        Exact: every request is stamped with its first hand-off to the
        strategy (:attr:`~repro.serving.request.Request.dispatched_at`), so
        pending time is ``dispatched_at - arrival`` per request — no longer
        the old "latency minus minimum latency" heuristic.
        """
        waits = [
            r.dispatched_at - r.arrival
            for r in self.completed
            if r.dispatched_at is not None
        ]
        if not waits:
            return 0.0
        return float(np.mean(waits)) / 1e3
