"""Serving metrics: latency and throughput, as the paper defines them (§4.1).

* **Latency**: per request, "the time interval between a job's arrival to
  its completion", i.e. pending time (queueing + batching) plus execution.
* **Throughput**: "the number of requests a system can handle within a given
  time" — completed requests divided by the span from first arrival to last
  completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request
from repro.units import us_to_s

__all__ = ["LatencyStats", "ServingMetrics"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over request latencies (all in milliseconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def from_latencies_us(latencies: Sequence[float]) -> "LatencyStats":
        if not len(latencies):
            raise ConfigError("no latencies to summarize")
        arr = np.asarray(latencies, dtype=float) / 1e3  # µs → ms
        return LatencyStats(
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )


@dataclass
class ServingMetrics:
    """Accumulates completed requests and derives the paper's two metrics.

    The recovery layer (:mod:`repro.faults.resilience`) additionally keeps
    the ``retries``/``shed_requests`` counters in sync: launch retries
    absorbed by backoff, and requests dropped after the retry budget ran
    out.  Both stay 0 on fault-free runs.
    """

    completed: List[Request] = field(default_factory=list)
    retries: int = 0
    shed_requests: int = 0

    def record(self, requests: Sequence[Request]) -> None:
        """Add completed requests to the tally (must carry completions)."""
        for r in requests:
            if r.completion is None:
                raise ConfigError(f"request {r.rid} recorded without completion")
            self.completed.append(r)

    @property
    def num_completed(self) -> int:
        return len(self.completed)

    def latency_stats(self) -> LatencyStats:
        """Latency summary in milliseconds."""
        return LatencyStats.from_latencies_us([r.latency for r in self.completed])

    @property
    def avg_latency_ms(self) -> float:
        """The paper's headline 'average latency'."""
        return self.latency_stats().mean

    def throughput(self) -> float:
        """Requests per second over the serving span."""
        if not self.completed:
            return 0.0
        first_arrival = min(r.arrival for r in self.completed)
        last_completion = max(r.completion for r in self.completed)  # type: ignore[arg-type]
        span = us_to_s(last_completion - first_arrival)
        if span <= 0:
            raise ConfigError("degenerate serving span")
        return len(self.completed) / span

    def pending_time_ms(self) -> float:
        """Mean pending time (arrival → batch start isn't visible here, so
        this reports latency minus the *minimum* observed latency as a rough
        queueing indicator; exact pending time lives in the trace)."""
        lats = [r.latency for r in self.completed]
        if not lats:
            return 0.0
        floor = min(lats)
        return float(np.mean([l - floor for l in lats])) / 1e3
