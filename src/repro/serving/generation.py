"""Multi-token generation serving: static vs continuous batching.

The paper's §4.3 evaluates a *single* decode iteration per request.  Real
generative serving runs many iterations per request, and the dominant
batching disciplines differ:

* **Static batching** (FasterTransformer-style): requests are grouped once;
  the whole batch runs ``max(gen_tokens)`` decode iterations and every
  member is released only when the batch finishes.  Short requests pay for
  long ones, and arrivals wait for a full batch slot.
* **Continuous batching** (Orca-style iteration-level scheduling, which the
  paper lists as orthogonal related work): the running batch is re-formed
  at every iteration boundary — finished sequences leave immediately and
  queued arrivals join immediately.

Both servers drive any :class:`~repro.parallel.base.ParallelStrategy`
(including Liger) by submitting one decode-step :class:`Batch` per
iteration, so interleaved parallelism composes with either discipline: with
several iteration batches in flight Liger overlaps one iteration's
all-reduces with another's GEMMs.

Both ride the :class:`~repro.serving.session.ServingSession` chassis, so
the cross-cutting subsystems compose here exactly as on the other servers:
pass a :class:`~repro.serving.session.ServingConfig` (or the individual
``fault_plan``/``resilience``/``overload``/``observability`` kwargs) and a
generation run gains fault injection with retry/degradation, bounded
admission with deadlines, and the event bus/metrics/span exports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.obs.events import RequestsAdmitted, RequestsShed, RequestsTimedOut
from repro.obs.observability import Observability
from repro.serving.arrival import ArrivalProcess, ConstantRate
from repro.serving.overload import AdmissionPolicy, OverloadConfig, OverloadReport
from repro.serving.request import Batch, Phase, Request, RequestState
from repro.serving.server import ServingResult
from repro.serving.session import ServingConfig, ServingSession
from repro.sim.contention import ContentionModel
from repro.sim.memory import NodeMemoryModel, activation_bytes

__all__ = [
    "GenRequest",
    "generation_workload",
    "StaticBatchingServer",
    "ContinuousBatchingServer",
]


@dataclass
class GenRequest:
    """One generation job: decode ``gen_tokens`` tokens over a KV context."""

    rid: int
    arrival: float
    context_len: int
    gen_tokens: int
    tokens_done: int = 0
    completion: Optional[float] = None
    #: Absolute deadline (µs); ``None`` means no SLO attached.
    deadline: Optional[float] = None
    state: RequestState = RequestState.PENDING

    def __post_init__(self) -> None:
        if self.gen_tokens < 1 or self.context_len < 1:
            raise ConfigError(f"request {self.rid}: invalid generation job")
        if self.deadline is not None and self.deadline < self.arrival:
            raise ConfigError(f"request {self.rid}: deadline precedes arrival")

    @property
    def finished(self) -> bool:
        return self.tokens_done >= self.gen_tokens

    @property
    def current_context(self) -> int:
        """KV length at the next iteration."""
        return self.context_len + self.tokens_done

    def deadline_passed(self, now: float) -> bool:
        """Whether the deadline (if any) has expired at simulated ``now``."""
        return self.deadline is not None and now > self.deadline

    def as_request(self) -> Request:
        """The single-iteration view used to build a decode Batch."""
        return Request(
            rid=self.rid,
            arrival=self.arrival,
            seq_len=1,
            phase=Phase.DECODE,
            context_len=self.current_context,
            deadline=self.deadline,
        )


def generation_workload(
    num_requests: int,
    rate: float,
    *,
    context_len: int = 16,
    gen_tokens: tuple = (4, 16),
    seed: int = 0,
    arrival: Optional[ArrivalProcess] = None,
    deadline_us: Optional[float] = None,
) -> List[GenRequest]:
    """Random generation jobs: uniform output lengths at a constant rate.

    ``deadline_us`` attaches a full-latency SLO to every job, relative to
    its own arrival.
    """
    if num_requests < 1:
        raise ConfigError("num_requests must be >= 1")
    lo, hi = gen_tokens
    if not 1 <= lo <= hi:
        raise ConfigError(f"invalid gen_tokens range {gen_tokens}")
    if deadline_us is not None and deadline_us <= 0:
        raise ConfigError("deadline_us must be positive")
    proc = arrival or ConstantRate(rate)
    times = proc.arrivals(num_requests)
    rng = np.random.default_rng(seed)
    lengths = rng.integers(lo, hi + 1, size=num_requests)
    return [
        GenRequest(
            rid=i, arrival=times[i], context_len=context_len,
            gen_tokens=int(lengths[i]),
            deadline=(times[i] + deadline_us) if deadline_us is not None else None,
        )
        for i in range(num_requests)
    ]


class _GenerationServerBase:
    """Shared plumbing: the serving session and terminal bookkeeping."""

    def __init__(
        self,
        model,
        node,
        strategy,
        *,
        config: Optional[ServingConfig] = None,
        contention: Optional[ContentionModel] = None,
        record_trace: bool = False,
        check_memory: bool = True,
        fault_plan=None,
        resilience=None,
        overload: Optional[OverloadConfig] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        config = ServingConfig.resolve(
            config,
            contention=contention,
            record_trace=record_trace,
            fault_plan=fault_plan,
            resilience=resilience,
            overload=overload,
            observability=observability,
        )
        # The strategy's per-batch accounting would re-reserve the KV cache
        # for every iteration; generation memory lives at sequence/group
        # granularity, so this server owns the memory model instead
        # (track_memory=False at bind time).
        self.session = ServingSession(
            model,
            node,
            strategy,
            config=config,
            check_memory=check_memory,
            track_memory=False,
            complete_callback=self._on_batch_complete,
            shed_callback=self._on_shed,
            track_first_dispatch=True,
        )
        s = self.session
        self.model = model
        self.node = node
        self.strategy = strategy
        self.engine = s.engine
        self.trace = s.trace
        self.machine = s.machine
        self.host = s.host
        self.metrics = s.metrics
        self.obs = s.obs
        self.bus = s.bus
        self.recovery = s.recovery
        self.memory = NodeMemoryModel(model, node)
        self.total_tokens = 0
        self.overload = config.overload
        self._admitted = 0
        self._peak_pending = 0

    # Subclasses map batch completions back to generation progress.
    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        raise NotImplementedError

    # Subclasses restore their scheduling state when the recovery layer
    # drops a batch (only reachable when faults/resilience are armed).
    def _on_shed(self, batch: Batch) -> None:
        raise NotImplementedError

    def _submit(self, batch: Batch) -> None:
        """Feed one iteration batch into the session's submission pipeline."""
        self.session.submit(batch)

    # ------------------------------------------------------------------
    # Terminal bookkeeping (every job ends in exactly one terminal state)
    # ------------------------------------------------------------------
    def _finish_request(self, gen: GenRequest, time: float) -> None:
        gen.completion = time
        gen.state = RequestState.COMPLETED
        proxy = Request(
            rid=gen.rid, arrival=gen.arrival, seq_len=gen.gen_tokens,
            phase=Phase.DECODE, context_len=gen.context_len,
            deadline=gen.deadline,
        )
        proxy.mark_completed(time)
        self.metrics.record([proxy])

    def _shed_gen(self, gen: GenRequest, *, where: str = "admission") -> None:
        gen.state = RequestState.SHED
        self.metrics.note_shed([gen])
        if self.bus is not None:
            self.bus.publish(
                RequestsShed.from_requests(
                    [gen], self.engine.now, batch_id=-1, where=where
                )
            )

    def _time_out_gen(self, gen: GenRequest, *, where: str = "pending") -> None:
        gen.state = RequestState.TIMED_OUT
        self.metrics.note_timed_out([gen])
        if self.bus is not None:
            self.bus.publish(
                RequestsTimedOut.from_requests(
                    [gen], self.engine.now, batch_id=-1, where=where
                )
            )

    def _note_admitted(self, gen: GenRequest) -> None:
        self._admitted += 1
        if self.bus is not None:
            self.bus.publish(
                RequestsAdmitted(
                    time_us=self.engine.now,
                    batch_id=-1,
                    rids=(gen.rid,),
                    arrivals_us=(gen.arrival,),
                )
            )

    def _overload_report(self) -> Optional[OverloadReport]:
        """Summarise this server's job-granularity admission layer."""
        if self.overload is None:
            return None
        return OverloadReport(
            policy=self.overload.policy.value,
            admitted_requests=self._admitted,
            shed_requests=self.metrics.shed_requests,
            timed_out_requests=self.metrics.timed_out_requests,
            peak_pending_requests=self._peak_pending,
        )

    def _result(self, expected: int) -> ServingResult:
        self.session.check_drained(
            expected=expected,
            completed=self.metrics.num_completed,
            shed=self.metrics.shed_requests,
            timed_out=self.metrics.timed_out_requests,
        )
        return ServingResult(
            strategy=f"{self.strategy.name}+{self.discipline}",
            model=self.model.name,
            node=self.node.name,
            num_requests=expected,
            metrics=self.metrics,
            trace=self.trace,
            wall_events=self.engine.events_processed,
            resilience=self.session.finalize_resilience(),
            overload=self._overload_report(),
            observability=self.obs,
        )

    discipline = "generation"


class StaticBatchingServer(_GenerationServerBase):
    """FasterTransformer-style static batches of generation jobs.

    Requests are grouped in arrival order into fixed-size batches; each
    batch runs ``max(gen_tokens)`` iterations (every member pays the padded
    length) and all members are released at the batch's last iteration.
    Iterations of one batch are submitted back-to-back; batches of the queue
    are submitted as they form, so the underlying strategy may still overlap
    *across* batches (Liger benefits; intra-op simply queues).

    Overload semantics are group-granular — a static group is atomic, so
    admission sheds whole groups and a retry-exhausted iteration sheds its
    entire group (the remaining members cannot finish without it).
    """

    discipline = "static"

    def __init__(self, model, node, strategy, *, batch_size: int = 32, **kw) -> None:
        super().__init__(model, node, strategy, **kw)
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._groups: Dict[int, dict] = {}
        self._pending_groups: List[List[GenRequest]] = []
        #: Every iteration batch id → the group key (its last batch id is
        #: assigned at submit; until then iterations map to the group's gid).
        self._batch_group: Dict[int, int] = {}
        self._group_by_gid: Dict[int, dict] = {}
        self.session.add_gauge(
            "repro_pending_queue_requests",
            "Generation jobs waiting in queued static groups.",
            lambda: float(sum(len(g) for g in self._pending_groups)),
        )
        self.session.add_gauge(
            "repro_inflight_batches",
            "Static groups currently executing.",
            lambda: float(len(self._groups)),
        )

    def run(self, requests: Sequence[GenRequest]) -> ServingResult:
        """Serve the generation jobs to completion; returns metrics."""
        ordered = sorted(requests, key=lambda r: r.arrival)
        for i in range(0, len(ordered), self.batch_size):
            group = list(ordered[i : i + self.batch_size])
            arrival = max(r.arrival for r in group)
            self.engine.schedule_at(
                arrival, lambda g=group: self._enqueue_group(g), priority=10
            )
        self.session.run_machine()
        return self._result(len(ordered))

    # ------------------------------------------------------------------
    # Admission (group-granular)
    # ------------------------------------------------------------------
    def _pending_jobs(self) -> int:
        return sum(len(g) for g in self._pending_groups)

    def _admit_group(self, group: List[GenRequest]) -> bool:
        """Enforce the bounded admission queue; False = group was shed."""
        cfg = self.overload
        assert cfg is not None
        while self._pending_jobs() + len(group) > cfg.max_pending_requests:
            if cfg.policy is AdmissionPolicy.SHED_OLDEST and self._pending_groups:
                for gen in self._pending_groups.pop(0):
                    self._shed_gen(gen)
                continue
            if (
                cfg.policy is AdmissionPolicy.SHED_BY_DEADLINE
                and self._pending_groups
            ):
                deadlines = [
                    min(
                        (g.deadline for g in grp if g.deadline is not None),
                        default=None,
                    )
                    for grp in self._pending_groups
                ]
                if any(d is not None for d in deadlines):
                    idx = min(
                        (i for i, d in enumerate(deadlines) if d is not None),
                        key=lambda i: deadlines[i],
                    )
                    for gen in self._pending_groups.pop(idx):
                        self._shed_gen(gen)
                    continue
            for gen in group:
                self._shed_gen(gen)
            return False
        return True

    def _expire_pending(self) -> None:
        """Time out queued jobs whose deadline passed — cheaply, pre-launch.

        Expired members leave their group (the launch batch simply shrinks);
        a fully-expired group is dropped.
        """
        now = self.engine.now
        kept: List[List[GenRequest]] = []
        for group in self._pending_groups:
            alive = []
            for gen in group:
                if gen.deadline_passed(now):
                    self._time_out_gen(gen)
                else:
                    alive.append(gen)
            if alive:
                kept.append(alive)
        self._pending_groups = kept

    def _enqueue_group(self, group: List[GenRequest]) -> None:
        if self.overload is not None:
            cfg = self.overload
            if cfg.default_deadline_us is not None:
                for gen in group:
                    if gen.deadline is None:
                        gen.deadline = gen.arrival + cfg.default_deadline_us
            if not self._admit_group(group):
                return
        for gen in group:
            self._note_admitted(gen)
        self._pending_groups.append(group)
        self._peak_pending = max(self._peak_pending, self._pending_jobs())
        self._drain_pending_groups()

    def _drain_pending_groups(self) -> None:
        """Admit queued groups while their KV/workspace fits free HBM.

        Queued generation jobs wait in host memory; a group's device
        reservation happens only when it is admitted for execution, so a
        deep backlog cannot fictitiously exhaust HBM.
        """
        from repro.errors import OutOfMemoryError

        if self.overload is not None:
            self._expire_pending()
        while self._pending_groups:
            group = self._pending_groups[0]
            try:
                self._reserve_group(group)
            except OutOfMemoryError:
                if self._groups:  # something running will free memory
                    return
                raise  # nothing can ever free: genuinely does not fit
            self._pending_groups.pop(0)
            self._submit_group(group)

    def _reserve_group(self, group: List[GenRequest]) -> None:
        tp = self.node.num_gpus
        iterations = max(r.gen_tokens for r in group)
        ctx_final = max(r.context_len for r in group) + iterations
        self.memory.reserve(
            f"group{group[0].rid}",
            self.model.kv_cache_bytes(len(group), ctx_final, tp=tp)
            + activation_bytes(self.model, len(group), 1, tp),
        )

    def _submit_group(self, group: List[GenRequest]) -> None:
        iterations = max(r.gen_tokens for r in group)
        gid = group[0].rid
        info = {"members": group, "gid": gid, "last_bid": None}
        self._group_by_gid[gid] = info
        last_bid = None
        for it in range(iterations):
            batch = Batch(
                requests=[
                    Request(
                        rid=r.rid, arrival=r.arrival, seq_len=1,
                        phase=Phase.DECODE, context_len=r.context_len + it,
                        deadline=r.deadline,
                    )
                    for r in group
                ]
            )
            last_bid = batch.batch_id
            self._batch_group[batch.batch_id] = gid
            self._submit(batch)
            self.total_tokens += len(group)
        info["last_bid"] = last_bid
        self._groups[last_bid] = info

    # ------------------------------------------------------------------
    def _on_shed(self, batch: Batch) -> None:
        """A retry-exhausted iteration sheds its whole group (atomic)."""
        gid = self._batch_group.get(batch.batch_id)
        if gid is None:
            return
        info = self._group_by_gid.pop(gid, None)
        if info is None:
            return  # group already resolved by an earlier shed
        self._groups.pop(info["last_bid"], None)
        self.memory.release(f"group{gid}")
        for gen in info["members"]:
            self._shed_gen(gen, where="retry-exhausted")
        self._drain_pending_groups()

    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        info = self._groups.pop(batch.batch_id, None)
        if info is None:
            return  # an intermediate iteration, or a shed group's straggler
        self._group_by_gid.pop(info["gid"], None)
        self.memory.release(f"group{info['gid']}")
        for gen in info["members"]:
            gen.tokens_done = gen.gen_tokens
            self._finish_request(gen, time)
        self._drain_pending_groups()


class ContinuousBatchingServer(_GenerationServerBase):
    """Orca-style iteration-level scheduling.

    The running batch is re-formed every iteration from (a) unfinished
    sequences and (b) queued arrivals, up to ``max_batch`` sequences.  A
    finished sequence's slot frees immediately.  ``pipeline_depth``
    iterations may be in flight at once (submitted before the previous
    completes) so Liger has concurrent batches to interleave; sequence
    state advances only on completion, keeping iterations of one sequence
    strictly ordered by construction (an in-flight sequence is not
    re-batched until its current iteration retires).

    Overload semantics are job-granular, like the lifecycle server's:
    admission bounds the *waiting* jobs (queued, not yet holding KV),
    deadlines expire idle jobs cheaply between iterations, and a
    retry-exhausted iteration returns its members to the queue after the
    recovery backoff instead of abandoning them.
    """

    discipline = "continuous"

    def __init__(
        self, model, node, strategy, *, max_batch: int = 32,
        pipeline_depth: int = 2, **kw,
    ) -> None:
        super().__init__(model, node, strategy, **kw)
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        self.max_batch = max_batch
        self.pipeline_depth = pipeline_depth
        self._queue: List[GenRequest] = []
        self._reserved: set = set()
        self._inflight: Dict[int, List[GenRequest]] = {}
        self._busy: set = set()  # rids currently in an in-flight iteration
        self._expected = 0
        self.iterations_run = 0
        self.session.add_gauge(
            "repro_pending_queue_requests",
            "Generation jobs waiting for their first KV reservation.",
            lambda: float(self._waiting_jobs()),
        )
        self.session.add_gauge(
            "repro_inflight_batches",
            "Iteration batches currently at the strategy.",
            lambda: float(len(self._inflight)),
        )

    def run(self, requests: Sequence[GenRequest]) -> ServingResult:
        """Serve the generation jobs to completion; returns metrics."""
        ordered = sorted(requests, key=lambda r: r.arrival)
        self._expected = len(ordered)
        for r in ordered:
            self.engine.schedule_at(
                r.arrival, lambda req=r: self._on_arrival(req), priority=10
            )
        self.session.run_machine()
        return self._result(self._expected)

    # ------------------------------------------------------------------
    # Admission (job-granular)
    # ------------------------------------------------------------------
    def _waiting_jobs(self) -> int:
        """Queued jobs not yet holding a KV reservation."""
        return sum(1 for r in self._queue if r.rid not in self._reserved)

    def _admit(self, req: GenRequest) -> bool:
        """Enforce the bounded admission queue; False = arrival was shed."""
        cfg = self.overload
        assert cfg is not None
        while self._waiting_jobs() >= cfg.max_pending_requests:
            waiting = [r for r in self._queue if r.rid not in self._reserved]
            if cfg.policy is AdmissionPolicy.SHED_OLDEST and waiting:
                victim = waiting[0]
                self._queue.remove(victim)
                self._shed_gen(victim)
                continue
            if cfg.policy is AdmissionPolicy.SHED_BY_DEADLINE:
                with_deadline = [r for r in waiting if r.deadline is not None]
                if with_deadline:
                    victim = min(with_deadline, key=lambda r: r.deadline)
                    self._queue.remove(victim)
                    self._shed_gen(victim)
                    continue
            self._shed_gen(req)
            return False
        return True

    def _expire_idle(self) -> None:
        """Time out idle jobs whose deadline passed (KV released if held)."""
        now = self.engine.now
        expired = [
            r
            for r in self._queue
            if r.rid not in self._busy and r.deadline_passed(now)
        ]
        for req in expired:
            self._queue.remove(req)
            if req.rid in self._reserved:
                self.memory.release(f"seq{req.rid}")
                self._reserved.discard(req.rid)
            self._time_out_gen(req, where="queue")

    def _on_arrival(self, req: GenRequest) -> None:
        cfg = self.overload
        if cfg is not None:
            if req.deadline is None and cfg.default_deadline_us is not None:
                req.deadline = req.arrival + cfg.default_deadline_us
            if not self._admit(req):
                return
            self._note_admitted(req)
        elif self.bus is not None:
            self._admitted += 1
            self.bus.publish(
                RequestsAdmitted(
                    time_us=self.engine.now,
                    batch_id=-1,
                    rids=(req.rid,),
                    arrivals_us=(req.arrival,),
                )
            )
        self._queue.append(req)
        self._peak_pending = max(self._peak_pending, self._waiting_jobs())
        self._maybe_launch_iteration()

    def _try_reserve_seq(self, req: GenRequest) -> bool:
        """Reserve a sequence's lifetime KV on first scheduling; False on OOM.

        Queued sequences wait in host memory; the KV reservation happens when
        the sequence first joins an iteration and lives until its last token.
        """
        from repro.errors import OutOfMemoryError

        if req.rid in self._reserved:
            return True
        tp = self.node.num_gpus
        try:
            self.memory.reserve(
                f"seq{req.rid}",
                self.model.kv_cache_bytes(1, req.context_len + req.gen_tokens, tp=tp)
                + activation_bytes(self.model, 1, 1, tp),
            )
        except OutOfMemoryError:
            if self._reserved:
                return False  # running sequences will free memory
            raise  # a single sequence that can never fit
        self._reserved.add(req.rid)
        return True

    def _maybe_launch_iteration(self) -> None:
        if self.overload is not None:
            self._expire_idle()
        while len(self._inflight) < self.pipeline_depth:
            members: List[GenRequest] = []
            for r in self._queue:
                if len(members) >= self.max_batch:
                    break
                if r.rid not in self._busy and self._try_reserve_seq(r):
                    members.append(r)
            if not members:
                return
            batch = Batch(requests=[r.as_request() for r in members])
            self._inflight[batch.batch_id] = members
            self._busy.update(r.rid for r in members)
            self.iterations_run += 1
            self.total_tokens += len(members)
            self._submit(batch)

    # ------------------------------------------------------------------
    def _on_shed(self, batch: Batch) -> None:
        """Return a retry-exhausted iteration's members to the queue.

        The members keep their KV reservations (the retry re-decodes the
        same context) but stay marked busy for one recovery backoff, so the
        launch loop cannot instantly rebuild and re-shed the same batch
        without simulated time advancing.
        """
        members = self._inflight.pop(batch.batch_id, [])
        self.total_tokens -= len(members)
        assert self.recovery is not None

        def _requeue() -> None:
            for req in members:
                self._busy.discard(req.rid)
            self._maybe_launch_iteration()

        self.engine.schedule(
            self.recovery.config.retry_backoff_us, _requeue, priority=10
        )

    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        members = self._inflight.pop(batch.batch_id)
        for gen in members:
            gen.tokens_done += 1
            self._busy.discard(gen.rid)
            if gen.finished:
                self._queue.remove(gen)
                self.memory.release(f"seq{gen.rid}")
                self._reserved.discard(gen.rid)
                self._finish_request(gen, time)
        self._maybe_launch_iteration()
