"""Multi-token generation serving: static vs continuous batching.

The paper's §4.3 evaluates a *single* decode iteration per request.  Real
generative serving runs many iterations per request, and the dominant
batching disciplines differ:

* **Static batching** (FasterTransformer-style): requests are grouped once;
  the whole batch runs ``max(gen_tokens)`` decode iterations and every
  member is released only when the batch finishes.  Short requests pay for
  long ones, and arrivals wait for a full batch slot.
* **Continuous batching** (Orca-style iteration-level scheduling, which the
  paper lists as orthogonal related work): the running batch is re-formed
  at every iteration boundary — finished sequences leave immediately and
  queued arrivals join immediately.

Both servers drive any :class:`~repro.parallel.base.ParallelStrategy`
(including Liger) by submitting one decode-step :class:`Batch` per
iteration, so interleaved parallelism composes with either discipline: with
several iteration batches in flight Liger overlaps one iteration's
all-reduces with another's GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.models.partition import check_placement
from repro.serving.arrival import ArrivalProcess, ConstantRate
from repro.serving.metrics import ServingMetrics
from repro.serving.request import Batch, Phase, Request
from repro.serving.server import ServingResult
from repro.sim.contention import ContentionModel, default_contention_for
from repro.sim.engine import Engine
from repro.sim.gpu import Machine
from repro.sim.host import Host
from repro.sim.tracing import Trace

__all__ = [
    "GenRequest",
    "generation_workload",
    "StaticBatchingServer",
    "ContinuousBatchingServer",
]


@dataclass
class GenRequest:
    """One generation job: decode ``gen_tokens`` tokens over a KV context."""

    rid: int
    arrival: float
    context_len: int
    gen_tokens: int
    tokens_done: int = 0
    completion: Optional[float] = None

    def __post_init__(self) -> None:
        if self.gen_tokens < 1 or self.context_len < 1:
            raise ConfigError(f"request {self.rid}: invalid generation job")

    @property
    def finished(self) -> bool:
        return self.tokens_done >= self.gen_tokens

    @property
    def current_context(self) -> int:
        """KV length at the next iteration."""
        return self.context_len + self.tokens_done

    def as_request(self) -> Request:
        """The single-iteration view used to build a decode Batch."""
        return Request(
            rid=self.rid,
            arrival=self.arrival,
            seq_len=1,
            phase=Phase.DECODE,
            context_len=self.current_context,
        )


def generation_workload(
    num_requests: int,
    rate: float,
    *,
    context_len: int = 16,
    gen_tokens: tuple = (4, 16),
    seed: int = 0,
    arrival: Optional[ArrivalProcess] = None,
) -> List[GenRequest]:
    """Random generation jobs: uniform output lengths at a constant rate."""
    if num_requests < 1:
        raise ConfigError("num_requests must be >= 1")
    lo, hi = gen_tokens
    if not 1 <= lo <= hi:
        raise ConfigError(f"invalid gen_tokens range {gen_tokens}")
    proc = arrival or ConstantRate(rate)
    times = proc.arrivals(num_requests)
    rng = np.random.default_rng(seed)
    lengths = rng.integers(lo, hi + 1, size=num_requests)
    return [
        GenRequest(
            rid=i, arrival=times[i], context_len=context_len,
            gen_tokens=int(lengths[i]),
        )
        for i in range(num_requests)
    ]


class _GenerationServerBase:
    """Shared plumbing: machine/host construction and result assembly."""

    def __init__(
        self,
        model,
        node,
        strategy,
        *,
        contention: Optional[ContentionModel] = None,
        record_trace: bool = False,
        check_memory: bool = True,
    ) -> None:
        if strategy.model is not model or strategy.node is not node:
            raise ConfigError("strategy was built for a different model/node")
        if check_memory:
            check_placement(model, node)
        self.model = model
        self.node = node
        self.strategy = strategy
        self.engine = Engine()
        self.trace = Trace() if record_trace else None
        self.machine = Machine(
            node, self.engine,
            contention=contention or default_contention_for(node.name),
            trace=self.trace,
        )
        self.host = Host(self.machine)
        self.metrics = ServingMetrics()
        self.total_tokens = 0
        # The strategy's per-batch accounting would re-reserve the KV cache
        # for every iteration; generation memory lives at sequence/group
        # granularity, so this server owns the memory model instead.
        strategy.track_memory = False
        from repro.sim.memory import NodeMemoryModel

        self.memory = NodeMemoryModel(model, node)
        strategy.bind(self.machine, self.host)
        strategy.on_batch_complete(self._on_batch_complete)

    # Subclasses map batch completions back to generation progress.
    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        raise NotImplementedError

    def _finish_request(self, gen: GenRequest, time: float) -> None:
        gen.completion = time
        proxy = Request(
            rid=gen.rid, arrival=gen.arrival, seq_len=gen.gen_tokens,
            phase=Phase.DECODE, context_len=gen.context_len,
        )
        proxy.mark_completed(time)
        self.metrics.record([proxy])

    def _result(self, expected: int) -> ServingResult:
        if self.metrics.num_completed != expected:
            raise ConfigError(
                f"served {self.metrics.num_completed} of {expected} requests"
            )
        return ServingResult(
            strategy=f"{self.strategy.name}+{self.discipline}",
            model=self.model.name,
            node=self.node.name,
            num_requests=expected,
            metrics=self.metrics,
            trace=self.trace,
            wall_events=self.engine.events_processed,
        )

    discipline = "generation"


class StaticBatchingServer(_GenerationServerBase):
    """FasterTransformer-style static batches of generation jobs.

    Requests are grouped in arrival order into fixed-size batches; each
    batch runs ``max(gen_tokens)`` iterations (every member pays the padded
    length) and all members are released at the batch's last iteration.
    Iterations of one batch are submitted back-to-back; batches of the queue
    are submitted as they form, so the underlying strategy may still overlap
    *across* batches (Liger benefits; intra-op simply queues).
    """

    discipline = "static"

    def __init__(self, model, node, strategy, *, batch_size: int = 32, **kw) -> None:
        super().__init__(model, node, strategy, **kw)
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._groups: Dict[int, dict] = {}
        self._pending_groups: List[List[GenRequest]] = []

    def run(self, requests: Sequence[GenRequest]) -> ServingResult:
        """Serve the generation jobs to completion; returns metrics."""
        ordered = sorted(requests, key=lambda r: r.arrival)
        for i in range(0, len(ordered), self.batch_size):
            group = list(ordered[i : i + self.batch_size])
            arrival = max(r.arrival for r in group)
            self.engine.schedule_at(
                arrival, lambda g=group: self._enqueue_group(g), priority=10
            )
        self.machine.run()
        return self._result(len(ordered))

    def _enqueue_group(self, group: List[GenRequest]) -> None:
        self._pending_groups.append(group)
        self._drain_pending_groups()

    def _drain_pending_groups(self) -> None:
        """Admit queued groups while their KV/workspace fits free HBM.

        Queued generation jobs wait in host memory; a group's device
        reservation happens only when it is admitted for execution, so a
        deep backlog cannot fictitiously exhaust HBM.
        """
        from repro.errors import OutOfMemoryError

        while self._pending_groups:
            group = self._pending_groups[0]
            try:
                self._reserve_group(group)
            except OutOfMemoryError:
                if self._groups:  # something running will free memory
                    return
                raise  # nothing can ever free: genuinely does not fit
            self._pending_groups.pop(0)
            self._submit_group(group)

    def _reserve_group(self, group: List[GenRequest]) -> None:
        from repro.sim.memory import activation_bytes

        tp = self.node.num_gpus
        iterations = max(r.gen_tokens for r in group)
        ctx_final = max(r.context_len for r in group) + iterations
        self.memory.reserve(
            f"group{group[0].rid}",
            self.model.kv_cache_bytes(len(group), ctx_final, tp=tp)
            + activation_bytes(self.model, len(group), 1, tp),
        )

    def _submit_group(self, group: List[GenRequest]) -> None:
        iterations = max(r.gen_tokens for r in group)
        gid = group[0].rid
        last_bid = None
        for it in range(iterations):
            batch = Batch(
                requests=[
                    Request(
                        rid=r.rid, arrival=r.arrival, seq_len=1,
                        phase=Phase.DECODE, context_len=r.context_len + it,
                    )
                    for r in group
                ]
            )
            last_bid = batch.batch_id
            self.strategy.submit_batch(batch)
            self.total_tokens += len(group)
        self._groups[last_bid] = {"members": group, "gid": gid}

    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        info = self._groups.pop(batch.batch_id, None)
        if info is None:
            return  # an intermediate iteration
        self.memory.release(f"group{info['gid']}")
        for gen in info["members"]:
            gen.tokens_done = gen.gen_tokens
            self._finish_request(gen, time)
        self._drain_pending_groups()


class ContinuousBatchingServer(_GenerationServerBase):
    """Orca-style iteration-level scheduling.

    The running batch is re-formed every iteration from (a) unfinished
    sequences and (b) queued arrivals, up to ``max_batch`` sequences.  A
    finished sequence's slot frees immediately.  ``pipeline_depth``
    iterations may be in flight at once (submitted before the previous
    completes) so Liger has concurrent batches to interleave; sequence
    state advances only on completion, keeping iterations of one sequence
    strictly ordered by construction (an in-flight sequence is not
    re-batched until its current iteration retires).
    """

    discipline = "continuous"

    def __init__(
        self, model, node, strategy, *, max_batch: int = 32,
        pipeline_depth: int = 2, **kw,
    ) -> None:
        super().__init__(model, node, strategy, **kw)
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        self.max_batch = max_batch
        self.pipeline_depth = pipeline_depth
        self._queue: List[GenRequest] = []
        self._reserved: set = set()
        self._inflight: Dict[int, List[GenRequest]] = {}
        self._busy: set = set()  # rids currently in an in-flight iteration
        self._expected = 0
        self.iterations_run = 0

    def run(self, requests: Sequence[GenRequest]) -> ServingResult:
        """Serve the generation jobs to completion; returns metrics."""
        ordered = sorted(requests, key=lambda r: r.arrival)
        self._expected = len(ordered)
        for r in ordered:
            self.engine.schedule_at(
                r.arrival, lambda req=r: self._on_arrival(req), priority=10
            )
        self.machine.run()
        return self._result(self._expected)

    # ------------------------------------------------------------------
    def _on_arrival(self, req: GenRequest) -> None:
        self._queue.append(req)
        self._maybe_launch_iteration()

    def _try_reserve_seq(self, req: GenRequest) -> bool:
        """Reserve a sequence's lifetime KV on first scheduling; False on OOM.

        Queued sequences wait in host memory; the KV reservation happens when
        the sequence first joins an iteration and lives until its last token.
        """
        from repro.errors import OutOfMemoryError
        from repro.sim.memory import activation_bytes

        if req.rid in self._reserved:
            return True
        tp = self.node.num_gpus
        try:
            self.memory.reserve(
                f"seq{req.rid}",
                self.model.kv_cache_bytes(1, req.context_len + req.gen_tokens, tp=tp)
                + activation_bytes(self.model, 1, 1, tp),
            )
        except OutOfMemoryError:
            if self._reserved:
                return False  # running sequences will free memory
            raise  # a single sequence that can never fit
        self._reserved.add(req.rid)
        return True

    def _maybe_launch_iteration(self) -> None:
        while len(self._inflight) < self.pipeline_depth:
            members: List[GenRequest] = []
            for r in self._queue:
                if len(members) >= self.max_batch:
                    break
                if r.rid not in self._busy and self._try_reserve_seq(r):
                    members.append(r)
            if not members:
                return
            batch = Batch(requests=[r.as_request() for r in members])
            self._inflight[batch.batch_id] = members
            self._busy.update(r.rid for r in members)
            self.iterations_run += 1
            self.total_tokens += len(members)
            self.strategy.submit_batch(batch)

    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        members = self._inflight.pop(batch.batch_id)
        for gen in members:
            gen.tokens_done += 1
            self._busy.discard(gen.rid)
            if gen.finished:
                self._queue.remove(gen)
                self.memory.release(f"seq{gen.rid}")
                self._reserved.discard(gen.rid)
                self._finish_request(gen, time)
        self._maybe_launch_iteration()
