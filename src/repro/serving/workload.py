"""Workload generators: the paper's evaluation traces.

* **General tasks** (§4.2): randomly generated traces with sequence lengths
  uniform in [16, 128], batch sizes 2/4/8, served at a swept constant rate.
* **Generative tasks** (§4.3): repeated single decode iterations with a
  context ("starting point") of 16 tokens and a batch size of 32.

Requests are grouped into fixed-size batches in arrival order; a batch forms
when its last member arrives (the batching delay lands in pending time).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.serving.arrival import ArrivalProcess, ConstantRate
from repro.serving.request import Batch, Phase, Request

__all__ = ["general_trace", "generative_trace", "pack_batches", "pack_batches_bucketed"]


def pack_batches(requests: Sequence[Request], batch_size: int) -> List[Batch]:
    """Group requests into consecutive fixed-size batches (arrival order).

    A trailing partial batch is kept — real systems don't drop stragglers.
    """
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    ordered = sorted(requests, key=lambda r: r.arrival)
    return [
        Batch(requests=list(ordered[i : i + batch_size]))
        for i in range(0, len(ordered), batch_size)
    ]


def pack_batches_bucketed(
    requests: Sequence[Request],
    batch_size: int,
    *,
    bucket_width: int = 32,
    max_wait_requests: int = 32,
) -> List[Batch]:
    """Length-bucketed batching: group near-equal sequence lengths together.

    Every kernel of a batch runs at the batch's *padded* (maximum) sequence
    length, so mixing a 16-token and a 128-token request wastes most of the
    short request's compute.  This packer holds per-bucket queues
    (``ceil(seq/bucket_width)``) and emits a batch when a bucket fills —
    flushing any bucket whose head has waited more than ``max_wait_requests``
    subsequent arrivals, so tail requests are not starved.

    An extension beyond the paper (its traces are packed strictly in arrival
    order); useful to quantify how much of the baseline gap is padding.
    """
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    if bucket_width < 1:
        raise ConfigError(f"bucket_width must be >= 1, got {bucket_width}")
    if max_wait_requests < 1:
        raise ConfigError("max_wait_requests must be >= 1")
    ordered = sorted(requests, key=lambda r: r.arrival)
    buckets: dict = {}
    age: dict = {}
    batches: List[Batch] = []

    def flush(key) -> None:
        group = buckets.pop(key)
        age.pop(key, None)
        batches.append(Batch(requests=group))

    for i, req in enumerate(ordered):
        key = (req.seq_len - 1) // bucket_width
        buckets.setdefault(key, []).append(req)
        age.setdefault(key, i)
        if len(buckets[key]) >= batch_size:
            flush(key)
        # Starvation guard: flush buckets whose oldest member is stale.
        for stale in [k for k, first in age.items() if i - first >= max_wait_requests]:
            flush(stale)
    for key in sorted(buckets):
        flush(key)
    return batches


def general_trace(
    num_requests: int,
    rate: float,
    batch_size: int,
    *,
    seq_range: tuple = (16, 128),
    seed: int = 0,
    arrival: Optional[ArrivalProcess] = None,
) -> List[Batch]:
    """The §4.2 workload: random sequence lengths at a constant rate.

    Parameters
    ----------
    num_requests:
        Total requests in the trace (the paper uses 2000; benchmarks here
        use fewer — the simulator is deterministic, so steady state needs
        far fewer samples).
    rate:
        Request arrival rate (requests/second).
    batch_size:
        Serving batch size (2, 4, or 8 in the paper).
    seq_range:
        Inclusive uniform range of request sequence lengths.
    seed:
        RNG seed for sequence lengths (arrivals are deterministic).
    arrival:
        Override the arrival process (defaults to :class:`ConstantRate`).
    """
    if num_requests < 1:
        raise ConfigError("num_requests must be >= 1")
    lo, hi = seq_range
    if not 1 <= lo <= hi:
        raise ConfigError(f"invalid seq_range {seq_range}")
    proc = arrival or ConstantRate(rate)
    times = proc.arrivals(num_requests)
    rng = np.random.default_rng(seed)
    seqs = rng.integers(lo, hi + 1, size=num_requests)
    requests = [
        Request(rid=i, arrival=times[i], seq_len=int(seqs[i]), phase=Phase.PREFILL)
        for i in range(num_requests)
    ]
    return pack_batches(requests, batch_size)


def generative_trace(
    num_requests: int,
    rate: float,
    *,
    batch_size: int = 32,
    context_len: int = 16,
    seed: int = 0,
    arrival: Optional[ArrivalProcess] = None,
) -> List[Batch]:
    """The §4.3 workload: single-token decode steps over a short context.

    Each request is one token of incremental sampling against a KV cache of
    ``context_len`` tokens (the paper's "sequence length of 16 as the
    starting point ... batch size of 32").
    """
    if num_requests < 1:
        raise ConfigError("num_requests must be >= 1")
    if context_len < 1:
        raise ConfigError("context_len must be >= 1")
    proc = arrival or ConstantRate(rate)
    times = proc.arrivals(num_requests)
    requests = [
        Request(
            rid=i,
            arrival=times[i],
            seq_len=1,
            phase=Phase.DECODE,
            context_len=context_len,
        )
        for i in range(num_requests)
    ]
    del seed  # decode traces have no random dimension today; kept for symmetry
    return pack_batches(requests, batch_size)
