"""The serving system: requests, arrivals, workloads, server, and metrics.

This subpackage plays the role of the serving architecture Liger slots into
as a runtime backend (Fig. 5): it receives requests, packs them into batches,
and hands batches to a parallel strategy at their arrival times, measuring
the paper's two metrics — per-request latency (pending + execution) and
throughput.
"""

from repro.serving.arrival import (
    ArrivalProcess,
    BurstyProcess,
    ConstantRate,
    PoissonProcess,
    TraceReplay,
)
from repro.serving.generation import (
    ContinuousBatchingServer,
    GenRequest,
    StaticBatchingServer,
    generation_workload,
)
from repro.serving.lifecycle import (
    ChatRequest,
    LifecycleResult,
    LifecycleServer,
    chat_workload,
)
from repro.serving.metrics import LatencyStats, ServingMetrics
from repro.serving.overload import (
    AdmissionPolicy,
    KVCacheAccountant,
    OverloadConfig,
    OverloadController,
    OverloadReport,
)
from repro.serving.request import Batch, Phase, Request, RequestState
from repro.serving.server import Server, ServingResult
from repro.serving.session import (
    RunResult,
    ServingConfig,
    ServingSession,
    SubmissionPipeline,
)
from repro.serving.workload import (
    general_trace,
    generative_trace,
    pack_batches,
    pack_batches_bucketed,
)

__all__ = [
    "Request",
    "Batch",
    "Phase",
    "RequestState",
    "AdmissionPolicy",
    "OverloadConfig",
    "OverloadController",
    "OverloadReport",
    "KVCacheAccountant",
    "ArrivalProcess",
    "ConstantRate",
    "PoissonProcess",
    "BurstyProcess",
    "TraceReplay",
    "general_trace",
    "generative_trace",
    "pack_batches",
    "pack_batches_bucketed",
    "ServingMetrics",
    "LatencyStats",
    "Server",
    "ServingResult",
    "RunResult",
    "ServingConfig",
    "ServingSession",
    "SubmissionPipeline",
    "GenRequest",
    "generation_workload",
    "StaticBatchingServer",
    "ContinuousBatchingServer",
    "ChatRequest",
    "chat_workload",
    "LifecycleServer",
    "LifecycleResult",
]
