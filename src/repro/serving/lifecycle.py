"""Full request lifecycle: prefill, then token-by-token decode.

The paper evaluates the two generative phases separately (general tasks
≈ prefill, §4.2; incremental sampling, §4.3).  A production chat backend
runs both for every request: the prompt is prefilled once (producing the KV
cache and the first token), then the response is decoded one token per
iteration.  This server composes the two through one parallel strategy:

* arriving prompts are grouped into **prefill batches** (up to
  ``prefill_batch`` prompts, padded to the longest);
* prefilled requests join the **decode pool**, scheduled with Orca-style
  continuous batching (finished responses leave their slot immediately);
* prefill batches and decode iterations are all just batches to the
  underlying strategy — under Liger, one request's prefill GEMMs overlap
  other requests' decode all-reduces and vice versa, which neither §4.2 nor
  §4.3 alone can show.

Metrics: per-request **TTFT** (arrival → prefill complete, the user-visible
first-token latency) and full completion latency; both are returned in the
:class:`LifecycleResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, DeadlockError, SimulationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.faults.plan import FaultPlan
    from repro.faults.resilience import (
        RecoveryManager,
        ResilienceConfig,
        ResilienceReport,
    )
from repro.models.partition import check_placement
from repro.serving.arrival import ArrivalProcess, ConstantRate
from repro.serving.metrics import LatencyStats
from repro.serving.request import Batch, Phase, Request
from repro.sim.contention import ContentionModel, default_contention_for
from repro.sim.engine import Engine
from repro.sim.gpu import Machine
from repro.sim.host import Host
from repro.sim.memory import NodeMemoryModel, activation_bytes
from repro.sim.tracing import Trace
from repro.units import us_to_s

__all__ = ["ChatRequest", "chat_workload", "LifecycleResult", "LifecycleServer"]


@dataclass
class ChatRequest:
    """One end-to-end request: a prompt plus a generated response."""

    rid: int
    arrival: float
    prompt_len: int
    gen_tokens: int
    prefill_done: Optional[float] = None
    completion: Optional[float] = None
    tokens_done: int = 0

    def __post_init__(self) -> None:
        if self.prompt_len < 1 or self.gen_tokens < 1:
            raise ConfigError(f"request {self.rid}: invalid chat job")

    @property
    def ttft(self) -> float:
        """Time to first token (µs): arrival → prefill completion."""
        if self.prefill_done is None:
            raise ConfigError(f"request {self.rid} has not prefilled")
        return self.prefill_done - self.arrival

    @property
    def latency(self) -> float:
        """Full latency (µs): arrival → last token."""
        if self.completion is None:
            raise ConfigError(f"request {self.rid} has not completed")
        return self.completion - self.arrival

    @property
    def current_context(self) -> int:
        return self.prompt_len + self.tokens_done

    @property
    def finished(self) -> bool:
        return self.tokens_done >= self.gen_tokens


def chat_workload(
    num_requests: int,
    rate: float,
    *,
    prompt_range: tuple = (16, 128),
    gen_tokens: tuple = (4, 16),
    seed: int = 0,
    arrival: Optional[ArrivalProcess] = None,
) -> List[ChatRequest]:
    """Random chat jobs: uniform prompt and response lengths."""
    if num_requests < 1:
        raise ConfigError("num_requests must be >= 1")
    p_lo, p_hi = prompt_range
    g_lo, g_hi = gen_tokens
    if not (1 <= p_lo <= p_hi and 1 <= g_lo <= g_hi):
        raise ConfigError("invalid prompt/gen ranges")
    proc = arrival or ConstantRate(rate)
    times = proc.arrivals(num_requests)
    rng = np.random.default_rng(seed)
    prompts = rng.integers(p_lo, p_hi + 1, size=num_requests)
    gens = rng.integers(g_lo, g_hi + 1, size=num_requests)
    return [
        ChatRequest(
            rid=i, arrival=times[i],
            prompt_len=int(prompts[i]), gen_tokens=int(gens[i]),
        )
        for i in range(num_requests)
    ]


@dataclass
class LifecycleResult:
    """Metrics of one lifecycle serving run."""

    strategy: str
    model: str
    node: str
    num_requests: int
    ttft: LatencyStats
    latency: LatencyStats
    tokens_generated: int
    tokens_per_second: float
    wall_events: int
    #: Chats dropped by the recovery layer after retry exhaustion.
    shed_requests: int = 0
    #: Recovery-layer summary; ``None`` unless faults/resilience were enabled.
    resilience: Optional["ResilienceReport"] = None

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.strategy:>8s} | {self.model} on {self.node}: "
            f"{self.num_requests} chats, TTFT {self.ttft.mean:.1f} ms, "
            f"full latency {self.latency.mean:.1f} ms, "
            f"{self.tokens_per_second:,.0f} tok/s"
        )


class LifecycleServer:
    """Serves full chat requests (prefill + decode) through one strategy."""

    def __init__(
        self,
        model,
        node,
        strategy,
        *,
        prefill_batch: int = 4,
        max_decode_batch: int = 32,
        decode_pipeline_depth: int = 2,
        contention: Optional[ContentionModel] = None,
        record_trace: bool = False,
        check_memory: bool = True,
        fault_plan: Optional["FaultPlan"] = None,
        resilience: Optional["ResilienceConfig"] = None,
    ) -> None:
        if strategy.model is not model or strategy.node is not node:
            raise ConfigError("strategy was built for a different model/node")
        if prefill_batch < 1 or max_decode_batch < 1 or decode_pipeline_depth < 1:
            raise ConfigError("batching parameters must be >= 1")
        if check_memory:
            check_placement(model, node)
        self.model = model
        self.node = node
        self.strategy = strategy
        self.prefill_batch = prefill_batch
        self.max_decode_batch = max_decode_batch
        self.decode_pipeline_depth = decode_pipeline_depth
        self.engine = Engine()
        self.trace = Trace() if record_trace else None
        self.machine = Machine(
            node, self.engine,
            contention=contention or default_contention_for(node.name),
            trace=self.trace,
        )
        self.host = Host(self.machine)
        # Sequence-granularity memory (KV lives from prefill to last token).
        strategy.track_memory = False
        self.memory = NodeMemoryModel(model, node)
        strategy.bind(self.machine, self.host)
        strategy.on_batch_complete(self._on_batch_complete)

        self._prefill_queue: List[ChatRequest] = []
        self._prefill_inflight: Dict[int, List[ChatRequest]] = {}
        self._decode_pool: List[ChatRequest] = []
        self._decode_inflight: Dict[int, List[ChatRequest]] = {}
        self._decode_busy: set = set()
        self._finished: List[ChatRequest] = []
        self._shed: List[ChatRequest] = []
        self.tokens_generated = 0

        self.recovery: Optional["RecoveryManager"] = None
        if fault_plan is not None or resilience is not None:
            from repro.faults.resilience import attach_recovery

            self.recovery = attach_recovery(
                model,
                node,
                strategy,
                self.machine,
                self.host,
                fault_plan=fault_plan,
                config=resilience,
                complete_callback=self._on_batch_complete,
            )
            self.recovery.on_shed = self._on_shed

    # ------------------------------------------------------------------
    def _submit(self, batch: Batch) -> None:
        """Hand one batch to the strategy (via recovery if armed)."""
        if self.recovery is not None:
            self.recovery.submit(batch)
        else:
            self.strategy.submit_batch(batch)

    def _on_shed(self, batch: Batch) -> None:
        """Clean up lifecycle state for a batch the recovery layer dropped.

        A shed *prefill* abandons its chats (their KV reservations are
        released and they count as shed requests); a shed *decode* iteration
        returns its chats to the pool — continuous batching retries them on
        the next round, by which time the fault window may have passed.
        """
        group = self._prefill_inflight.pop(batch.batch_id, None)
        if group is not None:
            for req in group:
                self.memory.release(f"chat{req.rid}")
                self._shed.append(req)
            self._maybe_submit_prefill()
            return
        members = self._decode_inflight.pop(batch.batch_id, [])
        # The members stay marked busy until one backoff period has passed:
        # freeing them at this instant would let the submit loop rebuild the
        # same batch and shed it again without simulated time advancing.
        assert self.recovery is not None

        def _requeue() -> None:
            for req in members:
                self._decode_busy.discard(req.rid)
            self._maybe_submit_decode()

        self.engine.schedule(
            self.recovery.config.retry_backoff_us, _requeue, priority=10
        )

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[ChatRequest]) -> LifecycleResult:
        """Serve the chat jobs to completion and return metrics."""
        ordered = sorted(requests, key=lambda r: r.arrival)
        if not ordered:
            raise ConfigError("no requests to serve")
        for r in ordered:
            self.engine.schedule_at(
                r.arrival, lambda req=r: self._on_arrival(req), priority=10
            )
        if self.recovery is not None:
            self.recovery.arm()
        self.machine.run()
        if len(self._finished) + len(self._shed) != len(ordered):
            # A run that returned without serving everything is a wedge, not
            # a configuration mistake: name the batches that never drained.
            open_ids = sorted(
                set(self._prefill_inflight) | set(self._decode_inflight)
            )
            raise DeadlockError(
                f"served {len(self._finished)} of {len(ordered)} requests"
                f"{f' ({len(self._shed)} shed)' if self._shed else ''} — "
                f"batches never completed: "
                f"{open_ids if open_ids else 'none open (lost)'}"
            )
        if not self._finished:
            raise SimulationError(
                f"all {len(self._shed)} request(s) were shed; nothing completed"
            )
        first = min(r.arrival for r in self._finished)
        last = max(r.completion for r in self._finished)  # type: ignore[type-var]
        return LifecycleResult(
            strategy=f"{self.strategy.name}+lifecycle",
            model=self.model.name,
            node=self.node.name,
            num_requests=len(self._finished),
            ttft=LatencyStats.from_latencies_us([r.ttft for r in self._finished]),
            latency=LatencyStats.from_latencies_us(
                [r.latency for r in self._finished]
            ),
            tokens_generated=self.tokens_generated,
            tokens_per_second=self.tokens_generated / us_to_s(last - first),
            wall_events=self.engine.events_processed,
            shed_requests=len(self._shed),
            resilience=(
                self.recovery.finalize() if self.recovery is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Prefill path
    # ------------------------------------------------------------------
    def _on_arrival(self, req: ChatRequest) -> None:
        self._prefill_queue.append(req)
        self._maybe_submit_prefill()

    def _try_reserve_chat(self, req: ChatRequest) -> bool:
        """Reserve KV for prompt + full response when prefill is admitted.

        Queued prompts wait in host memory; on OOM the request stays queued
        until an in-flight chat releases its reservation.
        """
        from repro.errors import OutOfMemoryError

        tp = self.node.num_gpus
        try:
            self.memory.reserve(
                f"chat{req.rid}",
                self.model.kv_cache_bytes(
                    1, req.prompt_len + req.gen_tokens, tp=tp
                )
                + activation_bytes(self.model, 1, 1, tp),
            )
            return True
        except OutOfMemoryError:
            if self._prefill_inflight or self._decode_pool:
                return False  # running chats will free memory
            raise  # a single chat that can never fit

    def _maybe_submit_prefill(self) -> None:
        while self._prefill_queue:
            group: List[ChatRequest] = []
            for req in list(self._prefill_queue[: self.prefill_batch]):
                if not self._try_reserve_chat(req):
                    break
                group.append(req)
            if not group:
                return  # memory-blocked: retried on chat completion
            del self._prefill_queue[: len(group)]
            batch = Batch(
                requests=[
                    Request(
                        rid=r.rid, arrival=r.arrival,
                        seq_len=r.prompt_len, phase=Phase.PREFILL,
                    )
                    for r in group
                ]
            )
            self._prefill_inflight[batch.batch_id] = group
            self._submit(batch)

    # ------------------------------------------------------------------
    # Decode path (continuous batching)
    # ------------------------------------------------------------------
    def _maybe_submit_decode(self) -> None:
        while len(self._decode_inflight) < self.decode_pipeline_depth:
            ready = [r for r in self._decode_pool if r.rid not in self._decode_busy]
            if not ready:
                return
            members = ready[: self.max_decode_batch]
            batch = Batch(
                requests=[
                    Request(
                        rid=r.rid, arrival=r.arrival, seq_len=1,
                        phase=Phase.DECODE, context_len=r.current_context,
                    )
                    for r in members
                ]
            )
            self._decode_inflight[batch.batch_id] = members
            self._decode_busy.update(r.rid for r in members)
            self._submit(batch)

    # ------------------------------------------------------------------
    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        if batch.batch_id in self._prefill_inflight:
            group = self._prefill_inflight.pop(batch.batch_id)
            for req in group:
                req.prefill_done = time
                self._decode_pool.append(req)
            self._maybe_submit_decode()
            return
        members = self._decode_inflight.pop(batch.batch_id)
        for req in members:
            req.tokens_done += 1
            self.tokens_generated += 1
            self._decode_busy.discard(req.rid)
            if req.finished:
                req.completion = time
                self._decode_pool.remove(req)
                self.memory.release(f"chat{req.rid}")
                self._finished.append(req)
        self._maybe_submit_decode()
        self._maybe_submit_prefill()  # freed memory may unblock prompts
