"""Full request lifecycle: prefill, then token-by-token decode.

The paper evaluates the two generative phases separately (general tasks
≈ prefill, §4.2; incremental sampling, §4.3).  A production chat backend
runs both for every request: the prompt is prefilled once (producing the KV
cache and the first token), then the response is decoded one token per
iteration.  This server composes the two through one parallel strategy:

* arriving prompts are grouped into **prefill batches** (up to
  ``prefill_batch`` prompts, padded to the longest);
* prefilled requests join the **decode pool**, scheduled with Orca-style
  continuous batching (finished responses leave their slot immediately);
* prefill batches and decode iterations are all just batches to the
  underlying strategy — under Liger, one request's prefill GEMMs overlap
  other requests' decode all-reduces and vice versa, which neither §4.2 nor
  §4.3 alone can show.

Metrics: per-request **TTFT** (arrival → prefill complete, the user-visible
first-token latency) and full completion latency; both are returned in the
:class:`LifecycleResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, IncompleteRequestError
from repro.obs.events import (
    BatchCompleted,
    BatchPreempted,
    RequestsAdmitted,
    RequestsShed,
    RequestsTimedOut,
)
from repro.obs.observability import Observability
from repro.serving.arrival import ArrivalProcess, ConstantRate
from repro.serving.metrics import LatencyStats
from repro.serving.overload import AdmissionPolicy, OverloadConfig, OverloadReport
from repro.serving.request import Batch, Phase, Request, RequestState
from repro.serving.session import RunResult, ServingConfig, ServingSession
from repro.sim.contention import ContentionModel
from repro.sim.memory import NodeMemoryModel, activation_bytes
from repro.units import us_to_s

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.faults.plan import FaultPlan
    from repro.faults.resilience import ResilienceConfig

__all__ = ["ChatRequest", "chat_workload", "LifecycleResult", "LifecycleServer"]


@dataclass
class ChatRequest:
    """One end-to-end request: a prompt plus a generated response."""

    rid: int
    arrival: float
    prompt_len: int
    gen_tokens: int
    prefill_done: Optional[float] = None
    completion: Optional[float] = None
    tokens_done: int = 0
    #: Absolute deadline (µs); ``None`` means no SLO attached.
    deadline: Optional[float] = None
    state: RequestState = RequestState.PENDING

    def __post_init__(self) -> None:
        if self.prompt_len < 1 or self.gen_tokens < 1:
            raise ConfigError(f"request {self.rid}: invalid chat job")
        if self.deadline is not None and self.deadline < self.arrival:
            raise ConfigError(
                f"request {self.rid}: deadline precedes arrival"
            )

    @property
    def ttft(self) -> float:
        """Time to first token (µs): arrival → prefill completion."""
        if self.prefill_done is None:
            raise IncompleteRequestError(f"request {self.rid} has not prefilled")
        return self.prefill_done - self.arrival

    @property
    def latency(self) -> float:
        """Full latency (µs): arrival → last token."""
        if self.completion is None:
            raise IncompleteRequestError(f"request {self.rid} has not completed")
        return self.completion - self.arrival

    @property
    def current_context(self) -> int:
        return self.prompt_len + self.tokens_done

    @property
    def finished(self) -> bool:
        return self.tokens_done >= self.gen_tokens

    def deadline_passed(self, now: float) -> bool:
        """Whether the deadline (if any) has expired at simulated ``now``."""
        return self.deadline is not None and now > self.deadline


def chat_workload(
    num_requests: int,
    rate: float,
    *,
    prompt_range: tuple = (16, 128),
    gen_tokens: tuple = (4, 16),
    seed: int = 0,
    arrival: Optional[ArrivalProcess] = None,
    deadline_us: Optional[float] = None,
) -> List[ChatRequest]:
    """Random chat jobs: uniform prompt and response lengths.

    ``deadline_us`` attaches a full-latency SLO to every chat, relative to
    its own arrival.
    """
    if num_requests < 1:
        raise ConfigError("num_requests must be >= 1")
    p_lo, p_hi = prompt_range
    g_lo, g_hi = gen_tokens
    if not (1 <= p_lo <= p_hi and 1 <= g_lo <= g_hi):
        raise ConfigError("invalid prompt/gen ranges")
    if deadline_us is not None and deadline_us <= 0:
        raise ConfigError("deadline_us must be positive")
    proc = arrival or ConstantRate(rate)
    times = proc.arrivals(num_requests)
    rng = np.random.default_rng(seed)
    prompts = rng.integers(p_lo, p_hi + 1, size=num_requests)
    gens = rng.integers(g_lo, g_hi + 1, size=num_requests)
    return [
        ChatRequest(
            rid=i, arrival=times[i],
            prompt_len=int(prompts[i]), gen_tokens=int(gens[i]),
            deadline=(times[i] + deadline_us) if deadline_us is not None else None,
        )
        for i in range(num_requests)
    ]


@dataclass
class LifecycleResult(RunResult):
    """Metrics of one lifecycle serving run.

    ``num_requests`` counts *completed* chats; shed and timed-out chats are
    reported separately (every chat ends in exactly one of the three).
    """

    ttft: LatencyStats = field(default=None)  # type: ignore[assignment]
    latency: LatencyStats = field(default=None)  # type: ignore[assignment]
    tokens_generated: int = 0
    tokens_per_second: float = 0.0
    #: Chats dropped by admission control or the recovery layer.
    shed_requests: int = 0
    #: Chats whose deadline expired before completion.
    timed_out_requests: int = 0
    #: Decode chats preempted-and-requeued (recompute) under KV pressure.
    preemptions: int = 0
    #: Completed chats that finished after their deadline.
    deadline_misses: int = 0
    #: Fraction of deadline-carrying chats that completed on time;
    #: ``None`` when no chat carried a deadline.
    slo_attainment: Optional[float] = None

    def summary(self) -> str:
        """One-line human summary."""
        line = (
            f"{self.strategy:>8s} | {self.model} on {self.node}: "
            f"{self.num_requests} chats, TTFT {self.ttft.mean:.1f} ms, "
            f"full latency {self.latency.mean:.1f} ms, "
            f"{self.tokens_per_second:,.0f} tok/s"
        )
        if self.slo_attainment is not None:
            line += f", SLO {self.slo_attainment:.0%}"
        return line


class LifecycleServer:
    """Serves full chat requests (prefill + decode) through one strategy."""

    def __init__(
        self,
        model,
        node,
        strategy,
        *,
        prefill_batch: int = 4,
        max_decode_batch: int = 32,
        decode_pipeline_depth: int = 2,
        config: Optional[ServingConfig] = None,
        contention: Optional[ContentionModel] = None,
        record_trace: bool = False,
        check_memory: bool = True,
        fault_plan: Optional["FaultPlan"] = None,
        resilience: Optional["ResilienceConfig"] = None,
        overload: Optional[OverloadConfig] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        if prefill_batch < 1 or max_decode_batch < 1 or decode_pipeline_depth < 1:
            raise ConfigError("batching parameters must be >= 1")
        config = ServingConfig.resolve(
            config,
            contention=contention,
            record_trace=record_trace,
            fault_plan=fault_plan,
            resilience=resilience,
            overload=overload,
            observability=observability,
        )
        self.prefill_batch = prefill_batch
        self.max_decode_batch = max_decode_batch
        self.decode_pipeline_depth = decode_pipeline_depth
        # Chat-granularity admission and KV accounting live in this server,
        # not the chassis' OverloadController (which works on pre-packed
        # batches); the chassis still owns everything else.
        self.session = ServingSession(
            model,
            node,
            strategy,
            config=config,
            check_memory=check_memory,
            # Sequence-granularity memory (KV lives from prefill → last token).
            track_memory=False,
            complete_callback=self._on_batch_complete,
            shed_callback=self._on_shed,
            track_first_dispatch=True,
        )
        s = self.session
        self.model = model
        self.node = node
        self.strategy = strategy
        self.engine = s.engine
        self.trace = s.trace
        self.machine = s.machine
        self.host = s.host
        self.obs = s.obs
        self.bus = s.bus
        self.recovery = s.recovery
        self.memory = NodeMemoryModel(model, node)

        self._prefill_queue: List[ChatRequest] = []
        self._prefill_inflight: Dict[int, List[ChatRequest]] = {}
        self._decode_pool: List[ChatRequest] = []
        self._decode_inflight: Dict[int, List[ChatRequest]] = {}
        self._decode_busy: set = set()
        self._finished: List[ChatRequest] = []
        self._shed: List[ChatRequest] = []
        self._timed_out: List[ChatRequest] = []
        self.tokens_generated = 0

        self.overload = config.overload
        self.preemptions = 0
        self._admitted = 0
        self._peak_pending = 0
        self._deadline_misses = 0
        self._slo_tracked = 0
        self._slo_met = 0

        s.add_gauge(
            "repro_pending_queue_requests",
            "Chats waiting in the prefill admission queue.",
            lambda: float(len(self._prefill_queue)),
        )
        s.add_gauge(
            "repro_decode_pool_chats",
            "Chats resident in the continuous-batching decode pool.",
            lambda: float(len(self._decode_pool)),
        )
        s.add_gauge(
            "repro_inflight_batches",
            "Prefill and decode batches currently at the strategy.",
            lambda: float(
                len(self._prefill_inflight) + len(self._decode_inflight)
            ),
        )

    # ------------------------------------------------------------------
    def _submit(self, batch: Batch) -> None:
        """Feed one batch into the session's submission pipeline."""
        self.session.submit(batch)

    def _on_shed(self, batch: Batch) -> None:
        """Clean up lifecycle state for a batch the recovery layer dropped.

        A shed *prefill* abandons its chats (their KV reservations are
        released and they count as shed requests); a shed *decode* iteration
        returns its chats to the pool — continuous batching retries them on
        the next round, by which time the fault window may have passed.
        """
        group = self._prefill_inflight.pop(batch.batch_id, None)
        if group is not None:
            for req in group:
                self.memory.release(f"chat{req.rid}")
                self._shed_chat(req, where="retry-exhausted")
            self._maybe_submit_prefill()
            return
        members = self._decode_inflight.pop(batch.batch_id, [])
        # The members stay marked busy until one backoff period has passed:
        # freeing them at this instant would let the submit loop rebuild the
        # same batch and shed it again without simulated time advancing.
        assert self.recovery is not None

        def _requeue() -> None:
            for req in members:
                self._decode_busy.discard(req.rid)
            self._maybe_submit_decode()

        self.engine.schedule(
            self.recovery.config.retry_backoff_us, _requeue, priority=10
        )

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[ChatRequest]) -> LifecycleResult:
        """Serve the chat jobs to completion and return metrics."""
        ordered = sorted(requests, key=lambda r: r.arrival)
        if not ordered:
            raise ConfigError("no requests to serve")
        for r in ordered:
            self.engine.schedule_at(
                r.arrival, lambda req=r: self._on_arrival(req), priority=10
            )
        self.session.run_machine()
        self.session.check_drained(
            expected=len(ordered),
            completed=len(self._finished),
            shed=len(self._shed),
            timed_out=len(self._timed_out),
            open_ids=sorted(
                set(self._prefill_inflight) | set(self._decode_inflight)
            ),
        )
        if self._finished:
            first = min(r.arrival for r in self._finished)
            last = max(r.completion for r in self._finished)  # type: ignore[type-var]
            span_s = us_to_s(last - first)
            tok_per_s = self.tokens_generated / span_s if span_s > 0 else 0.0
        else:
            # Every chat was shed or timed out.  That is a legitimate outcome
            # under admission control (e.g. an impossible deadline), not a
            # simulation failure: return a zero-completion result with the
            # terminals counted and empty-safe latency stats.
            tok_per_s = 0.0
        return LifecycleResult(
            strategy=f"{self.strategy.name}+lifecycle",
            model=self.model.name,
            node=self.node.name,
            num_requests=len(self._finished),
            ttft=LatencyStats.from_latencies_us([r.ttft for r in self._finished]),
            latency=LatencyStats.from_latencies_us(
                [r.latency for r in self._finished]
            ),
            tokens_generated=self.tokens_generated,
            tokens_per_second=tok_per_s,
            wall_events=self.engine.events_processed,
            shed_requests=len(self._shed),
            timed_out_requests=len(self._timed_out),
            preemptions=self.preemptions,
            deadline_misses=self._deadline_misses,
            slo_attainment=(
                self._slo_met / self._slo_tracked if self._slo_tracked else None
            ),
            resilience=self.session.finalize_resilience(),
            overload=self._overload_report(),
            observability=self.obs,
        )

    def _overload_report(self) -> Optional[OverloadReport]:
        """Summarise this server's chat-granularity admission layer.

        The lifecycle server admits at request (not batch) granularity, so
        it fills the shared :class:`~repro.serving.overload.OverloadReport`
        from its own counters instead of an ``OverloadController``.
        """
        if self.overload is None:
            return None
        return OverloadReport(
            policy=self.overload.policy.value,
            admitted_requests=self._admitted,
            shed_requests=len(self._shed),
            timed_out_requests=len(self._timed_out),
            preempted_batches=self.preemptions,
            peak_pending_requests=self._peak_pending,
        )

    # ------------------------------------------------------------------
    # Terminal bookkeeping (every chat ends in exactly one terminal state)
    # ------------------------------------------------------------------
    def _note_slo_terminal(self, req: ChatRequest) -> None:
        if req.deadline is not None:
            self._slo_tracked += 1

    def _shed_chat(self, req: ChatRequest, *, where: str = "admission") -> None:
        req.state = RequestState.SHED
        self._shed.append(req)
        self._note_slo_terminal(req)
        if self.bus is not None:
            self.bus.publish(
                RequestsShed.from_requests(
                    [req], self.engine.now, batch_id=-1, where=where
                )
            )

    def _time_out_chat(self, req: ChatRequest, *, where: str = "pending") -> None:
        req.state = RequestState.TIMED_OUT
        self._timed_out.append(req)
        self._note_slo_terminal(req)
        if self.bus is not None:
            self.bus.publish(
                RequestsTimedOut.from_requests(
                    [req], self.engine.now, batch_id=-1, where=where
                )
            )

    # ------------------------------------------------------------------
    # Prefill path
    # ------------------------------------------------------------------
    def _on_arrival(self, req: ChatRequest) -> None:
        cfg = self.overload
        if cfg is not None:
            if req.deadline is None and cfg.default_deadline_us is not None:
                req.deadline = req.arrival + cfg.default_deadline_us
            if not self._admit(req):
                return
            self._admitted += 1
        if self.bus is not None:
            self.bus.publish(
                RequestsAdmitted(
                    time_us=self.engine.now,
                    batch_id=-1,
                    rids=(req.rid,),
                    arrivals_us=(req.arrival,),
                )
            )
        self._prefill_queue.append(req)
        self._peak_pending = max(self._peak_pending, len(self._prefill_queue))
        self._maybe_submit_prefill()

    def _admit(self, req: ChatRequest) -> bool:
        """Enforce the bounded admission queue; False = arrival was shed."""
        cfg = self.overload
        assert cfg is not None
        while len(self._prefill_queue) >= cfg.max_pending_requests:
            if (
                cfg.policy is AdmissionPolicy.SHED_OLDEST
                and self._prefill_queue
            ):
                self._shed_chat(self._prefill_queue.pop(0))
                continue
            if cfg.policy is AdmissionPolicy.SHED_BY_DEADLINE:
                with_deadline = [
                    c for c in self._prefill_queue if c.deadline is not None
                ]
                if with_deadline:
                    victim = min(with_deadline, key=lambda c: c.deadline)
                    self._prefill_queue.remove(victim)
                    self._shed_chat(victim)
                    continue
            self._shed_chat(req)
            return False
        return True

    def _expire_queued(self) -> None:
        """Shed queued chats whose deadline passed — cheaply, pre-launch."""
        now = self.engine.now
        expired = [r for r in self._prefill_queue if r.deadline_passed(now)]
        for req in expired:
            self._prefill_queue.remove(req)
            self._time_out_chat(req)

    def _chat_reserve_bytes(self, req: ChatRequest) -> float:
        """Per-device footprint of one resident chat: full KV + workspace."""
        tp = self.node.num_gpus
        return self.model.kv_cache_bytes(
            1, req.prompt_len + req.gen_tokens, tp=tp
        ) + activation_bytes(self.model, 1, 1, tp)

    def _try_reserve_chat(self, req: ChatRequest) -> bool:
        """Reserve KV for prompt + full response when prefill is admitted.

        Queued prompts wait in host memory; on OOM the request stays queued
        until an in-flight chat releases its reservation.
        """
        from repro.errors import OutOfMemoryError

        try:
            self.memory.reserve(f"chat{req.rid}", self._chat_reserve_bytes(req))
            return True
        except OutOfMemoryError:
            if self._prefill_inflight or self._decode_pool:
                return False  # running chats will free memory
            raise  # a single chat that can never fit

    def _reserve_with_preemption(self, req: ChatRequest) -> bool:
        """Reserve KV for ``req``, evicting young decode chats if allowed.

        Preemption is recompute-style (vLLM's fallback): the youngest idle
        decode chat that arrived after ``req`` releases its KV reservation
        and re-queues for a fresh prefill of its full accumulated context.
        Older work is therefore never starved by late-arriving KV holders.
        Eviction is attempted only when the eligible victims together free
        enough memory — a futile preemption would throw away decode progress
        without unblocking anything.
        """
        if self._try_reserve_chat(req):
            return True
        if self.overload is None or not self.overload.enable_preemption:
            return False
        candidates = [
            c
            for c in self._decode_pool
            if c.rid not in self._decode_busy and c.arrival > req.arrival
        ]
        releasable = sum(self._chat_reserve_bytes(c) for c in candidates)
        needed = self._chat_reserve_bytes(req)
        if self.memory.min_available() + releasable < needed:
            return False  # evicting everyone eligible still would not fit
        for victim in sorted(candidates, key=lambda c: -c.arrival):
            self._decode_pool.remove(victim)
            self.memory.release(f"chat{victim.rid}")
            self._prefill_queue.append(victim)
            self.preemptions += 1
            if self.bus is not None:
                self.bus.publish(
                    BatchPreempted(
                        time_us=self.engine.now, batch_id=-1, size=1
                    )
                )
            if self._try_reserve_chat(req):
                return True
        return False  # unreachable given the precheck; kept defensive

    def _queue_order(self) -> List[ChatRequest]:
        """Prefill admission order: FIFO, or EDF under shed-by-deadline.

        With the deadline-aware policy the queue serves earliest-deadline
        first, so an urgent late arrival can pass an older, looser chat —
        which is also what makes recompute preemption reachable: the passed
        chat may later find younger chats holding its KV budget.
        """
        if (
            self.overload is not None
            and self.overload.policy is AdmissionPolicy.SHED_BY_DEADLINE
        ):
            return sorted(
                self._prefill_queue,
                key=lambda c: (
                    c.deadline if c.deadline is not None else math.inf,
                    c.arrival,
                ),
            )
        return self._prefill_queue

    def _maybe_submit_prefill(self) -> None:
        if self.overload is not None:
            self._expire_queued()
        while self._prefill_queue:
            group: List[ChatRequest] = []
            for req in list(self._queue_order()[: self.prefill_batch]):
                if not self._reserve_with_preemption(req):
                    break
                group.append(req)
            if not group:
                return  # memory-blocked: retried on chat completion
            for req in group:
                self._prefill_queue.remove(req)
            batch = Batch(
                requests=[
                    Request(
                        rid=r.rid, arrival=r.arrival,
                        # A preempted chat re-prefills its full accumulated
                        # context; a fresh chat's context is its prompt.
                        seq_len=r.current_context, phase=Phase.PREFILL,
                    )
                    for r in group
                ]
            )
            self._prefill_inflight[batch.batch_id] = group
            self._submit(batch)

    # ------------------------------------------------------------------
    # Decode path (continuous batching)
    # ------------------------------------------------------------------
    def _expire_decode_pool(self) -> None:
        """Time out idle decode chats whose deadline passed (KV released)."""
        now = self.engine.now
        expired = [
            r
            for r in self._decode_pool
            if r.rid not in self._decode_busy and r.deadline_passed(now)
        ]
        for req in expired:
            self._decode_pool.remove(req)
            self.memory.release(f"chat{req.rid}")
            self._time_out_chat(req, where="decode-pool")

    def _maybe_submit_decode(self) -> None:
        if self.overload is not None:
            self._expire_decode_pool()
        while len(self._decode_inflight) < self.decode_pipeline_depth:
            ready = [r for r in self._decode_pool if r.rid not in self._decode_busy]
            if not ready:
                return
            members = ready[: self.max_decode_batch]
            batch = Batch(
                requests=[
                    Request(
                        rid=r.rid, arrival=r.arrival, seq_len=1,
                        phase=Phase.DECODE, context_len=r.current_context,
                    )
                    for r in members
                ]
            )
            self._decode_inflight[batch.batch_id] = members
            self._decode_busy.update(r.rid for r in members)
            self._submit(batch)

    # ------------------------------------------------------------------
    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        if batch.batch_id in self._prefill_inflight:
            group = self._prefill_inflight.pop(batch.batch_id)
            if self.bus is not None:
                # Intermediate completion: the batch retired but no chat is
                # terminal yet (completed_rids stays empty).
                self.bus.publish(
                    BatchCompleted(
                        time_us=time,
                        batch_id=batch.batch_id,
                        rids=tuple(r.rid for r in group),
                    )
                )
            for req in group:
                if req.prefill_done is None:  # a re-prefill keeps its TTFT
                    req.prefill_done = time
                if self.overload is not None and req.deadline_passed(time):
                    # Expired while prefilling: record the miss, free the KV.
                    self.memory.release(f"chat{req.rid}")
                    self._time_out_chat(req, where="prefill")
                    continue
                self._decode_pool.append(req)
            self._maybe_submit_decode()
            return
        members = self._decode_inflight.pop(batch.batch_id)
        if self.bus is not None:
            finished = [r for r in members if r.tokens_done + 1 >= r.gen_tokens]
            tracked = [r for r in finished if r.deadline is not None]
            met = sum(1 for r in tracked if time <= r.deadline)
            self.bus.publish(
                BatchCompleted(
                    time_us=time,
                    batch_id=batch.batch_id,
                    rids=tuple(r.rid for r in members),
                    completed_rids=tuple(r.rid for r in finished),
                    latencies_us=tuple(time - r.arrival for r in finished),
                    slo_tracked=len(tracked),
                    slo_met=met,
                    deadline_misses=len(tracked) - met,
                )
            )
        for req in members:
            req.tokens_done += 1
            self.tokens_generated += 1
            self._decode_busy.discard(req.rid)
            if req.finished:
                req.completion = time
                req.state = RequestState.COMPLETED
                self._decode_pool.remove(req)
                self.memory.release(f"chat{req.rid}")
                self._finished.append(req)
                if req.deadline is not None:
                    # Mid-execution expiry still completes; it is recorded
                    # as a deadline miss rather than wasted work.
                    self._slo_tracked += 1
                    if req.completion <= req.deadline:
                        self._slo_met += 1
                    else:
                        self._deadline_misses += 1
        if self.overload is not None:
            # Under admission control, blocked head-of-line prompts get
            # first claim on just-freed memory — the decode pool is briefly
            # idle here, which is the only moment recompute preemption can
            # see it.  Without overload the original order is kept so the
            # timeline is bit-identical to builds without this subsystem.
            self._maybe_submit_prefill()
            self._maybe_submit_decode()
        else:
            self._maybe_submit_decode()
            self._maybe_submit_prefill()  # freed memory may unblock prompts
