"""Arrival processes: when requests hit the serving system.

The paper sweeps a *constant* request rate ("we use a constant request rate
instead of a fluctuated request rate", §4.2); :class:`ConstantRate` is the
default everywhere.  :class:`PoissonProcess` and :class:`TraceReplay` are
provided for the open-world experiments a downstream user will want (and for
the fluctuating-rate extension the paper leaves implicit).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.units import seconds

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "PoissonProcess",
    "BurstyProcess",
    "TraceReplay",
]


class ArrivalProcess:
    """Interface: produce ``n`` arrival timestamps (µs, sorted)."""

    def arrivals(self, n: int) -> List[float]:
        """Return the first ``n`` arrival times (µs, ascending)."""
        raise NotImplementedError


class ConstantRate(ArrivalProcess):
    """Deterministic arrivals at ``rate`` requests/second.

    The first request arrives at one inter-arrival interval, matching a
    system observed from steady state.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        self.rate = rate

    def arrivals(self, n: int) -> List[float]:
        """Evenly spaced arrivals at the configured rate."""
        if n < 0:
            raise ConfigError("n must be >= 0")
        gap = seconds(1.0) / self.rate
        return [gap * (i + 1) for i in range(n)]


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at mean ``rate`` requests/second (seeded)."""

    def __init__(self, rate: float, *, seed: int = 0) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.seed = seed

    def arrivals(self, n: int) -> List[float]:
        """Exponential inter-arrival gaps from the seeded RNG."""
        if n < 0:
            raise ConfigError("n must be >= 0")
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(scale=seconds(1.0) / self.rate, size=n)
        return list(np.cumsum(gaps))


class BurstyProcess(ArrivalProcess):
    """Alternating high/low-rate phases — the fluctuating workload the paper
    mentions but does not evaluate (§4.2: "we use a constant request rate
    instead of a fluctuated request rate").

    Real serving traffic bursts.  Interleaved parallelism's advantage window
    widens under bursts: during a burst Liger absorbs the backlog at
    intra-op latency by overlapping the queued batches, while intra-op's
    queue drains only at its lower saturation throughput.

    Parameters
    ----------
    mean_rate:
        Long-run average rate (requests/second).
    burstiness:
        Ratio of burst rate to lull rate (> 1).  Phases hold equal request
        *counts*, so the long-run mean is the harmonic mean of the two
        rates: burst = ``mean·(b+1)/2`` and lull = ``mean·(b+1)/(2b)``.
    phase_requests:
        Number of requests per phase before switching.
    jitter_frac:
        Optional multiplicative jitter on each inter-arrival gap: each gap
        is scaled by a uniform factor in ``[1-j, 1+j]`` drawn from the
        seeded RNG.  ``0.0`` (the default) keeps the process fully
        deterministic and bit-identical to builds without jitter support.
    seed:
        RNG seed for the jitter draws; unused when ``jitter_frac`` is 0.
    """

    def __init__(
        self,
        mean_rate: float,
        *,
        burstiness: float = 4.0,
        phase_requests: int = 8,
        jitter_frac: float = 0.0,
        seed: int = 0,
    ) -> None:
        if mean_rate <= 0:
            raise ConfigError(f"mean_rate must be positive, got {mean_rate}")
        if burstiness <= 1.0:
            raise ConfigError("burstiness must be > 1")
        if phase_requests < 1:
            raise ConfigError("phase_requests must be >= 1")
        if not 0.0 <= jitter_frac < 1.0:
            raise ConfigError("jitter_frac must be in [0, 1)")
        self.mean_rate = mean_rate
        self.burst_rate = mean_rate * (burstiness + 1.0) / 2.0
        self.lull_rate = mean_rate * (burstiness + 1.0) / (2.0 * burstiness)
        self.phase_requests = phase_requests
        self.jitter_frac = jitter_frac
        self.seed = seed

    def arrivals(self, n: int) -> List[float]:
        """Alternating burst/lull phases of ``phase_requests`` each."""
        if n < 0:
            raise ConfigError("n must be >= 0")
        rng = (
            np.random.default_rng(self.seed) if self.jitter_frac > 0.0 else None
        )
        out: List[float] = []
        t = 0.0
        in_burst = True
        since_switch = 0
        for _ in range(n):
            rate = self.burst_rate if in_burst else self.lull_rate
            gap = seconds(1.0) / rate
            if rng is not None:
                lo, hi = 1.0 - self.jitter_frac, 1.0 + self.jitter_frac
                gap *= rng.uniform(lo, hi)
            t += gap
            out.append(t)
            since_switch += 1
            if since_switch >= self.phase_requests:
                in_burst = not in_burst
                since_switch = 0
        return out


class TraceReplay(ArrivalProcess):
    """Replay explicit timestamps (µs); must be non-negative and sorted."""

    def __init__(self, timestamps: Sequence[float]) -> None:
        ts = list(timestamps)
        if any(t < 0 for t in ts):
            raise ConfigError("trace timestamps must be non-negative")
        if ts != sorted(ts):
            raise ConfigError("trace timestamps must be sorted")
        self.timestamps = ts

    def arrivals(self, n: int) -> List[float]:
        """The first ``n`` timestamps of the recorded trace."""
        if n > len(self.timestamps):
            raise ConfigError(
                f"trace has {len(self.timestamps)} arrivals, {n} requested"
            )
        return self.timestamps[:n]
