"""Requests and batches — the serving system's unit of work.

The paper's serving front-end "receives requests and packs them as a batch"
before handing the batch to the runtime (Fig. 5).  A :class:`Request` is one
user job; a :class:`Batch` is the runtime's scheduling unit.  Latency is
measured per *request*, from its own arrival (not the batch's) to batch
completion, so batching delay is charged as pending time exactly as the
paper defines latency ("the pending time and the cuda execution time").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError

__all__ = ["Phase", "Request", "Batch"]

_batch_ids = itertools.count()


class Phase(enum.Enum):
    """Which execution phase of a generative model a batch exercises (§4.3)."""

    PREFILL = "prefill"    # initial conditioning: full-sequence forward
    DECODE = "decode"      # incremental sampling: one token per request


@dataclass
class Request:
    """One inference job."""

    rid: int
    arrival: float           # µs
    seq_len: int
    phase: Phase = Phase.PREFILL
    context_len: int = 0     # KV context for DECODE requests
    completion: Optional[float] = None
    #: Stamped by the Batch that adopts this request (−1 until batched);
    #: lets post-run analysis join request metrics with trace rows.
    batch_id: int = -1

    def __post_init__(self) -> None:
        if self.seq_len < 1:
            raise ConfigError(f"request {self.rid}: seq_len must be >= 1")
        if self.arrival < 0:
            raise ConfigError(f"request {self.rid}: negative arrival time")

    @property
    def latency(self) -> float:
        """Arrival→completion (µs); raises if not yet complete."""
        if self.completion is None:
            raise ConfigError(f"request {self.rid} has not completed")
        return self.completion - self.arrival


@dataclass
class Batch:
    """A group of requests processed together by the runtime.

    ``seq_len`` is the padded sequence length (max over members), which is
    what every kernel in the batch actually runs at.
    """

    requests: List[Request]
    batch_id: int = field(default_factory=lambda: next(_batch_ids))

    def __post_init__(self) -> None:
        if not self.requests:
            raise ConfigError("a batch needs at least one request")
        phases = {r.phase for r in self.requests}
        if len(phases) != 1:
            raise ConfigError("a batch cannot mix prefill and decode requests")
        for r in self.requests:
            r.batch_id = self.batch_id

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def phase(self) -> Phase:
        return self.requests[0].phase

    @property
    def seq_len(self) -> int:
        """Padded sequence length."""
        return max(r.seq_len for r in self.requests)

    @property
    def context_len(self) -> int:
        """Padded KV context (DECODE batches)."""
        return max(r.context_len for r in self.requests)

    @property
    def arrival(self) -> float:
        """The batch is formed when its last member arrives."""
        return max(r.arrival for r in self.requests)

    def complete(self, time: float) -> None:
        """Stamp every member request complete at ``time``."""
        for r in self.requests:
            r.completion = time
