"""Requests and batches — the serving system's unit of work.

The paper's serving front-end "receives requests and packs them as a batch"
before handing the batch to the runtime (Fig. 5).  A :class:`Request` is one
user job; a :class:`Batch` is the runtime's scheduling unit.  Latency is
measured per *request*, from its own arrival (not the batch's) to batch
completion, so batching delay is charged as pending time exactly as the
paper defines latency ("the pending time and the cuda execution time").

Under overload (:mod:`repro.serving.overload`) not every request completes:
a request carries an explicit :class:`RequestState` and every request ends
in exactly one terminal state — ``COMPLETED``, ``SHED`` (dropped by
admission control or the recovery layer), or ``TIMED_OUT`` (its deadline
passed before it could finish).  Nothing is ever silently dropped.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError, IncompleteRequestError

__all__ = ["Phase", "RequestState", "Request", "Batch"]

_batch_ids = itertools.count()


class Phase(enum.Enum):
    """Which execution phase of a generative model a batch exercises (§4.3)."""

    PREFILL = "prefill"    # initial conditioning: full-sequence forward
    DECODE = "decode"      # incremental sampling: one token per request


class RequestState(enum.Enum):
    """Lifecycle state of a request; the last three are terminal."""

    PENDING = "pending"        # arrived, not yet finished either way
    COMPLETED = "completed"    # served to completion (has a latency)
    SHED = "shed"              # dropped: admission control or recovery layer
    TIMED_OUT = "timed_out"    # its deadline expired before completion

    @property
    def terminal(self) -> bool:
        return self is not RequestState.PENDING


@dataclass
class Request:
    """One inference job."""

    rid: int
    arrival: float           # µs
    seq_len: int
    phase: Phase = Phase.PREFILL
    context_len: int = 0     # KV context for DECODE requests
    completion: Optional[float] = None
    #: Absolute deadline (µs); ``None`` means no SLO attached.  A request
    #: whose deadline passes while pending is shed cheaply; one that expires
    #: mid-execution still completes but counts as a deadline miss.
    deadline: Optional[float] = None
    state: RequestState = RequestState.PENDING
    #: Stamped by the Batch that adopts this request (−1 until batched);
    #: lets post-run analysis join request metrics with trace rows.
    batch_id: int = -1
    #: Simulated time (µs) of the request's *first* hand-off to a strategy;
    #: ``None`` while still queued (or if it never dispatched).  Pending
    #: time is exactly ``dispatched_at - arrival``.
    dispatched_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seq_len < 1:
            raise ConfigError(f"request {self.rid}: seq_len must be >= 1")
        if self.arrival < 0:
            raise ConfigError(f"request {self.rid}: negative arrival time")
        if self.deadline is not None and self.deadline < self.arrival:
            raise ConfigError(
                f"request {self.rid}: deadline {self.deadline} precedes "
                f"arrival {self.arrival}"
            )

    @property
    def latency(self) -> float:
        """Arrival→completion (µs); raises if not completed."""
        if self.state is not RequestState.COMPLETED or self.completion is None:
            raise IncompleteRequestError(
                f"request {self.rid} has no latency (state: {self.state.value})"
            )
        return self.completion - self.arrival

    # ------------------------------------------------------------------
    # Terminal transitions — each request takes exactly one.
    # ------------------------------------------------------------------
    def _require_pending(self, action: str) -> None:
        if self.state.terminal:
            raise ConfigError(
                f"request {self.rid} already terminal "
                f"({self.state.value}); cannot {action}"
            )

    def mark_completed(self, time: float) -> None:
        """Terminal: the request was served; ``time`` is its completion."""
        self._require_pending("complete")
        self.completion = time
        self.state = RequestState.COMPLETED

    def mark_shed(self) -> None:
        """Terminal: dropped by admission control or the recovery layer."""
        self._require_pending("shed")
        self.state = RequestState.SHED

    def mark_timed_out(self) -> None:
        """Terminal: the deadline expired before the request could finish."""
        self._require_pending("time out")
        self.state = RequestState.TIMED_OUT

    def deadline_passed(self, now: float) -> bool:
        """Whether the deadline (if any) has expired at simulated ``now``."""
        return self.deadline is not None and now > self.deadline


@dataclass
class Batch:
    """A group of requests processed together by the runtime.

    ``seq_len`` is the padded sequence length (max over members), which is
    what every kernel in the batch actually runs at.
    """

    requests: List[Request]
    batch_id: int = field(default_factory=lambda: next(_batch_ids))

    def __post_init__(self) -> None:
        if not self.requests:
            raise ConfigError("a batch needs at least one request")
        phases = {r.phase for r in self.requests}
        if len(phases) != 1:
            raise ConfigError("a batch cannot mix prefill and decode requests")
        for r in self.requests:
            r.batch_id = self.batch_id

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def phase(self) -> Phase:
        return self.requests[0].phase

    @property
    def seq_len(self) -> int:
        """Padded sequence length."""
        return max(r.seq_len for r in self.requests)

    @property
    def context_len(self) -> int:
        """Padded KV context (DECODE batches)."""
        return max(r.context_len for r in self.requests)

    @property
    def arrival(self) -> float:
        """The batch is formed when its last member arrives."""
        return max(r.arrival for r in self.requests)

    @property
    def deadline(self) -> Optional[float]:
        """Tightest member deadline, or ``None`` if no member carries one."""
        deadlines = [r.deadline for r in self.requests if r.deadline is not None]
        return min(deadlines) if deadlines else None

    def mark_dispatched(self, time: float) -> None:
        """Stamp each member's first strategy hand-off (idempotent, so a
        retry or preemption re-dispatch never moves the original stamp)."""
        for r in self.requests:
            if r.dispatched_at is None:
                r.dispatched_at = time

    def complete(self, time: float) -> None:
        """Stamp every member request complete at ``time``."""
        for r in self.requests:
            r.mark_completed(time)

    def shed(self) -> None:
        """Stamp every member request with the terminal SHED state."""
        for r in self.requests:
            r.mark_shed()

    def time_out(self) -> None:
        """Stamp every member request with the terminal TIMED_OUT state."""
        for r in self.requests:
            r.mark_timed_out()
