"""The serving loop: arrivals → strategy → metrics.

The :class:`Server` owns the simulation clock.  It schedules one engine
callback per batch at that batch's arrival time (the moment the serving
front-end hands the packed batch to the runtime, Fig. 5), lets the bound
strategy turn it into kernels, and records request completions as batches
drain.  The result bundles the paper's two metrics plus the execution trace
for overlap analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import ConfigError, DeadlockError
from repro.hw.devices import NodeSpec
from repro.models.partition import check_placement
from repro.models.specs import ModelSpec
from repro.serving.metrics import LatencyStats, ServingMetrics

if TYPE_CHECKING:  # avoid a circular import; the server only type-hints it
    from repro.faults.plan import FaultPlan
    from repro.faults.resilience import (
        RecoveryManager,
        ResilienceConfig,
        ResilienceReport,
    )
    from repro.parallel.base import ParallelStrategy
from repro.obs.events import BatchCompleted, BatchDispatched, RequestsAdmitted
from repro.obs.observability import Observability
from repro.serving.overload import OverloadConfig, OverloadController, OverloadReport
from repro.serving.request import Batch
from repro.sim.contention import ContentionModel, default_contention_for
from repro.sim.engine import Engine
from repro.sim.gpu import Machine
from repro.sim.host import Host
from repro.sim.tracing import Trace

__all__ = ["Server", "ServingResult"]


@dataclass
class ServingResult:
    """Outcome of one serving run."""

    strategy: str
    model: str
    node: str
    num_requests: int
    metrics: ServingMetrics
    trace: Optional[Trace] = None
    wall_events: int = 0
    #: Recovery-layer summary; ``None`` unless faults/resilience were enabled.
    resilience: Optional["ResilienceReport"] = None
    #: Overload-layer summary; ``None`` unless admission control was enabled.
    overload: Optional[OverloadReport] = None
    #: The observability object the run was served with (bus + registry +
    #: spans); ``None`` unless one was passed in.
    observability: Optional[Observability] = None

    @property
    def avg_latency_ms(self) -> float:
        return self.metrics.avg_latency_ms

    @property
    def throughput(self) -> float:
        return self.metrics.throughput()

    def latency_stats(self) -> LatencyStats:
        """Latency percentile summary (milliseconds)."""
        return self.metrics.latency_stats()

    def summary(self) -> str:
        """One-line human summary."""
        stats = self.latency_stats()
        return (
            f"{self.strategy:>8s} | {self.model} on {self.node}: "
            f"{self.num_requests} reqs, avg latency {stats.mean:.1f} ms "
            f"(p99 {stats.p99:.1f} ms), throughput {self.throughput:.2f} req/s"
        )


class Server:
    """Drives one strategy over one workload on a simulated node."""

    def __init__(
        self,
        model: ModelSpec,
        node: NodeSpec,
        strategy: ParallelStrategy,
        *,
        contention: Optional[ContentionModel] = None,
        record_trace: bool = True,
        check_memory: bool = True,
        fault_plan: Optional["FaultPlan"] = None,
        resilience: Optional["ResilienceConfig"] = None,
        overload: Optional[OverloadConfig] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        if strategy.model is not model or strategy.node is not node:
            raise ConfigError("strategy was built for a different model/node")
        if check_memory:
            check_placement(model, node)
        self.model = model
        self.node = node
        self.strategy = strategy
        self.engine = Engine()
        self.trace = Trace() if record_trace else None
        self.machine = Machine(
            node,
            self.engine,
            contention=contention or default_contention_for(node.name),
            trace=self.trace,
        )
        self.host = Host(self.machine)
        self.metrics = ServingMetrics()
        self.obs = observability
        #: The event bus, or ``None`` — every publish site is guarded by
        #: ``if self.bus is not None`` so a plain server pays one attribute
        #: check and allocates nothing (the zero-cost convention).
        self.bus = observability.bus if observability is not None else None
        strategy.bind(self.machine, self.host)
        strategy.on_batch_complete(self._on_batch_complete)
        self.recovery: Optional["RecoveryManager"] = None
        if fault_plan is not None or resilience is not None:
            self._init_recovery(fault_plan, resilience)
        self.overload_ctl: Optional[OverloadController] = None
        if overload is not None:
            self.overload_ctl = OverloadController(
                overload,
                model,
                node,
                self.engine,
                self.metrics,
                self._submit,
                bus=self.bus,
            )
            if self.recovery is not None:
                self.overload_ctl.attach_recovery(self.recovery)
                self.recovery.on_shed = self.overload_ctl.on_downstream_shed
        if observability is not None:
            if fault_plan is not None:
                observability.note_fault_plan(fault_plan)
            self._register_gauges(observability)

    def _init_recovery(self, fault_plan, resilience) -> None:
        """Arm the fault injector and recovery policy around the strategy.

        Only reached when faults/resilience were requested: a plain server
        leaves every fault hook unset, so fault support is zero-cost — the
        timeline is bit-identical to a build without this subsystem.
        """
        # Imported lazily: repro.faults pulls in the parallel strategies,
        # which import this module for type context.
        from repro.faults.resilience import attach_recovery

        self.recovery = attach_recovery(
            self.model,
            self.node,
            self.strategy,
            self.machine,
            self.host,
            fault_plan=fault_plan,
            config=resilience,
            metrics=self.metrics,
            complete_callback=self._on_batch_complete,
            bus=self.bus,
        )

    def _register_gauges(self, obs: Observability) -> None:
        """Expose live pipeline readings for the sampling heartbeat."""
        ctl = self.overload_ctl
        if ctl is not None:
            obs.register_gauge(
                "repro_pending_queue_requests",
                "Requests waiting in the bounded pending queue.",
                lambda: float(ctl.queue_depth),
            )
            obs.register_gauge(
                "repro_inflight_batches",
                "Batches staged or dispatched downstream.",
                lambda: float(ctl.inflight_batches),
            )
            if ctl.accountant is not None:
                acct = ctl.accountant
                obs.register_gauge(
                    "repro_kv_used_bytes",
                    "Per-GPU KV bytes charged by in-flight batches.",
                    lambda: float(acct.used),
                )

    # ------------------------------------------------------------------
    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        batch.complete(time)
        self.metrics.record(batch.requests)
        if self.bus is not None:
            self.bus.publish(BatchCompleted.from_batch(batch, time))
        if self.overload_ctl is not None:
            self.overload_ctl.on_complete(batch, time)

    def _submit(self, batch: Batch) -> None:
        """Hand one arrived batch to the strategy (via recovery if armed)."""
        now = self.engine.now
        batch.mark_dispatched(now)
        if self.bus is not None:
            self.bus.publish(BatchDispatched.from_batch(batch, now))
        if self.recovery is not None:
            self.recovery.submit(batch)
        else:
            self.strategy.submit_batch(batch)

    def _on_arrival(self, batch: Batch) -> None:
        """Entry point at a batch's arrival time: admission, then submit."""
        if self.overload_ctl is not None:
            self.overload_ctl.on_arrival(batch)
        else:
            if self.bus is not None:
                self.bus.publish(
                    RequestsAdmitted.from_batch(batch, self.engine.now)
                )
            self._submit(batch)

    def run(self, batches: Sequence[Batch]) -> ServingResult:
        """Serve ``batches`` to completion and return metrics."""
        if not batches:
            raise ConfigError("no batches to serve")
        ordered: List[Batch] = sorted(batches, key=lambda b: b.arrival)
        for batch in ordered:
            self.engine.schedule_at(
                batch.arrival,
                lambda b=batch: self._on_arrival(b),
                priority=10,  # arrivals fire after same-time device events
            )
        if self.recovery is not None:
            self.recovery.arm()
        if self.overload_ctl is not None:
            self.overload_ctl.arm()
        if self.obs is not None:
            self.obs.arm(self.engine)
        self.machine.run()
        expected = sum(b.size for b in ordered)
        if self.metrics.num_terminal != expected:
            # A simulation that returned without resolving every request is
            # a wedge, not a configuration mistake: name the stuck batches.
            shed = self.metrics.shed_requests
            timed_out = self.metrics.timed_out_requests
            if self.recovery is not None:
                open_ids = self.recovery.open_batch_ids()
            else:
                open_ids = self.strategy.open_batch_ids()
            raise DeadlockError(
                f"served {self.metrics.num_completed} of {expected} requests"
                f"{f' ({shed} shed)' if shed else ''}"
                f"{f' ({timed_out} timed out)' if timed_out else ''} — "
                f"batches never completed: "
                f"{open_ids if open_ids else 'none open (lost)'}"
            )
        return ServingResult(
            strategy=self.strategy.name,
            model=self.model.name,
            node=self.node.name,
            num_requests=expected,
            metrics=self.metrics,
            trace=self.trace,
            wall_events=self.engine.events_processed,
            resilience=(
                self.recovery.finalize() if self.recovery is not None else None
            ),
            overload=(
                self.overload_ctl.report if self.overload_ctl is not None else None
            ),
            observability=self.obs,
        )
