"""The serving loop: arrivals → strategy → metrics.

The :class:`Server` owns the simulation clock.  It schedules one engine
callback per batch at that batch's arrival time (the moment the serving
front-end hands the packed batch to the runtime, Fig. 5), lets the bound
strategy turn it into kernels, and records request completions as batches
drain.  The result bundles the paper's two metrics plus the execution trace
for overlap analysis.

Construction, subsystem wiring, and the submit path live in the
:class:`~repro.serving.session.ServingSession` chassis; this module is the
batch-granularity policy on top: one arrival per pre-packed batch, metrics
recorded as batches retire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import ConfigError
from repro.hw.devices import NodeSpec
from repro.models.specs import ModelSpec
from repro.obs.events import BatchCompleted
from repro.obs.observability import Observability
from repro.serving.metrics import LatencyStats, ServingMetrics
from repro.serving.overload import OverloadConfig
from repro.serving.request import Batch
from repro.serving.session import RunResult, ServingConfig, ServingSession
from repro.sim.contention import ContentionModel
from repro.sim.tracing import Trace

if TYPE_CHECKING:  # avoid a circular import; the server only type-hints it
    from repro.faults.plan import FaultPlan
    from repro.faults.resilience import ResilienceConfig
    from repro.parallel.base import ParallelStrategy
    from repro.sim.engine import Engine

__all__ = ["Server", "ServingResult"]


@dataclass
class ServingResult(RunResult):
    """Outcome of one serving run."""

    metrics: ServingMetrics = field(default=None)  # type: ignore[assignment]
    trace: Optional[Trace] = None

    @property
    def avg_latency_ms(self) -> float:
        return self.metrics.avg_latency_ms

    @property
    def throughput(self) -> float:
        return self.metrics.throughput()

    def latency_stats(self) -> LatencyStats:
        """Latency percentile summary (milliseconds)."""
        return self.metrics.latency_stats()

    def summary(self) -> str:
        """One-line human summary."""
        stats = self.latency_stats()
        return (
            f"{self.strategy:>8s} | {self.model} on {self.node}: "
            f"{self.num_requests} reqs, avg latency {stats.mean:.1f} ms "
            f"(p99 {stats.p99:.1f} ms), throughput {self.throughput:.2f} req/s"
        )


class Server:
    """Drives one strategy over one workload on a simulated node."""

    def __init__(
        self,
        model: ModelSpec,
        node: NodeSpec,
        strategy: ParallelStrategy,
        *,
        config: Optional[ServingConfig] = None,
        contention: Optional[ContentionModel] = None,
        record_trace: bool = True,
        check_memory: bool = True,
        fault_plan: Optional["FaultPlan"] = None,
        resilience: Optional["ResilienceConfig"] = None,
        overload: Optional[OverloadConfig] = None,
        observability: Optional[Observability] = None,
        engine: Optional["Engine"] = None,
    ) -> None:
        config = ServingConfig.resolve(
            config,
            contention=contention,
            record_trace=record_trace,
            fault_plan=fault_plan,
            resilience=resilience,
            overload=overload,
            observability=observability,
        )
        self.session = ServingSession(
            model,
            node,
            strategy,
            config=config,
            check_memory=check_memory,
            complete_callback=self._on_batch_complete,
            use_overload_controller=True,
            announce_arrivals=True,
            recovery_uses_metrics=True,
            engine=engine,
        )
        s = self.session
        self.model = model
        self.node = node
        self.strategy = strategy
        self.engine = s.engine
        self.trace = s.trace
        self.machine = s.machine
        self.host = s.host
        self.metrics = s.metrics
        self.obs = s.obs
        self.bus = s.bus
        self.recovery = s.recovery
        self.overload_ctl = s.overload_ctl

    # ------------------------------------------------------------------
    def _on_batch_complete(self, batch: Batch, time: float) -> None:
        batch.complete(time)
        self.metrics.record(batch.requests)
        if self.bus is not None:
            self.bus.publish(BatchCompleted.from_batch(batch, time))
        self.session.notify_complete(batch, time)

    def _on_arrival(self, batch: Batch) -> None:
        """Entry point at a batch's arrival time: the submission pipeline."""
        self.session.submit(batch)

    def run(self, batches: Sequence[Batch]) -> ServingResult:
        """Serve ``batches`` to completion and return metrics."""
        if not batches:
            raise ConfigError("no batches to serve")
        ordered: List[Batch] = sorted(batches, key=lambda b: b.arrival)
        for batch in ordered:
            self.engine.schedule_at(
                batch.arrival,
                lambda b=batch: self._on_arrival(b),
                priority=10,  # arrivals fire after same-time device events
            )
        self.session.run_machine()
        expected = sum(b.size for b in ordered)
        self.session.check_drained(
            expected=expected,
            completed=self.metrics.num_completed,
            shed=self.metrics.shed_requests,
            timed_out=self.metrics.timed_out_requests,
        )
        return ServingResult(
            strategy=self.strategy.name,
            model=self.model.name,
            node=self.node.name,
            num_requests=expected,
            metrics=self.metrics,
            trace=self.trace,
            wall_events=self.engine.events_processed,
            resilience=self.session.finalize_resilience(),
            overload=self.session.overload_report(),
            observability=self.obs,
        )
