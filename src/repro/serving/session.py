"""The serving-session chassis shared by all four servers.

Three subsystems grew around the serving loop — faults/recovery, overload
protection, and observability — and each server used to wire them by hand:
engine/machine/host construction, strategy binding, recovery attachment,
gauge registration, the arm sequence, and the drain-or-deadlock check were
duplicated across :class:`~repro.serving.server.Server` and
:class:`~repro.serving.lifecycle.LifecycleServer`, while the generation
servers had none of it.  A :class:`ServingSession` owns all of that once:

* **construction** — ``Engine``/``Trace``/``Machine``/``Host``, strategy
  binding (including the bind-time memory-tracking mode), and a
  :class:`~repro.serving.metrics.ServingMetrics`;
* **configuration** — one :class:`ServingConfig` bundles the cross-cutting
  knobs (``fault_plan``/``resilience``/``overload``/``observability``/
  ``contention``/``record_trace``) that used to travel as six separate
  keyword arguments;
* **the submission pipeline** — the path a batch takes from arrival to the
  strategy is an explicit chain of :class:`SubmissionStage` objects
  (admission → dispatch bookkeeping → recovery → strategy), each with
  ``on_arrival``/``on_complete``/``on_shed`` hooks, replacing the scattered
  ``if self.recovery is not None`` / ``if self.bus is not None`` ladders;
* **the arm sequence** (recovery → overload → observability) and the
  drain-or-:class:`~repro.errors.DeadlockError` check with open-batch
  attribution.

The zero-cost convention survives the chassis: with an empty
:class:`ServingConfig` the pipeline contains exactly the dispatch and
strategy stages, nothing is published, no heartbeat is armed, and the
timeline is bit-identical to the pre-chassis servers (pinned by the golden
fingerprints in ``tests/golden/serving_traces.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import ConfigError, DeadlockError
from repro.models.partition import check_placement
from repro.obs.events import BatchDispatched, RequestsAdmitted
from repro.obs.observability import Observability
from repro.serving.metrics import ServingMetrics
from repro.serving.overload import OverloadConfig, OverloadController, OverloadReport
from repro.serving.request import Batch
from repro.sim.contention import ContentionModel, default_contention_for
from repro.sim.engine import Engine
from repro.sim.gpu import Machine
from repro.sim.host import Host
from repro.sim.tracing import Trace

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.faults.plan import FaultPlan
    from repro.faults.resilience import (
        RecoveryManager,
        ResilienceConfig,
        ResilienceReport,
    )
    from repro.hw.devices import NodeSpec
    from repro.models.specs import ModelSpec
    from repro.parallel.base import ParallelStrategy

__all__ = [
    "ServingConfig",
    "RunResult",
    "SubmissionStage",
    "AnnounceStage",
    "AdmissionStage",
    "DispatchStage",
    "RecoveryStage",
    "StrategyStage",
    "SubmissionPipeline",
    "ServingSession",
]


@dataclass(frozen=True)
class ServingConfig:
    """Cross-cutting serving configuration, bundled.

    An *empty* config (the default) arms nothing: the session it builds is
    bit-identical to a server without any of the subsystems.  Each field
    maps to the keyword argument of the same name that the servers still
    accept for backward compatibility; pass either the config or the
    individual kwargs, not both.
    """

    #: Contention model for the machine; ``None`` selects the node default.
    contention: Optional[ContentionModel] = None
    #: Record the kernel timeline (:class:`~repro.sim.tracing.Trace`).
    record_trace: bool = False
    #: Inject these faults and arm the recovery layer.
    fault_plan: Optional["FaultPlan"] = None
    #: Recovery-policy knobs; implies the recovery layer even without faults.
    resilience: Optional["ResilienceConfig"] = None
    #: Admission control / deadlines / KV accounting / backpressure.
    overload: Optional[OverloadConfig] = None
    #: Event bus + metrics registry + span builder for the run.
    observability: Optional[Observability] = None

    @property
    def wants_recovery(self) -> bool:
        return self.fault_plan is not None or self.resilience is not None

    @property
    def empty(self) -> bool:
        """True when no cross-cutting subsystem is enabled."""
        return (
            self.fault_plan is None
            and self.resilience is None
            and self.overload is None
            and self.observability is None
        )

    @staticmethod
    def resolve(
        config: Optional["ServingConfig"],
        *,
        contention: Optional[ContentionModel] = None,
        record_trace: bool = False,
        fault_plan: Optional["FaultPlan"] = None,
        resilience: Optional["ResilienceConfig"] = None,
        overload: Optional[OverloadConfig] = None,
        observability: Optional[Observability] = None,
    ) -> "ServingConfig":
        """Fold legacy per-subsystem kwargs and ``config`` into one config.

        When ``config`` is given it governs the run; mixing it with any of
        the legacy subsystem kwargs is a :class:`~repro.errors.ConfigError`
        (silently preferring one over the other would hide a typo).
        """
        if config is None:
            return ServingConfig(
                contention=contention,
                record_trace=record_trace,
                fault_plan=fault_plan,
                resilience=resilience,
                overload=overload,
                observability=observability,
            )
        legacy = {
            "contention": contention,
            "fault_plan": fault_plan,
            "resilience": resilience,
            "overload": overload,
            "observability": observability,
        }
        clashes = [name for name, value in legacy.items() if value is not None]
        if clashes:
            raise ConfigError(
                "pass subsystems either via config= or as keyword arguments, "
                f"not both (got config plus {', '.join(clashes)})"
            )
        return config


@dataclass
class RunResult:
    """Common base of every serving result.

    The cross-cutting subsystem summaries ride here so all four servers
    report them uniformly; each stays ``None`` unless its subsystem was
    enabled for the run.
    """

    strategy: str
    model: str
    node: str
    num_requests: int
    wall_events: int = field(default=0, kw_only=True)
    #: Recovery-layer summary; ``None`` unless faults/resilience were enabled.
    resilience: Optional["ResilienceReport"] = field(default=None, kw_only=True)
    #: Overload-layer summary; ``None`` unless admission control was enabled.
    overload: Optional[OverloadReport] = field(default=None, kw_only=True)
    #: The observability object the run was served with (bus + registry +
    #: spans); ``None`` unless one was passed in.
    observability: Optional[Observability] = field(default=None, kw_only=True)


# ----------------------------------------------------------------------
# The submission pipeline
# ----------------------------------------------------------------------
class SubmissionStage:
    """One stage of the submission pipeline.

    A stage receives each batch on its way to the strategy via
    :meth:`on_arrival` and hands it to ``downstream`` (the next stage) when
    it passes.  :meth:`on_complete` and :meth:`on_shed` flow back through
    every stage when a batch retires or is dropped downstream, so a stage
    can release whatever it holds for the batch (dispatch slots, KV
    charges) without the server knowing which stages exist.
    """

    name = "stage"

    def __init__(self) -> None:
        self.downstream: Optional[Callable[[Batch], None]] = None

    def wire(self) -> None:
        """Hook called once the pipeline has linked ``downstream``."""

    def on_arrival(self, batch: Batch) -> None:
        """Process one batch; the default passes it straight downstream."""
        assert self.downstream is not None
        self.downstream(batch)

    def on_complete(self, batch: Batch, time: float) -> None:
        """The batch retired downstream at simulated ``time``."""

    def on_shed(self, batch: Batch) -> None:
        """The batch was dropped downstream (retry exhaustion)."""


class AnnounceStage(SubmissionStage):
    """Publish ``RequestsAdmitted`` for servers without admission control.

    Only present when a bus is attached and no :class:`AdmissionStage`
    filters arrivals (the admission controller publishes its own verdicts).
    """

    name = "announce"

    def __init__(self, engine: Engine, bus) -> None:
        super().__init__()
        self.engine = engine
        self.bus = bus

    def on_arrival(self, batch: Batch) -> None:
        """Publish the admission event, then pass the batch downstream."""
        self.bus.publish(RequestsAdmitted.from_batch(batch, self.engine.now))
        self.downstream(batch)


class AdmissionStage(SubmissionStage):
    """Admission control, deadlines, KV accounting, and backpressure.

    Adapts the :class:`~repro.serving.overload.OverloadController` (which
    owns the bounded pending → staged → dispatched pipeline, the KV-cache
    accountant, and the circuit breaker) to the stage interface.
    """

    name = "admission"

    def __init__(self, controller: OverloadController) -> None:
        super().__init__()
        self.controller = controller

    def wire(self) -> None:
        self.controller.downstream = self.downstream

    def arm(self) -> None:
        """Start the controller's deadline sweeps and breaker timers."""
        self.controller.arm()

    def on_arrival(self, batch: Batch) -> None:
        """Admit, queue, or shed the batch per the overload policy."""
        self.controller.on_arrival(batch)

    def on_complete(self, batch: Batch, time: float) -> None:
        """Release the batch's KV charge and pull queued work forward."""
        self.controller.on_complete(batch, time)

    def on_shed(self, batch: Batch) -> None:
        """Account a downstream (retry-exhaustion) shed to the controller."""
        self.controller.on_downstream_shed(batch)


class DispatchStage(SubmissionStage):
    """Dispatch bookkeeping: first-hand-off stamping and bus publish.

    Always present — stamping :attr:`~repro.serving.request.Request.
    dispatched_at` is what makes pending time exact.  With
    ``track_first=True`` (servers that re-dispatch the same request every
    decode iteration) the published event marks only a request's *first*
    hand-off as ``first``, so queue-wait derivations skip re-dispatches.
    """

    name = "dispatch"

    def __init__(self, engine: Engine, bus=None, *, track_first: bool = False) -> None:
        super().__init__()
        self.engine = engine
        self.bus = bus
        self._dispatched_rids: Optional[set] = set() if track_first else None

    def on_arrival(self, batch: Batch) -> None:
        """Stamp the dispatch time, publish it, and pass downstream."""
        now = self.engine.now
        batch.mark_dispatched(now)
        if self.bus is not None:
            if self._dispatched_rids is None:
                self.bus.publish(BatchDispatched.from_batch(batch, now))
            else:
                rids = set(r.rid for r in batch.requests)
                first = not (rids & self._dispatched_rids)
                self._dispatched_rids.update(rids)
                self.bus.publish(
                    BatchDispatched.from_batch(batch, now, first=first)
                )
        self.downstream(batch)


class RecoveryStage(SubmissionStage):
    """Route submissions through the retry/degradation policy.

    Terminal when present: the :class:`~repro.faults.resilience.
    RecoveryManager` owns the hand-off to whichever strategy is active
    (primary or fallback).
    """

    name = "recovery"

    def __init__(self, recovery: "RecoveryManager") -> None:
        super().__init__()
        self.recovery = recovery

    def on_arrival(self, batch: Batch) -> None:
        """Hand the batch to the recovery manager's active strategy."""
        self.recovery.submit(batch)


class StrategyStage(SubmissionStage):
    """Terminal stage: hand the batch to the bound parallel strategy."""

    name = "strategy"

    def __init__(self, strategy: "ParallelStrategy") -> None:
        super().__init__()
        self.strategy = strategy

    def on_arrival(self, batch: Batch) -> None:
        """Submit the batch to the strategy at the current instant."""
        self.strategy.submit_batch(batch)


class SubmissionPipeline:
    """An ordered chain of :class:`SubmissionStage` objects."""

    def __init__(self, stages: List[SubmissionStage]) -> None:
        if not stages:
            raise ConfigError("a submission pipeline needs at least one stage")
        self.stages = list(stages)
        for stage, nxt in zip(self.stages, self.stages[1:]):
            stage.downstream = nxt.on_arrival
        for stage in self.stages:
            stage.wire()

    def submit(self, batch: Batch) -> None:
        """Feed one batch into the head of the pipeline."""
        self.stages[0].on_arrival(batch)

    def on_complete(self, batch: Batch, time: float) -> None:
        """Notify every stage that ``batch`` retired at ``time``."""
        for stage in self.stages:
            stage.on_complete(batch, time)

    def on_shed(self, batch: Batch) -> None:
        """Notify every stage that ``batch`` was dropped downstream."""
        for stage in self.stages:
            stage.on_shed(batch)

    def describe(self) -> str:
        """Human-readable stage order, e.g. ``admission → dispatch → strategy``."""
        return " → ".join(stage.name for stage in self.stages)


# ----------------------------------------------------------------------
# The chassis
# ----------------------------------------------------------------------
class ServingSession:
    """Owns what every server used to duplicate.

    Parameters
    ----------
    config:
        The cross-cutting :class:`ServingConfig`.
    check_memory:
        Validate model placement against the node before serving.
    track_memory:
        Bind-time memory-tracking mode for the strategy (``None`` keeps the
        strategy's own setting; the lifecycle/generation servers pass
        ``False`` because they account memory at sequence granularity).
    complete_callback:
        Registered as the strategy's (and fallback's) batch-completion
        callback.
    shed_callback:
        Invoked — after the pipeline stages — when the recovery layer drops
        a batch, so servers with per-batch state can clean it up.
    use_overload_controller:
        Build an :class:`~repro.serving.overload.OverloadController` head
        stage from ``config.overload``.  Servers that implement their own
        request-granularity admission (lifecycle, generation) leave this
        off and read ``config.overload`` themselves.
    announce_arrivals:
        Publish ``RequestsAdmitted`` per submitted batch when no admission
        stage is present (the plain server's arrival semantics).
    track_first_dispatch:
        See :class:`DispatchStage`.
    recovery_uses_metrics:
        Let the recovery layer stamp shed batches into the session's
        :class:`~repro.serving.metrics.ServingMetrics` directly.  Servers
        whose requests outlive individual batches keep this off and do
        their own terminal bookkeeping in ``shed_callback``.
    engine:
        Share an externally owned :class:`~repro.sim.engine.Engine` instead
        of creating a private one.  The cluster layer passes a single engine
        to every replica so all nodes advance on one simulated clock; the
        caller then owns ``engine.run()``.
    """

    def __init__(
        self,
        model: "ModelSpec",
        node: "NodeSpec",
        strategy: "ParallelStrategy",
        *,
        config: ServingConfig,
        check_memory: bool = True,
        track_memory: Optional[bool] = None,
        complete_callback: Callable[[Batch, float], None],
        shed_callback: Optional[Callable[[Batch], None]] = None,
        use_overload_controller: bool = False,
        announce_arrivals: bool = False,
        track_first_dispatch: bool = False,
        recovery_uses_metrics: bool = False,
        engine: Optional[Engine] = None,
    ) -> None:
        if strategy.model is not model or strategy.node is not node:
            raise ConfigError("strategy was built for a different model/node")
        if check_memory:
            check_placement(model, node)
        self.model = model
        self.node = node
        self.strategy = strategy
        self.config = config
        self.engine = engine if engine is not None else Engine()
        self.trace = Trace() if config.record_trace else None
        self.machine = Machine(
            node,
            self.engine,
            contention=config.contention or default_contention_for(node.name),
            trace=self.trace,
        )
        self.host = Host(self.machine)
        self.metrics = ServingMetrics()
        self.obs = config.observability
        #: The event bus, or ``None`` — every publish site is guarded by
        #: ``if bus is not None`` so an unobserved session allocates nothing
        #: (the zero-cost convention).
        self.bus = self.obs.bus if self.obs is not None else None
        strategy.bind(self.machine, self.host, track_memory=track_memory)
        strategy.on_batch_complete(complete_callback)

        self.recovery: Optional["RecoveryManager"] = None
        if config.wants_recovery:
            # Imported lazily: repro.faults pulls in the parallel
            # strategies, which import the serving layer for type context.
            from repro.faults.resilience import attach_recovery

            self.recovery = attach_recovery(
                model,
                node,
                strategy,
                self.machine,
                self.host,
                fault_plan=config.fault_plan,
                config=config.resilience,
                metrics=self.metrics if recovery_uses_metrics else None,
                complete_callback=complete_callback,
                bus=self.bus,
            )

        # Assemble the pipeline head → tail.
        stages: List[SubmissionStage] = []
        self.overload_ctl: Optional[OverloadController] = None
        self._admission: Optional[AdmissionStage] = None
        if use_overload_controller and config.overload is not None:
            self.overload_ctl = OverloadController(
                config.overload,
                model,
                node,
                self.engine,
                self.metrics,
                self._reject_unwired,
                bus=self.bus,
            )
            self._admission = AdmissionStage(self.overload_ctl)
            stages.append(self._admission)
        elif announce_arrivals and self.bus is not None:
            stages.append(AnnounceStage(self.engine, self.bus))
        stages.append(
            DispatchStage(self.engine, self.bus, track_first=track_first_dispatch)
        )
        if self.recovery is not None:
            stages.append(RecoveryStage(self.recovery))
        else:
            stages.append(StrategyStage(strategy))
        self.pipeline = SubmissionPipeline(stages)

        if self.recovery is not None:
            if self.overload_ctl is not None:
                self.overload_ctl.attach_recovery(self.recovery)
            if self.overload_ctl is not None or shed_callback is not None:
                self.recovery.on_shed = self._make_on_shed(shed_callback)

        if self.obs is not None:
            if config.fault_plan is not None:
                self.obs.note_fault_plan(config.fault_plan)
            self._register_overload_gauges(self.obs)
            self._register_perf_gauges(self.obs)
            # SLO burn-rate advisory: only exists when policies were
            # explicitly configured, so a default Observability keeps the
            # obs-on bit-identity contract.
            advisor = self.obs.fast_burn_advisor()
            if advisor is not None and self.overload_ctl is not None:
                self.overload_ctl.attach_advisor(advisor)

    @staticmethod
    def _reject_unwired(batch: Batch) -> None:  # pragma: no cover - guard
        raise ConfigError("overload controller used before pipeline wiring")

    def _make_on_shed(self, shed_callback):
        """Recovery-shed fan-out: pipeline stages first, then the server."""
        pipeline = self.pipeline

        def _on_shed(batch: Batch) -> None:
            pipeline.on_shed(batch)
            if shed_callback is not None:
                shed_callback(batch)

        return _on_shed

    # ------------------------------------------------------------------
    # Observability wiring
    # ------------------------------------------------------------------
    def add_gauge(self, name: str, help: str, fn: Callable[[], float]) -> None:
        """Register a live gauge; no-op when observability is off."""
        if self.obs is not None:
            self.obs.register_gauge(name, help, fn)

    def _register_overload_gauges(self, obs: Observability) -> None:
        """Expose live pipeline readings for the sampling heartbeat."""
        ctl = self.overload_ctl
        if ctl is None:
            return
        obs.register_gauge(
            "repro_pending_queue_requests",
            "Requests waiting in the bounded pending queue.",
            lambda: float(ctl.queue_depth),
        )
        obs.register_gauge(
            "repro_inflight_batches",
            "Batches staged or dispatched downstream.",
            lambda: float(ctl.inflight_batches),
        )
        if ctl.accountant is not None:
            acct = ctl.accountant
            obs.register_gauge(
                "repro_kv_used_bytes",
                "Per-GPU KV bytes charged by in-flight batches.",
                lambda: float(acct.used),
            )

    #: The ``perf`` section of the Prometheus export: hot-path cache
    #: statistics, published only by strategies that expose
    #: ``perf_counters()`` (duck-typed — the session stays strategy-agnostic).
    _PERF_GAUGE_HELP = {
        "plan_cache_hits": "Schedule-plan cache hits (rounds replayed).",
        "plan_cache_misses": "Schedule-plan cache misses (Algorithm 1 ran).",
        "plan_cache_evictions": "Schedule-plan cache LRU evictions.",
        "plan_cache_uncacheable": "Planning calls with unfingerprintable input.",
        "plan_cache_entries": "Live entries in the schedule-plan cache.",
        "plan_build_seconds": "Host seconds spent planning on cache misses.",
        "assembly_cache_hits": "Function-assembly cache hits (rebinds).",
        "assembly_cache_misses": "Function-assembly cache misses (rebuilds).",
        "assembly_cache_evictions": "Function-assembly cache LRU evictions.",
        "assembly_build_seconds": "Host seconds spent assembling on misses.",
        "timeline_builds": "Compiled-timeline windows attempted.",
        "timeline_replays": "Windows committed as one batched advance.",
        "timeline_bails": "Window compilations aborted to the interpreted path.",
        "batched_events": "Engine events consumed via batched window replay.",
        "fanout_workers": "Perf fan-out worker count that produced this run (0 = in-process).",
    }

    def _register_perf_gauges(self, obs: Observability) -> None:
        """Expose plan/assembly cache counters as ``repro_perf_*`` gauges."""
        counters = getattr(self.strategy, "perf_counters", None)
        if counters is None:
            return

        def _reader(key: str) -> Callable[[], float]:
            return lambda: float(counters().get(key, 0.0))

        gauges = dict(self._PERF_GAUGE_HELP)
        # Strategy-specific gauges with dynamic keys (e.g. the per-policy
        # plan-cache split, whose names embed the scheduling-policy id).
        extra = getattr(self.strategy, "perf_gauge_help", None)
        if extra is not None:
            gauges.update(extra())
        for key, help_text in gauges.items():
            obs.register_gauge(f"repro_perf_{key}", help_text, _reader(key))

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def submit(self, batch: Batch) -> None:
        """Feed one batch into the submission pipeline."""
        self.pipeline.submit(batch)

    def notify_complete(self, batch: Batch, time: float) -> None:
        """Flow a downstream completion back through the pipeline stages."""
        self.pipeline.on_complete(batch, time)

    def arm(self) -> None:
        """The arm sequence: recovery → overload → observability."""
        if self.recovery is not None:
            self.recovery.arm()
        if self._admission is not None:
            self._admission.arm()
        if self.obs is not None:
            self.obs.arm(self.engine)

    def run_machine(self) -> None:
        """Arm every subsystem and drive the simulation to quiescence."""
        self.arm()
        self.machine.run()

    # ------------------------------------------------------------------
    # Drain check
    # ------------------------------------------------------------------
    def open_batch_ids(self) -> List[int]:
        """Ids of batches submitted but never completed (diagnostics)."""
        if self.recovery is not None:
            return self.recovery.open_batch_ids()
        return self.strategy.open_batch_ids()

    def check_drained(
        self,
        *,
        expected: int,
        completed: int,
        shed: int = 0,
        timed_out: int = 0,
        open_ids: Optional[List[int]] = None,
    ) -> None:
        """Raise :class:`~repro.errors.DeadlockError` unless every request
        reached a terminal state — a simulation that returns without
        resolving its work is a wedge, not a configuration mistake, so the
        error names the batches that never completed."""
        if completed + shed + timed_out == expected:
            return
        if open_ids is None:
            open_ids = self.open_batch_ids()
        raise DeadlockError(
            f"served {completed} of {expected} requests"
            f"{f' ({shed} shed)' if shed else ''}"
            f"{f' ({timed_out} timed out)' if timed_out else ''} — "
            f"batches never completed: "
            f"{open_ids if open_ids else 'none open (lost)'}"
        )

    # ------------------------------------------------------------------
    # Result plumbing
    # ------------------------------------------------------------------
    def finalize_resilience(self) -> Optional["ResilienceReport"]:
        """The recovery layer's end-of-run report, or ``None`` if unarmed."""
        return self.recovery.finalize() if self.recovery is not None else None

    def overload_report(self) -> Optional[OverloadReport]:
        """The overload controller's report, or ``None`` if unarmed."""
        return self.overload_ctl.report if self.overload_ctl is not None else None
